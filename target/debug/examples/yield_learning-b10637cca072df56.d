/root/repo/target/debug/examples/yield_learning-b10637cca072df56.d: examples/yield_learning.rs Cargo.toml

/root/repo/target/debug/examples/libyield_learning-b10637cca072df56.rmeta: examples/yield_learning.rs Cargo.toml

examples/yield_learning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
