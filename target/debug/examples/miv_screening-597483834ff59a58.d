/root/repo/target/debug/examples/miv_screening-597483834ff59a58.d: examples/miv_screening.rs Cargo.toml

/root/repo/target/debug/examples/libmiv_screening-597483834ff59a58.rmeta: examples/miv_screening.rs Cargo.toml

examples/miv_screening.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
