/root/repo/target/debug/examples/quickstart-30366473e777d07c.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-30366473e777d07c.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
