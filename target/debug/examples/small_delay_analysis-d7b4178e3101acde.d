/root/repo/target/debug/examples/small_delay_analysis-d7b4178e3101acde.d: examples/small_delay_analysis.rs Cargo.toml

/root/repo/target/debug/examples/libsmall_delay_analysis-d7b4178e3101acde.rmeta: examples/small_delay_analysis.rs Cargo.toml

examples/small_delay_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
