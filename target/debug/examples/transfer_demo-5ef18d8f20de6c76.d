/root/repo/target/debug/examples/transfer_demo-5ef18d8f20de6c76.d: examples/transfer_demo.rs

/root/repo/target/debug/examples/transfer_demo-5ef18d8f20de6c76: examples/transfer_demo.rs

examples/transfer_demo.rs:
