/root/repo/target/debug/examples/transfer_demo-385829621e9d5b31.d: examples/transfer_demo.rs Cargo.toml

/root/repo/target/debug/examples/libtransfer_demo-385829621e9d5b31.rmeta: examples/transfer_demo.rs Cargo.toml

examples/transfer_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
