/root/repo/target/debug/examples/yield_learning-5d07c9248cfe88bf.d: examples/yield_learning.rs

/root/repo/target/debug/examples/yield_learning-5d07c9248cfe88bf: examples/yield_learning.rs

examples/yield_learning.rs:
