/root/repo/target/debug/examples/region_localization_2d-43fb91b648c31416.d: examples/region_localization_2d.rs Cargo.toml

/root/repo/target/debug/examples/libregion_localization_2d-43fb91b648c31416.rmeta: examples/region_localization_2d.rs Cargo.toml

examples/region_localization_2d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
