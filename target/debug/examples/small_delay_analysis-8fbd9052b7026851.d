/root/repo/target/debug/examples/small_delay_analysis-8fbd9052b7026851.d: examples/small_delay_analysis.rs

/root/repo/target/debug/examples/small_delay_analysis-8fbd9052b7026851: examples/small_delay_analysis.rs

examples/small_delay_analysis.rs:
