/root/repo/target/debug/examples/quickstart-40fc4d88e366e929.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-40fc4d88e366e929: examples/quickstart.rs

examples/quickstart.rs:
