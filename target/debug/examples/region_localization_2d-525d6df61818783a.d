/root/repo/target/debug/examples/region_localization_2d-525d6df61818783a.d: examples/region_localization_2d.rs

/root/repo/target/debug/examples/region_localization_2d-525d6df61818783a: examples/region_localization_2d.rs

examples/region_localization_2d.rs:
