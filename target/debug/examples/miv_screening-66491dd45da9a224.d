/root/repo/target/debug/examples/miv_screening-66491dd45da9a224.d: examples/miv_screening.rs

/root/repo/target/debug/examples/miv_screening-66491dd45da9a224: examples/miv_screening.rs

examples/miv_screening.rs:
