/root/repo/target/debug/deps/m3d_diagnosis-4abe244a9903cde0.d: crates/diagnosis/src/lib.rs crates/diagnosis/src/baseline.rs crates/diagnosis/src/engine.rs crates/diagnosis/src/metrics.rs crates/diagnosis/src/report.rs

/root/repo/target/debug/deps/m3d_diagnosis-4abe244a9903cde0: crates/diagnosis/src/lib.rs crates/diagnosis/src/baseline.rs crates/diagnosis/src/engine.rs crates/diagnosis/src/metrics.rs crates/diagnosis/src/report.rs

crates/diagnosis/src/lib.rs:
crates/diagnosis/src/baseline.rs:
crates/diagnosis/src/engine.rs:
crates/diagnosis/src/metrics.rs:
crates/diagnosis/src/report.rs:
