/root/repo/target/debug/deps/m3d_fault_diagnosis-35fc13edb459822c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libm3d_fault_diagnosis-35fc13edb459822c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
