/root/repo/target/debug/deps/fig10_pfa_savings-0d530472daa57b5b.d: crates/bench/src/bin/fig10_pfa_savings.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_pfa_savings-0d530472daa57b5b.rmeta: crates/bench/src/bin/fig10_pfa_savings.rs Cargo.toml

crates/bench/src/bin/fig10_pfa_savings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
