/root/repo/target/debug/deps/proptest-95812a38ff8ad298.d: crates/proptest/src/lib.rs crates/proptest/src/strategy.rs crates/proptest/src/arbitrary.rs crates/proptest/src/collection.rs crates/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-95812a38ff8ad298.rlib: crates/proptest/src/lib.rs crates/proptest/src/strategy.rs crates/proptest/src/arbitrary.rs crates/proptest/src/collection.rs crates/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-95812a38ff8ad298.rmeta: crates/proptest/src/lib.rs crates/proptest/src/strategy.rs crates/proptest/src/arbitrary.rs crates/proptest/src/collection.rs crates/proptest/src/test_runner.rs

crates/proptest/src/lib.rs:
crates/proptest/src/strategy.rs:
crates/proptest/src/arbitrary.rs:
crates/proptest/src/collection.rs:
crates/proptest/src/test_runner.rs:
