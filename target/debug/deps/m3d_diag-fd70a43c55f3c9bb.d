/root/repo/target/debug/deps/m3d_diag-fd70a43c55f3c9bb.d: src/bin/m3d-diag.rs

/root/repo/target/debug/deps/m3d_diag-fd70a43c55f3c9bb: src/bin/m3d-diag.rs

src/bin/m3d-diag.rs:
