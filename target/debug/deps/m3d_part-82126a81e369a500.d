/root/repo/target/debug/deps/m3d_part-82126a81e369a500.d: crates/m3d/src/lib.rs crates/m3d/src/config.rs crates/m3d/src/design.rs crates/m3d/src/partition.rs crates/m3d/src/tier.rs Cargo.toml

/root/repo/target/debug/deps/libm3d_part-82126a81e369a500.rmeta: crates/m3d/src/lib.rs crates/m3d/src/config.rs crates/m3d/src/design.rs crates/m3d/src/partition.rs crates/m3d/src/tier.rs Cargo.toml

crates/m3d/src/lib.rs:
crates/m3d/src/config.rs:
crates/m3d/src/design.rs:
crates/m3d/src/partition.rs:
crates/m3d/src/tier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
