/root/repo/target/debug/deps/m3d_hetgraph-e87ea55654759666.d: crates/hetgraph/src/lib.rs crates/hetgraph/src/graph.rs crates/hetgraph/src/subgraph.rs

/root/repo/target/debug/deps/m3d_hetgraph-e87ea55654759666: crates/hetgraph/src/lib.rs crates/hetgraph/src/graph.rs crates/hetgraph/src/subgraph.rs

crates/hetgraph/src/lib.rs:
crates/hetgraph/src/graph.rs:
crates/hetgraph/src/subgraph.rs:
