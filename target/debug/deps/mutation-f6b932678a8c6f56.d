/root/repo/target/debug/deps/mutation-f6b932678a8c6f56.d: crates/lint/tests/mutation.rs

/root/repo/target/debug/deps/mutation-f6b932678a8c6f56: crates/lint/tests/mutation.rs

crates/lint/tests/mutation.rs:
