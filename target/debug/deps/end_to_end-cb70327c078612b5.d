/root/repo/target/debug/deps/end_to_end-cb70327c078612b5.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-cb70327c078612b5: tests/end_to_end.rs

tests/end_to_end.rs:
