/root/repo/target/debug/deps/m3d_bench-3effa333c3b08227.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/m3d_bench-3effa333c3b08227: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
