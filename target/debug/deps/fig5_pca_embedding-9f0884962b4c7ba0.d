/root/repo/target/debug/deps/fig5_pca_embedding-9f0884962b4c7ba0.d: crates/bench/src/bin/fig5_pca_embedding.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_pca_embedding-9f0884962b4c7ba0.rmeta: crates/bench/src/bin/fig5_pca_embedding.rs Cargo.toml

crates/bench/src/bin/fig5_pca_embedding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
