/root/repo/target/debug/deps/table11_ablation-2af8dc9c4dd734b4.d: crates/bench/src/bin/table11_ablation.rs

/root/repo/target/debug/deps/table11_ablation-2af8dc9c4dd734b4: crates/bench/src/bin/table11_ablation.rs

crates/bench/src/bin/table11_ablation.rs:
