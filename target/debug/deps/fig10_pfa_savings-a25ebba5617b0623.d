/root/repo/target/debug/deps/fig10_pfa_savings-a25ebba5617b0623.d: crates/bench/src/bin/fig10_pfa_savings.rs

/root/repo/target/debug/deps/fig10_pfa_savings-a25ebba5617b0623: crates/bench/src/bin/fig10_pfa_savings.rs

crates/bench/src/bin/fig10_pfa_savings.rs:
