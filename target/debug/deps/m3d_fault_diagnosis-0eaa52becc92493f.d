/root/repo/target/debug/deps/m3d_fault_diagnosis-0eaa52becc92493f.d: src/lib.rs

/root/repo/target/debug/deps/m3d_fault_diagnosis-0eaa52becc92493f: src/lib.rs

src/lib.rs:
