/root/repo/target/debug/deps/m3d_gnn-3caf892de12b29b4.d: crates/gnn/src/lib.rs crates/gnn/src/graph.rs crates/gnn/src/layers.rs crates/gnn/src/matrix.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/pca.rs crates/gnn/src/significance.rs Cargo.toml

/root/repo/target/debug/deps/libm3d_gnn-3caf892de12b29b4.rmeta: crates/gnn/src/lib.rs crates/gnn/src/graph.rs crates/gnn/src/layers.rs crates/gnn/src/matrix.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/pca.rs crates/gnn/src/significance.rs Cargo.toml

crates/gnn/src/lib.rs:
crates/gnn/src/graph.rs:
crates/gnn/src/layers.rs:
crates/gnn/src/matrix.rs:
crates/gnn/src/metrics.rs:
crates/gnn/src/model.rs:
crates/gnn/src/pca.rs:
crates/gnn/src/significance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
