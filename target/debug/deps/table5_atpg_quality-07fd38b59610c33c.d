/root/repo/target/debug/deps/table5_atpg_quality-07fd38b59610c33c.d: crates/bench/src/bin/table5_atpg_quality.rs

/root/repo/target/debug/deps/table5_atpg_quality-07fd38b59610c33c: crates/bench/src/bin/table5_atpg_quality.rs

crates/bench/src/bin/table5_atpg_quality.rs:
