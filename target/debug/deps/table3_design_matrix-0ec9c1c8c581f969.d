/root/repo/target/debug/deps/table3_design_matrix-0ec9c1c8c581f969.d: crates/bench/src/bin/table3_design_matrix.rs

/root/repo/target/debug/deps/table3_design_matrix-0ec9c1c8c581f969: crates/bench/src/bin/table3_design_matrix.rs

crates/bench/src/bin/table3_design_matrix.rs:
