/root/repo/target/debug/deps/table10_multifault-26bb2ba813cc1a75.d: crates/bench/src/bin/table10_multifault.rs

/root/repo/target/debug/deps/table10_multifault-26bb2ba813cc1a75: crates/bench/src/bin/table10_multifault.rs

crates/bench/src/bin/table10_multifault.rs:
