/root/repo/target/debug/deps/table11_ablation-954b6f0335b93b3f.d: crates/bench/src/bin/table11_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libtable11_ablation-954b6f0335b93b3f.rmeta: crates/bench/src/bin/table11_ablation.rs Cargo.toml

crates/bench/src/bin/table11_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
