/root/repo/target/debug/deps/m3d_lint-b418298d9f510ea8.d: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/dft.rs crates/lint/src/passes/m3d.rs crates/lint/src/passes/netlist.rs crates/lint/src/passes/tensor.rs crates/lint/src/report.rs crates/lint/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libm3d_lint-b418298d9f510ea8.rmeta: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/dft.rs crates/lint/src/passes/m3d.rs crates/lint/src/passes/netlist.rs crates/lint/src/passes/tensor.rs crates/lint/src/report.rs crates/lint/src/runner.rs Cargo.toml

crates/lint/src/lib.rs:
crates/lint/src/diag.rs:
crates/lint/src/passes/mod.rs:
crates/lint/src/passes/dft.rs:
crates/lint/src/passes/m3d.rs:
crates/lint/src/passes/netlist.rs:
crates/lint/src/passes/tensor.rs:
crates/lint/src/report.rs:
crates/lint/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
