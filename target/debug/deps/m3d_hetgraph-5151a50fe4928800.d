/root/repo/target/debug/deps/m3d_hetgraph-5151a50fe4928800.d: crates/hetgraph/src/lib.rs crates/hetgraph/src/graph.rs crates/hetgraph/src/subgraph.rs

/root/repo/target/debug/deps/libm3d_hetgraph-5151a50fe4928800.rlib: crates/hetgraph/src/lib.rs crates/hetgraph/src/graph.rs crates/hetgraph/src/subgraph.rs

/root/repo/target/debug/deps/libm3d_hetgraph-5151a50fe4928800.rmeta: crates/hetgraph/src/lib.rs crates/hetgraph/src/graph.rs crates/hetgraph/src/subgraph.rs

crates/hetgraph/src/lib.rs:
crates/hetgraph/src/graph.rs:
crates/hetgraph/src/subgraph.rs:
