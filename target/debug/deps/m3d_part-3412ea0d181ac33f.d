/root/repo/target/debug/deps/m3d_part-3412ea0d181ac33f.d: crates/m3d/src/lib.rs crates/m3d/src/config.rs crates/m3d/src/design.rs crates/m3d/src/partition.rs crates/m3d/src/tier.rs

/root/repo/target/debug/deps/libm3d_part-3412ea0d181ac33f.rlib: crates/m3d/src/lib.rs crates/m3d/src/config.rs crates/m3d/src/design.rs crates/m3d/src/partition.rs crates/m3d/src/tier.rs

/root/repo/target/debug/deps/libm3d_part-3412ea0d181ac33f.rmeta: crates/m3d/src/lib.rs crates/m3d/src/config.rs crates/m3d/src/design.rs crates/m3d/src/partition.rs crates/m3d/src/tier.rs

crates/m3d/src/lib.rs:
crates/m3d/src/config.rs:
crates/m3d/src/design.rs:
crates/m3d/src/partition.rs:
crates/m3d/src/tier.rs:
