/root/repo/target/debug/deps/table2_feature_significance-9a0f19687dd67fff.d: crates/bench/src/bin/table2_feature_significance.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_feature_significance-9a0f19687dd67fff.rmeta: crates/bench/src/bin/table2_feature_significance.rs Cargo.toml

crates/bench/src/bin/table2_feature_significance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
