/root/repo/target/debug/deps/table2_feature_significance-f7275ee24e4b1390.d: crates/bench/src/bin/table2_feature_significance.rs

/root/repo/target/debug/deps/table2_feature_significance-f7275ee24e4b1390: crates/bench/src/bin/table2_feature_significance.rs

crates/bench/src/bin/table2_feature_significance.rs:
