/root/repo/target/debug/deps/table6_effectiveness-369f829832e77929.d: crates/bench/src/bin/table6_effectiveness.rs

/root/repo/target/debug/deps/table6_effectiveness-369f829832e77929: crates/bench/src/bin/table6_effectiveness.rs

crates/bench/src/bin/table6_effectiveness.rs:
