/root/repo/target/debug/deps/io_round_trip-78f1e83fafa2cc50.d: tests/io_round_trip.rs

/root/repo/target/debug/deps/io_round_trip-78f1e83fafa2cc50: tests/io_round_trip.rs

tests/io_round_trip.rs:
