/root/repo/target/debug/deps/m3d_fault_localization-f5abb75bde73daa9.d: crates/core/src/lib.rs crates/core/src/classifier.rs crates/core/src/env.rs crates/core/src/eval.rs crates/core/src/framework.rs crates/core/src/models.rs crates/core/src/policy.rs crates/core/src/region.rs crates/core/src/sample.rs

/root/repo/target/debug/deps/libm3d_fault_localization-f5abb75bde73daa9.rlib: crates/core/src/lib.rs crates/core/src/classifier.rs crates/core/src/env.rs crates/core/src/eval.rs crates/core/src/framework.rs crates/core/src/models.rs crates/core/src/policy.rs crates/core/src/region.rs crates/core/src/sample.rs

/root/repo/target/debug/deps/libm3d_fault_localization-f5abb75bde73daa9.rmeta: crates/core/src/lib.rs crates/core/src/classifier.rs crates/core/src/env.rs crates/core/src/eval.rs crates/core/src/framework.rs crates/core/src/models.rs crates/core/src/policy.rs crates/core/src/region.rs crates/core/src/sample.rs

crates/core/src/lib.rs:
crates/core/src/classifier.rs:
crates/core/src/env.rs:
crates/core/src/eval.rs:
crates/core/src/framework.rs:
crates/core/src/models.rs:
crates/core/src/policy.rs:
crates/core/src/region.rs:
crates/core/src/sample.rs:
