/root/repo/target/debug/deps/m3d_dft-d7d82f8be582ddb3.d: crates/dft/src/lib.rs

/root/repo/target/debug/deps/m3d_dft-d7d82f8be582ddb3: crates/dft/src/lib.rs

crates/dft/src/lib.rs:
