/root/repo/target/debug/deps/table10_multifault-6c8f8450099a3d0d.d: crates/bench/src/bin/table10_multifault.rs Cargo.toml

/root/repo/target/debug/deps/libtable10_multifault-6c8f8450099a3d0d.rmeta: crates/bench/src/bin/table10_multifault.rs Cargo.toml

crates/bench/src/bin/table10_multifault.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
