/root/repo/target/debug/deps/m3d_gnn-e7d8003dbd5298b5.d: crates/gnn/src/lib.rs crates/gnn/src/graph.rs crates/gnn/src/layers.rs crates/gnn/src/matrix.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/pca.rs crates/gnn/src/significance.rs

/root/repo/target/debug/deps/m3d_gnn-e7d8003dbd5298b5: crates/gnn/src/lib.rs crates/gnn/src/graph.rs crates/gnn/src/layers.rs crates/gnn/src/matrix.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/pca.rs crates/gnn/src/significance.rs

crates/gnn/src/lib.rs:
crates/gnn/src/graph.rs:
crates/gnn/src/layers.rs:
crates/gnn/src/matrix.rs:
crates/gnn/src/metrics.rs:
crates/gnn/src/model.rs:
crates/gnn/src/pca.rs:
crates/gnn/src/significance.rs:
