/root/repo/target/debug/deps/table3_design_matrix-f8d32098b967e9b1.d: crates/bench/src/bin/table3_design_matrix.rs

/root/repo/target/debug/deps/table3_design_matrix-f8d32098b967e9b1: crates/bench/src/bin/table3_design_matrix.rs

crates/bench/src/bin/table3_design_matrix.rs:
