/root/repo/target/debug/deps/cli-e1b72e5dc05639c8.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-e1b72e5dc05639c8.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_m3d-diag=placeholder:m3d-diag
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
