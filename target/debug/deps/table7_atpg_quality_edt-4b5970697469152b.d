/root/repo/target/debug/deps/table7_atpg_quality_edt-4b5970697469152b.d: crates/bench/src/bin/table7_atpg_quality_edt.rs Cargo.toml

/root/repo/target/debug/deps/libtable7_atpg_quality_edt-4b5970697469152b.rmeta: crates/bench/src/bin/table7_atpg_quality_edt.rs Cargo.toml

crates/bench/src/bin/table7_atpg_quality_edt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
