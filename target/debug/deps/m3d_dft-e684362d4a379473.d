/root/repo/target/debug/deps/m3d_dft-e684362d4a379473.d: crates/dft/src/lib.rs

/root/repo/target/debug/deps/libm3d_dft-e684362d4a379473.rlib: crates/dft/src/lib.rs

/root/repo/target/debug/deps/libm3d_dft-e684362d4a379473.rmeta: crates/dft/src/lib.rs

crates/dft/src/lib.rs:
