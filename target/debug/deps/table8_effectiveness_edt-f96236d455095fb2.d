/root/repo/target/debug/deps/table8_effectiveness_edt-f96236d455095fb2.d: crates/bench/src/bin/table8_effectiveness_edt.rs Cargo.toml

/root/repo/target/debug/deps/libtable8_effectiveness_edt-f96236d455095fb2.rmeta: crates/bench/src/bin/table8_effectiveness_edt.rs Cargo.toml

crates/bench/src/bin/table8_effectiveness_edt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
