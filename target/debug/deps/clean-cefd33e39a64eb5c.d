/root/repo/target/debug/deps/clean-cefd33e39a64eb5c.d: crates/lint/tests/clean.rs Cargo.toml

/root/repo/target/debug/deps/libclean-cefd33e39a64eb5c.rmeta: crates/lint/tests/clean.rs Cargo.toml

crates/lint/tests/clean.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
