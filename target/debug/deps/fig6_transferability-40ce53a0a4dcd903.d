/root/repo/target/debug/deps/fig6_transferability-40ce53a0a4dcd903.d: crates/bench/src/bin/fig6_transferability.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_transferability-40ce53a0a4dcd903.rmeta: crates/bench/src/bin/fig6_transferability.rs Cargo.toml

crates/bench/src/bin/fig6_transferability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
