/root/repo/target/debug/deps/m3d_fault_diagnosis-eb0fb31d14184754.d: src/lib.rs

/root/repo/target/debug/deps/libm3d_fault_diagnosis-eb0fb31d14184754.rlib: src/lib.rs

/root/repo/target/debug/deps/libm3d_fault_diagnosis-eb0fb31d14184754.rmeta: src/lib.rs

src/lib.rs:
