/root/repo/target/debug/deps/table8_effectiveness_edt-5fd31652b6768c92.d: crates/bench/src/bin/table8_effectiveness_edt.rs

/root/repo/target/debug/deps/table8_effectiveness_edt-5fd31652b6768c92: crates/bench/src/bin/table8_effectiveness_edt.rs

crates/bench/src/bin/table8_effectiveness_edt.rs:
