/root/repo/target/debug/deps/m3d_lint-7e58ff7b1f29ebb3.d: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/dft.rs crates/lint/src/passes/m3d.rs crates/lint/src/passes/netlist.rs crates/lint/src/passes/tensor.rs crates/lint/src/report.rs crates/lint/src/runner.rs

/root/repo/target/debug/deps/libm3d_lint-7e58ff7b1f29ebb3.rlib: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/dft.rs crates/lint/src/passes/m3d.rs crates/lint/src/passes/netlist.rs crates/lint/src/passes/tensor.rs crates/lint/src/report.rs crates/lint/src/runner.rs

/root/repo/target/debug/deps/libm3d_lint-7e58ff7b1f29ebb3.rmeta: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/dft.rs crates/lint/src/passes/m3d.rs crates/lint/src/passes/netlist.rs crates/lint/src/passes/tensor.rs crates/lint/src/report.rs crates/lint/src/runner.rs

crates/lint/src/lib.rs:
crates/lint/src/diag.rs:
crates/lint/src/passes/mod.rs:
crates/lint/src/passes/dft.rs:
crates/lint/src/passes/m3d.rs:
crates/lint/src/passes/netlist.rs:
crates/lint/src/passes/tensor.rs:
crates/lint/src/report.rs:
crates/lint/src/runner.rs:
