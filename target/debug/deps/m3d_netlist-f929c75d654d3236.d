/root/repo/target/debug/deps/m3d_netlist-f929c75d654d3236.d: crates/netlist/src/lib.rs crates/netlist/src/builder.rs crates/netlist/src/error.rs crates/netlist/src/gate.rs crates/netlist/src/ids.rs crates/netlist/src/netlist.rs crates/netlist/src/site.rs crates/netlist/src/check.rs crates/netlist/src/generate/mod.rs crates/netlist/src/generate/aes.rs crates/netlist/src/generate/leon3mp.rs crates/netlist/src/generate/netcard.rs crates/netlist/src/generate/tate.rs crates/netlist/src/io.rs crates/netlist/src/raw.rs crates/netlist/src/tpi.rs crates/netlist/src/transform.rs Cargo.toml

/root/repo/target/debug/deps/libm3d_netlist-f929c75d654d3236.rmeta: crates/netlist/src/lib.rs crates/netlist/src/builder.rs crates/netlist/src/error.rs crates/netlist/src/gate.rs crates/netlist/src/ids.rs crates/netlist/src/netlist.rs crates/netlist/src/site.rs crates/netlist/src/check.rs crates/netlist/src/generate/mod.rs crates/netlist/src/generate/aes.rs crates/netlist/src/generate/leon3mp.rs crates/netlist/src/generate/netcard.rs crates/netlist/src/generate/tate.rs crates/netlist/src/io.rs crates/netlist/src/raw.rs crates/netlist/src/tpi.rs crates/netlist/src/transform.rs Cargo.toml

crates/netlist/src/lib.rs:
crates/netlist/src/builder.rs:
crates/netlist/src/error.rs:
crates/netlist/src/gate.rs:
crates/netlist/src/ids.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/site.rs:
crates/netlist/src/check.rs:
crates/netlist/src/generate/mod.rs:
crates/netlist/src/generate/aes.rs:
crates/netlist/src/generate/leon3mp.rs:
crates/netlist/src/generate/netcard.rs:
crates/netlist/src/generate/tate.rs:
crates/netlist/src/io.rs:
crates/netlist/src/raw.rs:
crates/netlist/src/tpi.rs:
crates/netlist/src/transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
