/root/repo/target/debug/deps/m3d_bench-bafcc42db7892233.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libm3d_bench-bafcc42db7892233.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
