/root/repo/target/debug/deps/table9_runtime-e687ff960fcba625.d: crates/bench/src/bin/table9_runtime.rs Cargo.toml

/root/repo/target/debug/deps/libtable9_runtime-e687ff960fcba625.rmeta: crates/bench/src/bin/table9_runtime.rs Cargo.toml

crates/bench/src/bin/table9_runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
