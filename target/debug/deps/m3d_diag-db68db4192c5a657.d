/root/repo/target/debug/deps/m3d_diag-db68db4192c5a657.d: src/bin/m3d-diag.rs

/root/repo/target/debug/deps/m3d_diag-db68db4192c5a657: src/bin/m3d-diag.rs

src/bin/m3d-diag.rs:
