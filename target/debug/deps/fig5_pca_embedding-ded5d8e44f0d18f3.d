/root/repo/target/debug/deps/fig5_pca_embedding-ded5d8e44f0d18f3.d: crates/bench/src/bin/fig5_pca_embedding.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_pca_embedding-ded5d8e44f0d18f3.rmeta: crates/bench/src/bin/fig5_pca_embedding.rs Cargo.toml

crates/bench/src/bin/fig5_pca_embedding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
