/root/repo/target/debug/deps/clean-594b7a9ae6242cb7.d: crates/lint/tests/clean.rs

/root/repo/target/debug/deps/clean-594b7a9ae6242cb7: crates/lint/tests/clean.rs

crates/lint/tests/clean.rs:
