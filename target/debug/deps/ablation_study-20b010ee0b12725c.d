/root/repo/target/debug/deps/ablation_study-20b010ee0b12725c.d: crates/bench/src/bin/ablation_study.rs

/root/repo/target/debug/deps/ablation_study-20b010ee0b12725c: crates/bench/src/bin/ablation_study.rs

crates/bench/src/bin/ablation_study.rs:
