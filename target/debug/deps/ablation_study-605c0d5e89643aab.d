/root/repo/target/debug/deps/ablation_study-605c0d5e89643aab.d: crates/bench/src/bin/ablation_study.rs Cargo.toml

/root/repo/target/debug/deps/libablation_study-605c0d5e89643aab.rmeta: crates/bench/src/bin/ablation_study.rs Cargo.toml

crates/bench/src/bin/ablation_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
