/root/repo/target/debug/deps/m3d_diagnosis-65c8abfcd70aafe6.d: crates/diagnosis/src/lib.rs crates/diagnosis/src/baseline.rs crates/diagnosis/src/engine.rs crates/diagnosis/src/metrics.rs crates/diagnosis/src/report.rs

/root/repo/target/debug/deps/libm3d_diagnosis-65c8abfcd70aafe6.rlib: crates/diagnosis/src/lib.rs crates/diagnosis/src/baseline.rs crates/diagnosis/src/engine.rs crates/diagnosis/src/metrics.rs crates/diagnosis/src/report.rs

/root/repo/target/debug/deps/libm3d_diagnosis-65c8abfcd70aafe6.rmeta: crates/diagnosis/src/lib.rs crates/diagnosis/src/baseline.rs crates/diagnosis/src/engine.rs crates/diagnosis/src/metrics.rs crates/diagnosis/src/report.rs

crates/diagnosis/src/lib.rs:
crates/diagnosis/src/baseline.rs:
crates/diagnosis/src/engine.rs:
crates/diagnosis/src/metrics.rs:
crates/diagnosis/src/report.rs:
