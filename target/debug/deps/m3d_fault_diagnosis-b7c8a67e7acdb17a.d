/root/repo/target/debug/deps/m3d_fault_diagnosis-b7c8a67e7acdb17a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libm3d_fault_diagnosis-b7c8a67e7acdb17a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
