/root/repo/target/debug/deps/fig5_pca_embedding-2cc797d66153d846.d: crates/bench/src/bin/fig5_pca_embedding.rs

/root/repo/target/debug/deps/fig5_pca_embedding-2cc797d66153d846: crates/bench/src/bin/fig5_pca_embedding.rs

crates/bench/src/bin/fig5_pca_embedding.rs:
