/root/repo/target/debug/deps/table7_atpg_quality_edt-b1135e5d33214760.d: crates/bench/src/bin/table7_atpg_quality_edt.rs Cargo.toml

/root/repo/target/debug/deps/libtable7_atpg_quality_edt-b1135e5d33214760.rmeta: crates/bench/src/bin/table7_atpg_quality_edt.rs Cargo.toml

crates/bench/src/bin/table7_atpg_quality_edt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
