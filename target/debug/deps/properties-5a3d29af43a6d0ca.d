/root/repo/target/debug/deps/properties-5a3d29af43a6d0ca.d: tests/properties.rs

/root/repo/target/debug/deps/properties-5a3d29af43a6d0ca: tests/properties.rs

tests/properties.rs:
