/root/repo/target/debug/deps/m3d_fault_localization-75710a8d0ecca1fa.d: crates/core/src/lib.rs crates/core/src/classifier.rs crates/core/src/env.rs crates/core/src/eval.rs crates/core/src/framework.rs crates/core/src/models.rs crates/core/src/policy.rs crates/core/src/region.rs crates/core/src/sample.rs Cargo.toml

/root/repo/target/debug/deps/libm3d_fault_localization-75710a8d0ecca1fa.rmeta: crates/core/src/lib.rs crates/core/src/classifier.rs crates/core/src/env.rs crates/core/src/eval.rs crates/core/src/framework.rs crates/core/src/models.rs crates/core/src/policy.rs crates/core/src/region.rs crates/core/src/sample.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/classifier.rs:
crates/core/src/env.rs:
crates/core/src/eval.rs:
crates/core/src/framework.rs:
crates/core/src/models.rs:
crates/core/src/policy.rs:
crates/core/src/region.rs:
crates/core/src/sample.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
