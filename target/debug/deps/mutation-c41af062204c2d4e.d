/root/repo/target/debug/deps/mutation-c41af062204c2d4e.d: crates/lint/tests/mutation.rs Cargo.toml

/root/repo/target/debug/deps/libmutation-c41af062204c2d4e.rmeta: crates/lint/tests/mutation.rs Cargo.toml

crates/lint/tests/mutation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
