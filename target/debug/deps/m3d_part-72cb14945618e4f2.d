/root/repo/target/debug/deps/m3d_part-72cb14945618e4f2.d: crates/m3d/src/lib.rs crates/m3d/src/config.rs crates/m3d/src/design.rs crates/m3d/src/partition.rs crates/m3d/src/tier.rs

/root/repo/target/debug/deps/m3d_part-72cb14945618e4f2: crates/m3d/src/lib.rs crates/m3d/src/config.rs crates/m3d/src/design.rs crates/m3d/src/partition.rs crates/m3d/src/tier.rs

crates/m3d/src/lib.rs:
crates/m3d/src/config.rs:
crates/m3d/src/design.rs:
crates/m3d/src/partition.rs:
crates/m3d/src/tier.rs:
