/root/repo/target/debug/deps/m3d_bench-869535d6c56638a8.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libm3d_bench-869535d6c56638a8.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
