/root/repo/target/debug/deps/table5_atpg_quality-c0760ee651e4a3c3.d: crates/bench/src/bin/table5_atpg_quality.rs Cargo.toml

/root/repo/target/debug/deps/libtable5_atpg_quality-c0760ee651e4a3c3.rmeta: crates/bench/src/bin/table5_atpg_quality.rs Cargo.toml

crates/bench/src/bin/table5_atpg_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
