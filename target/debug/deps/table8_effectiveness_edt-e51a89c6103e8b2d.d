/root/repo/target/debug/deps/table8_effectiveness_edt-e51a89c6103e8b2d.d: crates/bench/src/bin/table8_effectiveness_edt.rs

/root/repo/target/debug/deps/table8_effectiveness_edt-e51a89c6103e8b2d: crates/bench/src/bin/table8_effectiveness_edt.rs

crates/bench/src/bin/table8_effectiveness_edt.rs:
