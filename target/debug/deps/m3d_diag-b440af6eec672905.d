/root/repo/target/debug/deps/m3d_diag-b440af6eec672905.d: src/bin/m3d-diag.rs Cargo.toml

/root/repo/target/debug/deps/libm3d_diag-b440af6eec672905.rmeta: src/bin/m3d-diag.rs Cargo.toml

src/bin/m3d-diag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
