/root/repo/target/debug/deps/table8_effectiveness_edt-ac66bd89cdf6a698.d: crates/bench/src/bin/table8_effectiveness_edt.rs Cargo.toml

/root/repo/target/debug/deps/libtable8_effectiveness_edt-ac66bd89cdf6a698.rmeta: crates/bench/src/bin/table8_effectiveness_edt.rs Cargo.toml

crates/bench/src/bin/table8_effectiveness_edt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
