/root/repo/target/debug/deps/io_round_trip-bbc3345fa873de18.d: tests/io_round_trip.rs Cargo.toml

/root/repo/target/debug/deps/libio_round_trip-bbc3345fa873de18.rmeta: tests/io_round_trip.rs Cargo.toml

tests/io_round_trip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
