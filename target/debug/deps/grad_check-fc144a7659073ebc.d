/root/repo/target/debug/deps/grad_check-fc144a7659073ebc.d: crates/gnn/tests/grad_check.rs

/root/repo/target/debug/deps/grad_check-fc144a7659073ebc: crates/gnn/tests/grad_check.rs

crates/gnn/tests/grad_check.rs:
