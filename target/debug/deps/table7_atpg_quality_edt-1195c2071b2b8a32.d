/root/repo/target/debug/deps/table7_atpg_quality_edt-1195c2071b2b8a32.d: crates/bench/src/bin/table7_atpg_quality_edt.rs

/root/repo/target/debug/deps/table7_atpg_quality_edt-1195c2071b2b8a32: crates/bench/src/bin/table7_atpg_quality_edt.rs

crates/bench/src/bin/table7_atpg_quality_edt.rs:
