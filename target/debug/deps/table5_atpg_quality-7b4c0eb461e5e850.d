/root/repo/target/debug/deps/table5_atpg_quality-7b4c0eb461e5e850.d: crates/bench/src/bin/table5_atpg_quality.rs Cargo.toml

/root/repo/target/debug/deps/libtable5_atpg_quality-7b4c0eb461e5e850.rmeta: crates/bench/src/bin/table5_atpg_quality.rs Cargo.toml

crates/bench/src/bin/table5_atpg_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
