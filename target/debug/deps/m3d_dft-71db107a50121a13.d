/root/repo/target/debug/deps/m3d_dft-71db107a50121a13.d: crates/dft/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libm3d_dft-71db107a50121a13.rmeta: crates/dft/src/lib.rs Cargo.toml

crates/dft/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
