/root/repo/target/debug/deps/m3d_bench-08c572d2d9ddd6bc.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libm3d_bench-08c572d2d9ddd6bc.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libm3d_bench-08c572d2d9ddd6bc.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
