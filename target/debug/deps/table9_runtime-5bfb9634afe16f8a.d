/root/repo/target/debug/deps/table9_runtime-5bfb9634afe16f8a.d: crates/bench/src/bin/table9_runtime.rs

/root/repo/target/debug/deps/table9_runtime-5bfb9634afe16f8a: crates/bench/src/bin/table9_runtime.rs

crates/bench/src/bin/table9_runtime.rs:
