/root/repo/target/debug/deps/cli-1a53df7048f1ffa1.d: tests/cli.rs

/root/repo/target/debug/deps/cli-1a53df7048f1ffa1: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_m3d-diag=/root/repo/target/debug/m3d-diag
