/root/repo/target/debug/deps/random_netlists-4a7d47a3c7d252ef.d: crates/netlist/tests/random_netlists.rs Cargo.toml

/root/repo/target/debug/deps/librandom_netlists-4a7d47a3c7d252ef.rmeta: crates/netlist/tests/random_netlists.rs Cargo.toml

crates/netlist/tests/random_netlists.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
