/root/repo/target/debug/deps/table6_effectiveness-886fee89a3fcaada.d: crates/bench/src/bin/table6_effectiveness.rs

/root/repo/target/debug/deps/table6_effectiveness-886fee89a3fcaada: crates/bench/src/bin/table6_effectiveness.rs

crates/bench/src/bin/table6_effectiveness.rs:
