/root/repo/target/debug/deps/grad_check-95825c247e6842c2.d: crates/gnn/tests/grad_check.rs Cargo.toml

/root/repo/target/debug/deps/libgrad_check-95825c247e6842c2.rmeta: crates/gnn/tests/grad_check.rs Cargo.toml

crates/gnn/tests/grad_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
