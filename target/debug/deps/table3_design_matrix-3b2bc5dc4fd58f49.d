/root/repo/target/debug/deps/table3_design_matrix-3b2bc5dc4fd58f49.d: crates/bench/src/bin/table3_design_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_design_matrix-3b2bc5dc4fd58f49.rmeta: crates/bench/src/bin/table3_design_matrix.rs Cargo.toml

crates/bench/src/bin/table3_design_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
