/root/repo/target/debug/deps/ablation_study-2d1a13897bf839e4.d: crates/bench/src/bin/ablation_study.rs

/root/repo/target/debug/deps/ablation_study-2d1a13897bf839e4: crates/bench/src/bin/ablation_study.rs

crates/bench/src/bin/ablation_study.rs:
