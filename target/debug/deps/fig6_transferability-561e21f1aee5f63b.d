/root/repo/target/debug/deps/fig6_transferability-561e21f1aee5f63b.d: crates/bench/src/bin/fig6_transferability.rs

/root/repo/target/debug/deps/fig6_transferability-561e21f1aee5f63b: crates/bench/src/bin/fig6_transferability.rs

crates/bench/src/bin/fig6_transferability.rs:
