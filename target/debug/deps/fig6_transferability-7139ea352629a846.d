/root/repo/target/debug/deps/fig6_transferability-7139ea352629a846.d: crates/bench/src/bin/fig6_transferability.rs

/root/repo/target/debug/deps/fig6_transferability-7139ea352629a846: crates/bench/src/bin/fig6_transferability.rs

crates/bench/src/bin/fig6_transferability.rs:
