/root/repo/target/debug/deps/m3d_gnn-e7dfc2b7a1a5b7a0.d: crates/gnn/src/lib.rs crates/gnn/src/graph.rs crates/gnn/src/layers.rs crates/gnn/src/matrix.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/pca.rs crates/gnn/src/significance.rs

/root/repo/target/debug/deps/libm3d_gnn-e7dfc2b7a1a5b7a0.rlib: crates/gnn/src/lib.rs crates/gnn/src/graph.rs crates/gnn/src/layers.rs crates/gnn/src/matrix.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/pca.rs crates/gnn/src/significance.rs

/root/repo/target/debug/deps/libm3d_gnn-e7dfc2b7a1a5b7a0.rmeta: crates/gnn/src/lib.rs crates/gnn/src/graph.rs crates/gnn/src/layers.rs crates/gnn/src/matrix.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/pca.rs crates/gnn/src/significance.rs

crates/gnn/src/lib.rs:
crates/gnn/src/graph.rs:
crates/gnn/src/layers.rs:
crates/gnn/src/matrix.rs:
crates/gnn/src/metrics.rs:
crates/gnn/src/model.rs:
crates/gnn/src/pca.rs:
crates/gnn/src/significance.rs:
