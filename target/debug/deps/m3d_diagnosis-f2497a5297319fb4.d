/root/repo/target/debug/deps/m3d_diagnosis-f2497a5297319fb4.d: crates/diagnosis/src/lib.rs crates/diagnosis/src/baseline.rs crates/diagnosis/src/engine.rs crates/diagnosis/src/metrics.rs crates/diagnosis/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libm3d_diagnosis-f2497a5297319fb4.rmeta: crates/diagnosis/src/lib.rs crates/diagnosis/src/baseline.rs crates/diagnosis/src/engine.rs crates/diagnosis/src/metrics.rs crates/diagnosis/src/report.rs Cargo.toml

crates/diagnosis/src/lib.rs:
crates/diagnosis/src/baseline.rs:
crates/diagnosis/src/engine.rs:
crates/diagnosis/src/metrics.rs:
crates/diagnosis/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
