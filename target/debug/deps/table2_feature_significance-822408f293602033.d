/root/repo/target/debug/deps/table2_feature_significance-822408f293602033.d: crates/bench/src/bin/table2_feature_significance.rs

/root/repo/target/debug/deps/table2_feature_significance-822408f293602033: crates/bench/src/bin/table2_feature_significance.rs

crates/bench/src/bin/table2_feature_significance.rs:
