/root/repo/target/debug/deps/table7_atpg_quality_edt-98eeb767800e01af.d: crates/bench/src/bin/table7_atpg_quality_edt.rs

/root/repo/target/debug/deps/table7_atpg_quality_edt-98eeb767800e01af: crates/bench/src/bin/table7_atpg_quality_edt.rs

crates/bench/src/bin/table7_atpg_quality_edt.rs:
