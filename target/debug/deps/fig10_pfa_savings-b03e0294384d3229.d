/root/repo/target/debug/deps/fig10_pfa_savings-b03e0294384d3229.d: crates/bench/src/bin/fig10_pfa_savings.rs

/root/repo/target/debug/deps/fig10_pfa_savings-b03e0294384d3229: crates/bench/src/bin/fig10_pfa_savings.rs

crates/bench/src/bin/fig10_pfa_savings.rs:
