/root/repo/target/debug/deps/table11_ablation-bb9d09d81c59cf77.d: crates/bench/src/bin/table11_ablation.rs

/root/repo/target/debug/deps/table11_ablation-bb9d09d81c59cf77: crates/bench/src/bin/table11_ablation.rs

crates/bench/src/bin/table11_ablation.rs:
