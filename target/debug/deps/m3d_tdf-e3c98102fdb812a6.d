/root/repo/target/debug/deps/m3d_tdf-e3c98102fdb812a6.d: crates/tdf/src/lib.rs crates/tdf/src/atpg.rs crates/tdf/src/fault.rs crates/tdf/src/fsim.rs crates/tdf/src/log.rs crates/tdf/src/log_io.rs crates/tdf/src/pattern.rs crates/tdf/src/sim.rs crates/tdf/src/timing.rs

/root/repo/target/debug/deps/m3d_tdf-e3c98102fdb812a6: crates/tdf/src/lib.rs crates/tdf/src/atpg.rs crates/tdf/src/fault.rs crates/tdf/src/fsim.rs crates/tdf/src/log.rs crates/tdf/src/log_io.rs crates/tdf/src/pattern.rs crates/tdf/src/sim.rs crates/tdf/src/timing.rs

crates/tdf/src/lib.rs:
crates/tdf/src/atpg.rs:
crates/tdf/src/fault.rs:
crates/tdf/src/fsim.rs:
crates/tdf/src/log.rs:
crates/tdf/src/log_io.rs:
crates/tdf/src/pattern.rs:
crates/tdf/src/sim.rs:
crates/tdf/src/timing.rs:
