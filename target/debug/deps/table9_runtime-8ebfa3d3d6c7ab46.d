/root/repo/target/debug/deps/table9_runtime-8ebfa3d3d6c7ab46.d: crates/bench/src/bin/table9_runtime.rs

/root/repo/target/debug/deps/table9_runtime-8ebfa3d3d6c7ab46: crates/bench/src/bin/table9_runtime.rs

crates/bench/src/bin/table9_runtime.rs:
