/root/repo/target/debug/deps/random_netlists-1c6e55c7fdab4170.d: crates/netlist/tests/random_netlists.rs

/root/repo/target/debug/deps/random_netlists-1c6e55c7fdab4170: crates/netlist/tests/random_netlists.rs

crates/netlist/tests/random_netlists.rs:
