/root/repo/target/debug/deps/m3d_lint-250afd7fb74cf7eb.d: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/dft.rs crates/lint/src/passes/m3d.rs crates/lint/src/passes/netlist.rs crates/lint/src/passes/tensor.rs crates/lint/src/report.rs crates/lint/src/runner.rs

/root/repo/target/debug/deps/m3d_lint-250afd7fb74cf7eb: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/dft.rs crates/lint/src/passes/m3d.rs crates/lint/src/passes/netlist.rs crates/lint/src/passes/tensor.rs crates/lint/src/report.rs crates/lint/src/runner.rs

crates/lint/src/lib.rs:
crates/lint/src/diag.rs:
crates/lint/src/passes/mod.rs:
crates/lint/src/passes/dft.rs:
crates/lint/src/passes/m3d.rs:
crates/lint/src/passes/netlist.rs:
crates/lint/src/passes/tensor.rs:
crates/lint/src/report.rs:
crates/lint/src/runner.rs:
