/root/repo/target/debug/deps/fig5_pca_embedding-5be09d32dee06e77.d: crates/bench/src/bin/fig5_pca_embedding.rs

/root/repo/target/debug/deps/fig5_pca_embedding-5be09d32dee06e77: crates/bench/src/bin/fig5_pca_embedding.rs

crates/bench/src/bin/fig5_pca_embedding.rs:
