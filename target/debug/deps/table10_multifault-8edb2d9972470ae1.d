/root/repo/target/debug/deps/table10_multifault-8edb2d9972470ae1.d: crates/bench/src/bin/table10_multifault.rs

/root/repo/target/debug/deps/table10_multifault-8edb2d9972470ae1: crates/bench/src/bin/table10_multifault.rs

crates/bench/src/bin/table10_multifault.rs:
