/root/repo/target/debug/deps/table5_atpg_quality-4064caae71ae5310.d: crates/bench/src/bin/table5_atpg_quality.rs

/root/repo/target/debug/deps/table5_atpg_quality-4064caae71ae5310: crates/bench/src/bin/table5_atpg_quality.rs

crates/bench/src/bin/table5_atpg_quality.rs:
