/root/repo/target/debug/deps/m3d_hetgraph-301d4123ea9e2df7.d: crates/hetgraph/src/lib.rs crates/hetgraph/src/graph.rs crates/hetgraph/src/subgraph.rs Cargo.toml

/root/repo/target/debug/deps/libm3d_hetgraph-301d4123ea9e2df7.rmeta: crates/hetgraph/src/lib.rs crates/hetgraph/src/graph.rs crates/hetgraph/src/subgraph.rs Cargo.toml

crates/hetgraph/src/lib.rs:
crates/hetgraph/src/graph.rs:
crates/hetgraph/src/subgraph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
