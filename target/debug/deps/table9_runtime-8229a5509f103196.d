/root/repo/target/debug/deps/table9_runtime-8229a5509f103196.d: crates/bench/src/bin/table9_runtime.rs Cargo.toml

/root/repo/target/debug/deps/libtable9_runtime-8229a5509f103196.rmeta: crates/bench/src/bin/table9_runtime.rs Cargo.toml

crates/bench/src/bin/table9_runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
