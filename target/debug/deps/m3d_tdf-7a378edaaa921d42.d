/root/repo/target/debug/deps/m3d_tdf-7a378edaaa921d42.d: crates/tdf/src/lib.rs crates/tdf/src/atpg.rs crates/tdf/src/fault.rs crates/tdf/src/fsim.rs crates/tdf/src/log.rs crates/tdf/src/log_io.rs crates/tdf/src/pattern.rs crates/tdf/src/sim.rs crates/tdf/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libm3d_tdf-7a378edaaa921d42.rmeta: crates/tdf/src/lib.rs crates/tdf/src/atpg.rs crates/tdf/src/fault.rs crates/tdf/src/fsim.rs crates/tdf/src/log.rs crates/tdf/src/log_io.rs crates/tdf/src/pattern.rs crates/tdf/src/sim.rs crates/tdf/src/timing.rs Cargo.toml

crates/tdf/src/lib.rs:
crates/tdf/src/atpg.rs:
crates/tdf/src/fault.rs:
crates/tdf/src/fsim.rs:
crates/tdf/src/log.rs:
crates/tdf/src/log_io.rs:
crates/tdf/src/pattern.rs:
crates/tdf/src/sim.rs:
crates/tdf/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
