/root/repo/target/debug/deps/table6_effectiveness-3490c17adc462b84.d: crates/bench/src/bin/table6_effectiveness.rs Cargo.toml

/root/repo/target/debug/deps/libtable6_effectiveness-3490c17adc462b84.rmeta: crates/bench/src/bin/table6_effectiveness.rs Cargo.toml

crates/bench/src/bin/table6_effectiveness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
