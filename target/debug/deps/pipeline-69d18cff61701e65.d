/root/repo/target/debug/deps/pipeline-69d18cff61701e65.d: crates/bench/benches/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-69d18cff61701e65.rmeta: crates/bench/benches/pipeline.rs Cargo.toml

crates/bench/benches/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
