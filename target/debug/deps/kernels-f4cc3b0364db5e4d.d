/root/repo/target/debug/deps/kernels-f4cc3b0364db5e4d.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-f4cc3b0364db5e4d.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
