/root/repo/target/release/deps/m3d_diag-036a318ab64d3066.d: src/bin/m3d-diag.rs

/root/repo/target/release/deps/m3d_diag-036a318ab64d3066: src/bin/m3d-diag.rs

src/bin/m3d-diag.rs:
