/root/repo/target/release/deps/m3d_tdf-bfe629e4ff6d374e.d: crates/tdf/src/lib.rs crates/tdf/src/atpg.rs crates/tdf/src/fault.rs crates/tdf/src/fsim.rs crates/tdf/src/log.rs crates/tdf/src/log_io.rs crates/tdf/src/pattern.rs crates/tdf/src/sim.rs crates/tdf/src/timing.rs

/root/repo/target/release/deps/libm3d_tdf-bfe629e4ff6d374e.rlib: crates/tdf/src/lib.rs crates/tdf/src/atpg.rs crates/tdf/src/fault.rs crates/tdf/src/fsim.rs crates/tdf/src/log.rs crates/tdf/src/log_io.rs crates/tdf/src/pattern.rs crates/tdf/src/sim.rs crates/tdf/src/timing.rs

/root/repo/target/release/deps/libm3d_tdf-bfe629e4ff6d374e.rmeta: crates/tdf/src/lib.rs crates/tdf/src/atpg.rs crates/tdf/src/fault.rs crates/tdf/src/fsim.rs crates/tdf/src/log.rs crates/tdf/src/log_io.rs crates/tdf/src/pattern.rs crates/tdf/src/sim.rs crates/tdf/src/timing.rs

crates/tdf/src/lib.rs:
crates/tdf/src/atpg.rs:
crates/tdf/src/fault.rs:
crates/tdf/src/fsim.rs:
crates/tdf/src/log.rs:
crates/tdf/src/log_io.rs:
crates/tdf/src/pattern.rs:
crates/tdf/src/sim.rs:
crates/tdf/src/timing.rs:
