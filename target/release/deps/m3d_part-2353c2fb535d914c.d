/root/repo/target/release/deps/m3d_part-2353c2fb535d914c.d: crates/m3d/src/lib.rs crates/m3d/src/config.rs crates/m3d/src/design.rs crates/m3d/src/partition.rs crates/m3d/src/tier.rs

/root/repo/target/release/deps/libm3d_part-2353c2fb535d914c.rlib: crates/m3d/src/lib.rs crates/m3d/src/config.rs crates/m3d/src/design.rs crates/m3d/src/partition.rs crates/m3d/src/tier.rs

/root/repo/target/release/deps/libm3d_part-2353c2fb535d914c.rmeta: crates/m3d/src/lib.rs crates/m3d/src/config.rs crates/m3d/src/design.rs crates/m3d/src/partition.rs crates/m3d/src/tier.rs

crates/m3d/src/lib.rs:
crates/m3d/src/config.rs:
crates/m3d/src/design.rs:
crates/m3d/src/partition.rs:
crates/m3d/src/tier.rs:
