/root/repo/target/release/deps/m3d_fault_diagnosis-4a15229ad80411de.d: src/lib.rs

/root/repo/target/release/deps/libm3d_fault_diagnosis-4a15229ad80411de.rlib: src/lib.rs

/root/repo/target/release/deps/libm3d_fault_diagnosis-4a15229ad80411de.rmeta: src/lib.rs

src/lib.rs:
