/root/repo/target/release/deps/m3d_hetgraph-c1cb640a6dd14a6c.d: crates/hetgraph/src/lib.rs crates/hetgraph/src/graph.rs crates/hetgraph/src/subgraph.rs

/root/repo/target/release/deps/libm3d_hetgraph-c1cb640a6dd14a6c.rlib: crates/hetgraph/src/lib.rs crates/hetgraph/src/graph.rs crates/hetgraph/src/subgraph.rs

/root/repo/target/release/deps/libm3d_hetgraph-c1cb640a6dd14a6c.rmeta: crates/hetgraph/src/lib.rs crates/hetgraph/src/graph.rs crates/hetgraph/src/subgraph.rs

crates/hetgraph/src/lib.rs:
crates/hetgraph/src/graph.rs:
crates/hetgraph/src/subgraph.rs:
