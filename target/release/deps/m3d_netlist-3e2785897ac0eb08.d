/root/repo/target/release/deps/m3d_netlist-3e2785897ac0eb08.d: crates/netlist/src/lib.rs crates/netlist/src/builder.rs crates/netlist/src/error.rs crates/netlist/src/gate.rs crates/netlist/src/ids.rs crates/netlist/src/netlist.rs crates/netlist/src/site.rs crates/netlist/src/check.rs crates/netlist/src/generate/mod.rs crates/netlist/src/generate/aes.rs crates/netlist/src/generate/leon3mp.rs crates/netlist/src/generate/netcard.rs crates/netlist/src/generate/tate.rs crates/netlist/src/io.rs crates/netlist/src/raw.rs crates/netlist/src/tpi.rs crates/netlist/src/transform.rs

/root/repo/target/release/deps/libm3d_netlist-3e2785897ac0eb08.rlib: crates/netlist/src/lib.rs crates/netlist/src/builder.rs crates/netlist/src/error.rs crates/netlist/src/gate.rs crates/netlist/src/ids.rs crates/netlist/src/netlist.rs crates/netlist/src/site.rs crates/netlist/src/check.rs crates/netlist/src/generate/mod.rs crates/netlist/src/generate/aes.rs crates/netlist/src/generate/leon3mp.rs crates/netlist/src/generate/netcard.rs crates/netlist/src/generate/tate.rs crates/netlist/src/io.rs crates/netlist/src/raw.rs crates/netlist/src/tpi.rs crates/netlist/src/transform.rs

/root/repo/target/release/deps/libm3d_netlist-3e2785897ac0eb08.rmeta: crates/netlist/src/lib.rs crates/netlist/src/builder.rs crates/netlist/src/error.rs crates/netlist/src/gate.rs crates/netlist/src/ids.rs crates/netlist/src/netlist.rs crates/netlist/src/site.rs crates/netlist/src/check.rs crates/netlist/src/generate/mod.rs crates/netlist/src/generate/aes.rs crates/netlist/src/generate/leon3mp.rs crates/netlist/src/generate/netcard.rs crates/netlist/src/generate/tate.rs crates/netlist/src/io.rs crates/netlist/src/raw.rs crates/netlist/src/tpi.rs crates/netlist/src/transform.rs

crates/netlist/src/lib.rs:
crates/netlist/src/builder.rs:
crates/netlist/src/error.rs:
crates/netlist/src/gate.rs:
crates/netlist/src/ids.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/site.rs:
crates/netlist/src/check.rs:
crates/netlist/src/generate/mod.rs:
crates/netlist/src/generate/aes.rs:
crates/netlist/src/generate/leon3mp.rs:
crates/netlist/src/generate/netcard.rs:
crates/netlist/src/generate/tate.rs:
crates/netlist/src/io.rs:
crates/netlist/src/raw.rs:
crates/netlist/src/tpi.rs:
crates/netlist/src/transform.rs:
