/root/repo/target/release/deps/m3d_gnn-4705c392dd53cdb9.d: crates/gnn/src/lib.rs crates/gnn/src/graph.rs crates/gnn/src/layers.rs crates/gnn/src/matrix.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/pca.rs crates/gnn/src/significance.rs

/root/repo/target/release/deps/libm3d_gnn-4705c392dd53cdb9.rlib: crates/gnn/src/lib.rs crates/gnn/src/graph.rs crates/gnn/src/layers.rs crates/gnn/src/matrix.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/pca.rs crates/gnn/src/significance.rs

/root/repo/target/release/deps/libm3d_gnn-4705c392dd53cdb9.rmeta: crates/gnn/src/lib.rs crates/gnn/src/graph.rs crates/gnn/src/layers.rs crates/gnn/src/matrix.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/pca.rs crates/gnn/src/significance.rs

crates/gnn/src/lib.rs:
crates/gnn/src/graph.rs:
crates/gnn/src/layers.rs:
crates/gnn/src/matrix.rs:
crates/gnn/src/metrics.rs:
crates/gnn/src/model.rs:
crates/gnn/src/pca.rs:
crates/gnn/src/significance.rs:
