/root/repo/target/release/deps/m3d_lint-c251631b259a26ec.d: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/dft.rs crates/lint/src/passes/m3d.rs crates/lint/src/passes/netlist.rs crates/lint/src/passes/tensor.rs crates/lint/src/report.rs crates/lint/src/runner.rs

/root/repo/target/release/deps/libm3d_lint-c251631b259a26ec.rlib: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/dft.rs crates/lint/src/passes/m3d.rs crates/lint/src/passes/netlist.rs crates/lint/src/passes/tensor.rs crates/lint/src/report.rs crates/lint/src/runner.rs

/root/repo/target/release/deps/libm3d_lint-c251631b259a26ec.rmeta: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/dft.rs crates/lint/src/passes/m3d.rs crates/lint/src/passes/netlist.rs crates/lint/src/passes/tensor.rs crates/lint/src/report.rs crates/lint/src/runner.rs

crates/lint/src/lib.rs:
crates/lint/src/diag.rs:
crates/lint/src/passes/mod.rs:
crates/lint/src/passes/dft.rs:
crates/lint/src/passes/m3d.rs:
crates/lint/src/passes/netlist.rs:
crates/lint/src/passes/tensor.rs:
crates/lint/src/report.rs:
crates/lint/src/runner.rs:
