/root/repo/target/release/deps/m3d_diagnosis-ff41bf4be245fb14.d: crates/diagnosis/src/lib.rs crates/diagnosis/src/baseline.rs crates/diagnosis/src/engine.rs crates/diagnosis/src/metrics.rs crates/diagnosis/src/report.rs

/root/repo/target/release/deps/libm3d_diagnosis-ff41bf4be245fb14.rlib: crates/diagnosis/src/lib.rs crates/diagnosis/src/baseline.rs crates/diagnosis/src/engine.rs crates/diagnosis/src/metrics.rs crates/diagnosis/src/report.rs

/root/repo/target/release/deps/libm3d_diagnosis-ff41bf4be245fb14.rmeta: crates/diagnosis/src/lib.rs crates/diagnosis/src/baseline.rs crates/diagnosis/src/engine.rs crates/diagnosis/src/metrics.rs crates/diagnosis/src/report.rs

crates/diagnosis/src/lib.rs:
crates/diagnosis/src/baseline.rs:
crates/diagnosis/src/engine.rs:
crates/diagnosis/src/metrics.rs:
crates/diagnosis/src/report.rs:
