/root/repo/target/release/deps/m3d_fault_localization-209e3a9b8a9cf429.d: crates/core/src/lib.rs crates/core/src/classifier.rs crates/core/src/env.rs crates/core/src/eval.rs crates/core/src/framework.rs crates/core/src/models.rs crates/core/src/policy.rs crates/core/src/region.rs crates/core/src/sample.rs

/root/repo/target/release/deps/libm3d_fault_localization-209e3a9b8a9cf429.rlib: crates/core/src/lib.rs crates/core/src/classifier.rs crates/core/src/env.rs crates/core/src/eval.rs crates/core/src/framework.rs crates/core/src/models.rs crates/core/src/policy.rs crates/core/src/region.rs crates/core/src/sample.rs

/root/repo/target/release/deps/libm3d_fault_localization-209e3a9b8a9cf429.rmeta: crates/core/src/lib.rs crates/core/src/classifier.rs crates/core/src/env.rs crates/core/src/eval.rs crates/core/src/framework.rs crates/core/src/models.rs crates/core/src/policy.rs crates/core/src/region.rs crates/core/src/sample.rs

crates/core/src/lib.rs:
crates/core/src/classifier.rs:
crates/core/src/env.rs:
crates/core/src/eval.rs:
crates/core/src/framework.rs:
crates/core/src/models.rs:
crates/core/src/policy.rs:
crates/core/src/region.rs:
crates/core/src/sample.rs:
