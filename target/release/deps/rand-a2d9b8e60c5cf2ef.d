/root/repo/target/release/deps/rand-a2d9b8e60c5cf2ef.d: crates/rand/src/lib.rs

/root/repo/target/release/deps/librand-a2d9b8e60c5cf2ef.rlib: crates/rand/src/lib.rs

/root/repo/target/release/deps/librand-a2d9b8e60c5cf2ef.rmeta: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
