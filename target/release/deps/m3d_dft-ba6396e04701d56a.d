/root/repo/target/release/deps/m3d_dft-ba6396e04701d56a.d: crates/dft/src/lib.rs

/root/repo/target/release/deps/libm3d_dft-ba6396e04701d56a.rlib: crates/dft/src/lib.rs

/root/repo/target/release/deps/libm3d_dft-ba6396e04701d56a.rmeta: crates/dft/src/lib.rs

crates/dft/src/lib.rs:
