//! Adversarial JSON round-trips: rendered reports and events must
//! survive hostile strings (quotes, backslashes, control characters,
//! astral characters) and parse back with every field intact.

use m3d_fault_diagnosis::lint::{Diagnostic, LintCode, LintReport, Span};
use m3d_fault_diagnosis::netlist::NetId;
use m3d_fault_diagnosis::obs::json::{parse, Json};

/// Strings chosen to break naive escaping: every JSON metacharacter,
/// the full C0 control range's edges, and astral-plane characters that
/// need surrogate pairs in other ecosystems' writers.
fn hostile_strings() -> Vec<String> {
    vec![
        "plain ascii".to_owned(),
        "quote \" backslash \\ slash / end".to_owned(),
        "newline \n tab \t carriage \r return".to_owned(),
        "\u{0}\u{1}\u{1f} bell \u{7} escape \u{1b}".to_owned(),
        "astral \u{1F600} and max \u{10FFFF}".to_owned(),
        "C:\\path\\to\\\"file\".v".to_owned(),
        "embedded json {\"a\":[1,2],\"b\":\"x\"}".to_owned(),
        "trailing backslash \\".to_owned(),
    ]
}

#[test]
fn lint_report_json_round_trips_hostile_messages() {
    let hostile = hostile_strings();
    let mut report = LintReport::new("design \"x\\y\"\nwith \u{1F4A3} in the name");
    for (i, msg) in hostile.iter().enumerate() {
        report.push(Diagnostic::new(
            LintCode::ConstantNet,
            Span::Net(NetId::new(i)),
            msg.clone(),
        ));
    }

    let rendered = report.render_json();
    let doc = parse(&rendered).expect("render_json output must be valid JSON");

    assert_eq!(
        doc.get("target").and_then(Json::as_str),
        Some(report.target()),
        "target string must survive the round-trip"
    );
    let diags = doc
        .get("diagnostics")
        .and_then(Json::as_arr)
        .expect("diagnostics array");
    assert_eq!(diags.len(), hostile.len());
    for (entry, msg) in diags.iter().zip(&hostile) {
        assert_eq!(entry.get("code").and_then(Json::as_str), Some("L1001"));
        assert_eq!(
            entry.get("message").and_then(Json::as_str),
            Some(msg.as_str()),
            "message must survive the round-trip"
        );
    }
}

#[test]
fn obs_json_round_trips_hostile_values_and_keys() {
    let obj = Json::Obj(
        hostile_strings()
            .into_iter()
            .enumerate()
            .map(|(i, s)| (format!("k{i} {s}"), Json::Str(s)))
            .collect(),
    );
    let doc = Json::Arr(vec![obj.clone(), Json::Str(String::new())]);
    let rendered = doc.render();
    assert_eq!(parse(&rendered).expect("valid JSON"), doc);
    // Render is deterministic through a second cycle.
    assert_eq!(parse(&rendered).unwrap().render(), rendered);
}
