//! End-to-end tests of the `m3d-diag` command-line tool: the file-level
//! gen → partition → inject → diagnose flow a user runs from a shell.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_m3d-diag"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("m3d_diag_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn cli_full_flow_finds_the_injected_fault() {
    let netlist = tmp("aes.m3d");
    let tiers = tmp("aes.tiers");
    let log = tmp("chip.log");

    let out = bin()
        .args(["gen", "--bench", "aes", "--target", "400", "-o"])
        .arg(&netlist)
        .output()
        .expect("run gen");
    assert!(
        out.status.success(),
        "gen: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args(["partition", "--netlist"])
        .arg(&netlist)
        .args(["--algo", "mincut", "-o"])
        .arg(&tiers)
        .output()
        .expect("run partition");
    assert!(out.status.success());

    let out = bin()
        .args(["stats", "--netlist"])
        .arg(&netlist)
        .args(["--partition"])
        .arg(&tiers)
        .output()
        .expect("run stats");
    assert!(out.status.success());
    let stats = String::from_utf8_lossy(&out.stdout);
    assert!(stats.contains("MIVs"), "stats must report MIVs: {stats}");

    // Find a site whose injection actually produces tester failures (not
    // every site is detectable — e.g. pure-PI cones under held-PI LOC).
    let mut hit_site = None;
    for site in (250..450).step_by(7) {
        let out = bin()
            .args(["inject", "--netlist"])
            .arg(&netlist)
            .args(["--partition"])
            .arg(&tiers)
            .args(["--site", &site.to_string(), "-o"])
            .arg(&log)
            .output()
            .expect("run inject");
        assert!(
            out.status.success(),
            "inject: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = std::fs::read_to_string(&log).expect("log written");
        if text.lines().any(|l| l.starts_with("fail")) {
            hit_site = Some(site);
            break;
        }
    }
    let site = hit_site.expect("some site in range must be detectable");

    let out = bin()
        .args(["diagnose", "--netlist"])
        .arg(&netlist)
        .args(["--partition"])
        .arg(&tiers)
        .args(["--log"])
        .arg(&log)
        .output()
        .expect("run diagnose");
    assert!(out.status.success());
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(
        report.contains(&format!("s{site}")),
        "diagnosis must list injected site s{site}:\n{report}"
    );

    for p in [netlist, tiers, log] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn cli_rejects_bad_input_with_useful_errors() {
    let out = bin().args(["gen", "--bench", "nosuch"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown benchmark"));

    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = bin()
        .args(["inject", "--netlist", "/nonexistent"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn cli_help_prints_usage() {
    let out = bin().args(["help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
}
