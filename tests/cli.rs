//! End-to-end tests of the `m3d-diag` command-line tool: the file-level
//! gen → partition → inject → diagnose flow a user runs from a shell.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_m3d-diag"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("m3d_diag_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn cli_full_flow_finds_the_injected_fault() {
    let netlist = tmp("aes.m3d");
    let tiers = tmp("aes.tiers");
    let log = tmp("chip.log");

    let out = bin()
        .args(["gen", "--bench", "aes", "--target", "400", "-o"])
        .arg(&netlist)
        .output()
        .expect("run gen");
    assert!(
        out.status.success(),
        "gen: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args(["partition", "--netlist"])
        .arg(&netlist)
        .args(["--algo", "mincut", "-o"])
        .arg(&tiers)
        .output()
        .expect("run partition");
    assert!(out.status.success());

    let out = bin()
        .args(["stats", "--netlist"])
        .arg(&netlist)
        .args(["--partition"])
        .arg(&tiers)
        .output()
        .expect("run stats");
    assert!(out.status.success());
    let stats = String::from_utf8_lossy(&out.stdout);
    assert!(stats.contains("MIVs"), "stats must report MIVs: {stats}");

    // Find a site whose injection actually produces tester failures (not
    // every site is detectable — e.g. pure-PI cones under held-PI LOC).
    let mut hit_site = None;
    for site in (250..450).step_by(7) {
        let out = bin()
            .args(["inject", "--netlist"])
            .arg(&netlist)
            .args(["--partition"])
            .arg(&tiers)
            .args(["--site", &site.to_string(), "-o"])
            .arg(&log)
            .output()
            .expect("run inject");
        assert!(
            out.status.success(),
            "inject: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = std::fs::read_to_string(&log).expect("log written");
        if text.lines().any(|l| l.starts_with("fail")) {
            hit_site = Some(site);
            break;
        }
    }
    let site = hit_site.expect("some site in range must be detectable");

    let out = bin()
        .args(["diagnose", "--netlist"])
        .arg(&netlist)
        .args(["--partition"])
        .arg(&tiers)
        .args(["--log"])
        .arg(&log)
        .output()
        .expect("run diagnose");
    assert!(out.status.success());
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(
        report.contains(&format!("s{site}")),
        "diagnosis must list injected site s{site}:\n{report}"
    );

    for p in [netlist, tiers, log] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn cli_rejects_bad_input_with_useful_errors() {
    let out = bin().args(["gen", "--bench", "nosuch"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown benchmark"));

    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = bin()
        .args(["inject", "--netlist", "/nonexistent"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

/// Runs `m3d-diag train` with shared small-benchmark knobs plus `extra`
/// flags, asserts success, and returns captured stdout.
fn run_train(dir: &PathBuf, extra: &[&str]) -> String {
    let mut cmd = bin();
    cmd.args([
        "train",
        "--bench",
        "aes",
        "--target",
        "240",
        "--samples",
        "24",
        "--epochs",
        "6",
        "--checkpoint-dir",
    ])
    .arg(dir)
    .args(extra);
    let out = cmd.output().expect("run train");
    assert!(
        out.status.success(),
        "train {extra:?}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Extracts the value of a `key: value` stdout line.
fn stdout_field<'a>(stdout: &'a str, key: &str) -> &'a str {
    stdout
        .lines()
        .find_map(|l| l.strip_prefix(key).and_then(|r| r.strip_prefix(": ")))
        .unwrap_or_else(|| panic!("no `{key}:` line in:\n{stdout}"))
}

#[test]
fn cli_train_halt_and_resume_match_an_uninterrupted_run() {
    let straight_dir = tmp("ckpt_straight");
    let resumed_dir = tmp("ckpt_resumed");

    // Reference: 6 epochs, no interruption.
    let straight = run_train(&straight_dir, &["--guard-policy", "skip"]);
    assert_eq!(stdout_field(&straight, "epochs run"), "6 of 6");
    let want = stdout_field(&straight, "weights digest");

    // Simulated crash after epoch 3, then resume to completion.
    let halted = run_train(
        &resumed_dir,
        &["--guard-policy", "skip", "--halt-after", "3"],
    );
    assert!(
        halted.contains("halted after epoch 3"),
        "halt must be reported:\n{halted}"
    );
    assert_ne!(
        stdout_field(&halted, "weights digest"),
        want,
        "half-trained weights must differ from fully-trained ones"
    );

    let resumed = run_train(&resumed_dir, &["--guard-policy", "skip", "--resume"]);
    assert!(
        resumed.contains("resumed from checkpoint at epoch 3"),
        "resume must be reported:\n{resumed}"
    );
    assert_eq!(stdout_field(&resumed, "epochs run"), "3 of 6");
    assert_eq!(
        stdout_field(&resumed, "weights digest"),
        want,
        "resumed run must be bit-identical to the uninterrupted run\n\
         straight:\n{straight}\nresumed:\n{resumed}"
    );
    assert_eq!(
        stdout_field(&resumed, "final loss"),
        stdout_field(&straight, "final loss"),
    );

    for d in [straight_dir, resumed_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn cli_train_rejects_unknown_guard_policy() {
    let out = bin()
        .args([
            "train",
            "--checkpoint-dir",
            "/tmp/x",
            "--guard-policy",
            "yolo",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown guard policy"));

    let out = bin().args(["train"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--checkpoint-dir"));
}

#[test]
fn cli_help_prints_usage() {
    let out = bin().args(["help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
}

#[test]
fn cli_help_documents_per_command_and_global_flags() {
    let out = bin().args(["help", "train"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for flag in ["--checkpoint-dir", "--guard-policy", "--trace", "--metrics"] {
        assert!(
            text.contains(flag),
            "help train must mention {flag}:\n{text}"
        );
    }

    let out = bin().args(["help", "report"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("report"));

    let out = bin().args(["help", "nosuch"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn cli_train_emits_valid_trace_and_metrics_and_report_renders_them() {
    let ckpt = tmp("ckpt_obs");
    let trace = tmp("trace.jsonl");
    let metrics = tmp("metrics.jsonl");

    let stdout = run_train(
        &ckpt,
        &[
            "--trace",
            trace.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ],
    );
    assert_eq!(stdout_field(&stdout, "epochs run"), "6 of 6");

    // Every line of both sinks must parse back as a schema-valid event.
    let trace_text = std::fs::read_to_string(&trace).expect("trace written");
    let trace_events =
        m3d_fault_diagnosis::obs::report::parse_jsonl(&trace_text).expect("trace parses");
    let metrics_text = std::fs::read_to_string(&metrics).expect("metrics written");
    m3d_fault_diagnosis::obs::report::parse_jsonl(&metrics_text).expect("metrics parse");

    // The trace must cover every instrumented pipeline stage.
    let span_names: Vec<&str> = trace_events
        .iter()
        .filter_map(|e| match e {
            m3d_fault_diagnosis::obs::Event::Span { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    for stage in [
        "train",
        "atpg",
        "sample_generation",
        "train_epoch",
        "checkpoint_write",
        "fault_simulation",
        "diagnosis",
    ] {
        assert!(
            span_names.contains(&stage),
            "trace must contain a {stage} span, got {span_names:?}"
        );
    }

    // The report subcommand renders both sinks into one breakdown.
    let out = bin()
        .arg("report")
        .arg(&trace)
        .arg(&metrics)
        .output()
        .expect("run report");
    assert!(
        out.status.success(),
        "report: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8_lossy(&out.stdout);
    for needle in ["span breakdown:", "train_epoch", "counters:", "series:"] {
        assert!(
            report.contains(needle),
            "report must contain {needle}:\n{report}"
        );
    }

    let _ = std::fs::remove_dir_all(ckpt);
    for f in [trace, metrics] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn cli_report_requires_a_file_argument() {
    let out = bin().args(["report"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: m3d-diag report"));
}
