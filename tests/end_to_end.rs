//! Cross-crate integration tests: the full pipeline from netlist
//! generation through diagnosis enhancement, with the invariants every
//! release must hold.

use m3d_fault_diagnosis::dft::ObsMode;
use m3d_fault_diagnosis::diagnosis::{baseline_filter, Diagnoser, DiagnosisConfig};
use m3d_fault_diagnosis::fault_localization::{
    evaluate_methods, generate_samples, DiagSample, FaultLocalizer, FrameworkConfig, InjectionKind,
    PolicyAction, TestEnv,
};
use m3d_fault_diagnosis::netlist::generate::Benchmark;
use m3d_fault_diagnosis::part::DesignConfig;

fn small_env() -> TestEnv {
    TestEnv::build(Benchmark::Aes, DesignConfig::Syn1, Some(400))
}

fn trained(env: &TestEnv, n: usize) -> (Vec<DiagSample>, FaultLocalizer) {
    let fsim = env.fault_sim();
    let train = generate_samples(env, &fsim, ObsMode::Bypass, InjectionKind::Single, n, 1);
    let refs: Vec<&DiagSample> = train.iter().collect();
    let fw = FaultLocalizer::train(&refs, &FrameworkConfig::default());
    (train, fw)
}

#[test]
fn pipeline_diagnoses_unseen_faults_accurately() {
    let env = small_env();
    let (_train, fw) = trained(&env, 120);
    let fsim = env.fault_sim();
    let test = generate_samples(&env, &fsim, ObsMode::Bypass, InjectionKind::Single, 20, 777);
    let eval = evaluate_methods(&env, &fsim, &fw, ObsMode::Bypass, &test);
    assert!(eval.atpg.accuracy >= 0.9, "ATPG acc {}", eval.atpg.accuracy);
    assert!(
        eval.gnn.accuracy >= eval.atpg.accuracy - 0.25,
        "GNN accuracy loss bounded at this tiny training scale: {} vs {}",
        eval.gnn.accuracy,
        eval.atpg.accuracy
    );
    assert!(eval.combined.mean_resolution <= eval.atpg.mean_resolution);
    assert!(eval.baseline.mean_resolution <= eval.atpg.mean_resolution);
}

#[test]
fn backup_dictionary_recovers_everything_pruned() {
    // The paper's compensation method: ATPG accuracy is recoverable
    // because pruned candidates land in the backup dictionary.
    let env = small_env();
    let (_train, fw) = trained(&env, 60);
    let fsim = env.fault_sim();
    let test = generate_samples(
        &env,
        &fsim,
        ObsMode::Bypass,
        InjectionKind::Single,
        25,
        4242,
    );
    let diagnoser = Diagnoser::new(
        &fsim,
        &env.scan,
        ObsMode::Bypass,
        DiagnosisConfig::default(),
    );
    let mut pruned_seen = false;
    for chip in &test {
        let report = diagnoser.diagnose(&chip.log);
        let outcome = fw.enhance(&env.design, &report, chip);
        // Invariant: pruning never loses a candidate — final + backup is a
        // permutation of the original report.
        let mut all: Vec<_> = outcome
            .report
            .candidates()
            .iter()
            .map(|c| c.fault)
            .chain(outcome.backup.iter().map(|c| c.fault))
            .collect();
        all.sort();
        let mut orig: Vec<_> = report.candidates().iter().map(|c| c.fault).collect();
        orig.sort();
        assert_eq!(all, orig, "no candidate may vanish");
        if outcome.action == PolicyAction::Prune && !outcome.backup.is_empty() {
            pruned_seen = true;
        }
    }
    assert!(pruned_seen, "some chip must exercise the pruning path");
}

#[test]
fn compaction_degrades_but_does_not_break_diagnosis() {
    let env = small_env();
    let fsim = env.fault_sim();
    let mut res = [0.0f64; 2];
    for (i, mode) in ObsMode::ALL.into_iter().enumerate() {
        let samples = generate_samples(&env, &fsim, mode, InjectionKind::Single, 15, 5);
        let diagnoser = Diagnoser::new(&fsim, &env.scan, mode, DiagnosisConfig::default());
        let mut total = 0usize;
        let mut acc = 0usize;
        for s in &samples {
            let r = diagnoser.diagnose(&s.log);
            total += r.resolution();
            acc += usize::from(r.is_accurate(&s.injected));
        }
        res[i] = total as f64 / samples.len() as f64;
        assert!(
            acc * 10 >= samples.len() * 8,
            "{mode:?} accuracy {acc}/{}",
            samples.len()
        );
    }
    assert!(
        res[1] >= res[0],
        "compaction must not improve resolution: {res:?}"
    );
}

#[test]
fn multifault_chips_still_get_tier_predictions() {
    let env = small_env();
    let (_train, fw) = trained(&env, 60);
    let fsim = env.fault_sim();
    let chips = generate_samples(
        &env,
        &fsim,
        ObsMode::Bypass,
        InjectionKind::MultiSameTier,
        15,
        31,
    );
    let with_subgraph = chips.iter().filter(|c| c.subgraph.is_some()).count();
    assert!(
        with_subgraph * 10 >= chips.len() * 8,
        "back-tracing fallback must produce sub-graphs for multi-fault \
         chips ({with_subgraph}/{})",
        chips.len()
    );
    let mut correct = 0usize;
    let mut graded = 0usize;
    for chip in &chips {
        let (Some(sg), Some(truth)) = (&chip.subgraph, chip.faulty_tier) else {
            continue;
        };
        graded += 1;
        let (tier, _) = fw.tier.predict(sg);
        correct += usize::from(tier == truth);
    }
    assert!(graded > 0);
    assert!(
        correct * 2 >= graded,
        "multi-fault tier localization beats chance: {correct}/{graded}"
    );
}

#[test]
fn transferred_framework_generalizes_across_configs() {
    let env = small_env();
    let (_train, fw) = trained(&env, 80);
    for config in [DesignConfig::Tpi, DesignConfig::Par] {
        let other = TestEnv::build(Benchmark::Aes, config, Some(400));
        let fsim = other.fault_sim();
        let test = generate_samples(&other, &fsim, ObsMode::Bypass, InjectionKind::Single, 20, 9);
        let refs: Vec<&DiagSample> = test.iter().collect();
        let acc = fw.tier.accuracy(&refs);
        assert!(
            acc >= 0.6,
            "{}: transferred tier accuracy {acc}",
            config.name()
        );
    }
}

#[test]
fn baseline_filter_composes_with_policy() {
    let env = small_env();
    let (_train, fw) = trained(&env, 50);
    let fsim = env.fault_sim();
    let test = generate_samples(&env, &fsim, ObsMode::Bypass, InjectionKind::Single, 10, 12);
    let diagnoser = Diagnoser::new(
        &fsim,
        &env.scan,
        ObsMode::Bypass,
        DiagnosisConfig::default(),
    );
    for chip in &test {
        let report = diagnoser.diagnose(&chip.log);
        let outcome = fw.enhance(&env.design, &report, chip);
        let combined = baseline_filter(&outcome.report);
        assert!(combined.resolution() <= outcome.report.resolution());
        assert!(combined.resolution() <= report.resolution());
    }
}
