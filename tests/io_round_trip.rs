//! Integration tests for the file-level flow: netlist, partition, and
//! failure-log text formats feeding the diagnosis pipeline — the exact
//! path the `m3d-diag` CLI exercises.

use m3d_fault_diagnosis::dft::{ObsMode, ScanChains, ScanConfig};
use m3d_fault_diagnosis::diagnosis::{Diagnoser, DiagnosisConfig};
use m3d_fault_diagnosis::netlist::generate::{Benchmark, GenParams};
use m3d_fault_diagnosis::netlist::io::{read_netlist, write_netlist};
use m3d_fault_diagnosis::part::{read_partition, write_partition, M3dDesign, PartitionAlgo};
use m3d_fault_diagnosis::tdf::{
    generate_patterns, read_failure_log, write_failure_log, AtpgConfig, FailureLog, FaultSim,
};

/// Serialize the whole test setup to text, parse it back, and verify a
/// failure log diagnosed through the round-tripped artefacts still
/// pinpoints the injected fault.
#[test]
fn file_level_flow_diagnoses_correctly() {
    // Producer side (e.g. design house): netlist + partition + tester log.
    let nl = Benchmark::Tate.generate(&GenParams::small(1).with_target(400));
    let part = PartitionAlgo::MinCut.partition(&nl, 1);
    let design = M3dDesign::new(nl, part);
    let ts = generate_patterns(&design, &AtpgConfig::new(1, 512));
    let scan = ScanChains::new(
        design.netlist(),
        ScanConfig::for_flop_count(design.netlist().flops().len()),
    );
    let fault = m3d_fault_diagnosis::tdf::full_fault_list(&design)
        .into_iter()
        .zip(&ts.detected)
        .find(|&(_, &d)| d)
        .map(|(f, _)| f)
        .expect("a detected fault");
    let fsim = FaultSim::new(&design, &ts.patterns);
    let dets = fsim.detections(&mut fsim.detector(), &[fault]);
    let log = FailureLog::from_detections(&dets, &scan, ObsMode::Bypass);

    let netlist_txt = write_netlist(design.netlist());
    let partition_txt = write_partition(design.partition());
    let log_txt = write_failure_log(&log);

    // Consumer side (e.g. diagnosis service): parse everything back.
    let nl2 = read_netlist(&netlist_txt).expect("netlist parses");
    let part2 = read_partition(&nl2, &partition_txt).expect("partition parses");
    let design2 = M3dDesign::new(nl2, part2);
    let log2 = read_failure_log(&log_txt).expect("log parses");
    assert_eq!(log2, log, "log round-trips exactly");
    assert_eq!(design2.miv_count(), design.miv_count());

    // Patterns are regenerated deterministically from the same seed.
    let ts2 = generate_patterns(&design2, &AtpgConfig::new(1, 512));
    assert_eq!(ts2.pattern_count(), ts.pattern_count());
    let scan2 = ScanChains::new(
        design2.netlist(),
        ScanConfig::for_flop_count(design2.netlist().flops().len()),
    );
    let fsim2 = FaultSim::new(&design2, &ts2.patterns);
    let diagnoser = Diagnoser::new(&fsim2, &scan2, ObsMode::Bypass, DiagnosisConfig::default());
    let report = diagnoser.diagnose(&log2);
    assert!(
        report.is_accurate(&[fault]),
        "round-tripped artefacts must still localize the fault:\n{report}"
    );
}

/// Compacted-mode logs survive the same journey.
#[test]
fn compacted_log_round_trips_through_text() {
    let nl = Benchmark::Netcard.generate(&GenParams::small(1).with_target(400));
    let part = PartitionAlgo::LevelBanded.partition(&nl, 2);
    let design = M3dDesign::new(nl, part);
    let ts = generate_patterns(&design, &AtpgConfig::new(2, 256));
    let scan = ScanChains::new(
        design.netlist(),
        ScanConfig::for_flop_count(design.netlist().flops().len()),
    );
    let fsim = FaultSim::new(&design, &ts.patterns);
    let mut found = 0;
    for (fault, &d) in m3d_fault_diagnosis::tdf::full_fault_list(&design)
        .into_iter()
        .zip(&ts.detected)
        .take(400)
    {
        if !d {
            continue;
        }
        let dets = fsim.detections(&mut fsim.detector(), &[fault]);
        let log = FailureLog::from_detections(&dets, &scan, ObsMode::Compacted);
        if log.is_empty() {
            continue;
        }
        let back = read_failure_log(&write_failure_log(&log)).expect("round trip");
        assert_eq!(back, log);
        found += 1;
        if found >= 5 {
            break;
        }
    }
    assert!(found >= 5, "need several compacted logs to round-trip");
}

/// The canonical-form property: parse(write(x)) re-serializes identically.
#[test]
fn formats_are_canonical() {
    let nl = Benchmark::Leon3mp.generate(&GenParams::small(4));
    let t1 = write_netlist(&nl);
    let t2 = write_netlist(&read_netlist(&t1).expect("parses"));
    assert_eq!(t1, t2);

    let p = PartitionAlgo::Random.partition(&nl, 9);
    let s1 = write_partition(&p);
    let s2 = write_partition(&read_partition(&nl, &s1).expect("parses"));
    assert_eq!(s1, s2);
}
