//! Property-based tests over randomly generated designs: structural
//! invariants that must hold for *every* netlist, partition, pattern set,
//! and fault, not just the benchmark circuits.

use proptest::prelude::*;

use m3d_fault_diagnosis::dft::{ObsMode, ScanChains, ScanConfig};
use m3d_fault_diagnosis::gnn::{GcnGraph, Matrix};
use m3d_fault_diagnosis::hetgraph::{back_trace, HetGraph};
use m3d_fault_diagnosis::netlist::generate::{Benchmark, GenParams};
use m3d_fault_diagnosis::netlist::{FlopId, GateKind, Netlist, NetlistBuilder};
use m3d_fault_diagnosis::part::{M3dDesign, PartitionAlgo};
use m3d_fault_diagnosis::tdf::{
    eval_single_frame, FailureLog, Fault, FaultSim, PatternSet, Polarity, Simulator,
};

/// A random small-but-valid netlist: a seeded benchmark at a random size.
fn arb_design() -> impl Strategy<Value = M3dDesign> {
    (0u8..4, 1u64..50, 250usize..450, 0u8..3).prop_map(|(bench, seed, target, algo)| {
        let bench = Benchmark::ALL[bench as usize];
        let nl = bench.generate(&GenParams::new(seed).with_target(target));
        let algo = [
            PartitionAlgo::MinCut,
            PartitionAlgo::LevelBanded,
            PartitionAlgo::Random,
        ][algo as usize];
        let part = algo.partition(&nl, seed);
        M3dDesign::new(nl, part)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn topological_order_is_always_valid(design in arb_design()) {
        let nl = design.netlist();
        let mut seen = vec![false; nl.gate_count()];
        for &g in nl.topo_order() {
            for p in nl.fanin_gates(g) {
                if nl.gate(p).kind().is_combinational() {
                    prop_assert!(seen[p.index()], "{p} used before defined");
                }
            }
            seen[g.index()] = true;
        }
    }

    #[test]
    fn partitions_are_area_balanced(design in arb_design()) {
        prop_assert!(design.partition().imbalance(design.netlist()) < 0.3);
        // Every MIV sits on a genuinely cut net.
        for (i, m) in design.mivs().iter().enumerate() {
            prop_assert!(!design.far_sinks(i as u32).is_empty());
            let net = design.netlist().net(m.net);
            prop_assert_eq!(
                design.tier_of_gate(net.driver()), m.driver_tier
            );
        }
    }

    #[test]
    fn parallel_sim_matches_scalar_reference(design in arb_design(), lane in 0u8..32) {
        let nl = design.netlist();
        let pats = PatternSet::random(nl, 32, 99);
        let sim = Simulator::new(nl);
        let block = &pats.blocks()[0];
        let run = sim.run_block(block);
        let pi: Vec<bool> =
            block.pi.iter().map(|&w| (w >> lane) & 1 == 1).collect();
        let st: Vec<bool> =
            block.scan.iter().map(|&w| (w >> lane) & 1 == 1).collect();
        let reference = eval_single_frame(nl, &pi, &st);
        for (i, &v) in reference.iter().enumerate() {
            prop_assert_eq!((run.f1[i] >> lane) & 1 == 1, v);
        }
    }

    #[test]
    fn compactor_is_linear_in_gf2(design in arb_design(), split in 1usize..8) {
        // XOR compaction is linear: observe(A) xor observe(B) ==
        // observe(A symmetric-difference B), expressed via parity of
        // overlapping fail sets.
        let nl = design.netlist();
        let scan = ScanChains::new(nl, ScanConfig::for_flop_count(nl.flops().len()));
        let n = nl.flops().len();
        let a: Vec<FlopId> = (0..split.min(n)).map(FlopId::new).collect();
        let b: Vec<FlopId> = (split.min(n)..n.min(split + 5)).map(FlopId::new).collect();
        let mut both = a.clone();
        both.extend(&b);
        let oa = scan.observe(&a, ObsMode::Compacted);
        let ob = scan.observe(&b, ObsMode::Compacted);
        let oboth = scan.observe(&both, ObsMode::Compacted);
        // Disjoint fail sets: symmetric difference of observations.
        let mut sym: Vec<_> = oa
            .iter()
            .filter(|o| !ob.contains(o))
            .chain(ob.iter().filter(|o| !oa.contains(o)))
            .copied()
            .collect();
        sym.sort();
        prop_assert_eq!(sym, oboth);
    }

    #[test]
    fn back_tracing_is_sound_for_single_faults(design in arb_design(), pick in 0usize..1000) {
        let nl = design.netlist();
        let pats = PatternSet::random(nl, 128, 7);
        let fsim = FaultSim::new(&design, &pats);
        let scan = ScanChains::new(nl, ScanConfig::for_flop_count(nl.flops().len()));
        let het = HetGraph::new(&design);
        let site = m3d_fault_diagnosis::netlist::SiteId::new(
            pick % design.sites().len(),
        );
        let mut det = fsim.detector();
        for pol in Polarity::ALL {
            let fault = Fault::new(site, pol);
            let dets = fsim.detections(&mut det, &[fault]);
            for mode in ObsMode::ALL {
                let log = FailureLog::from_detections(&dets, &scan, mode);
                if log.is_empty() {
                    continue;
                }
                let sg = back_trace(&het, &fsim, &scan, &log);
                let sg = sg.expect("single-fault logs always back-trace");
                prop_assert!(
                    sg.node_of(site).is_some(),
                    "{mode:?}: injected site must be in the sub-graph"
                );
            }
        }
    }

    #[test]
    fn gcn_aggregation_preserves_constant_vectors(nodes in 2usize..20, extra in 0usize..30) {
        // Mean aggregation must fix the constant vector regardless of the
        // topology (rows of D^-1 A sum to 1).
        let mut edges = Vec::new();
        for v in 1..nodes {
            edges.push((v - 1, v));
        }
        for k in 0..extra {
            edges.push((k % nodes, (k * 7 + 3) % nodes));
        }
        let g = GcnGraph::from_edges(nodes, &edges);
        let ones = Matrix::from_vec(nodes, 1, vec![1.0; nodes]);
        let agg = g.aggregate(&ones);
        for i in 0..nodes {
            prop_assert!((agg[(i, 0)] - 1.0).abs() < 1e-5);
        }
    }
}

/// Hand-rolled netlists (not from the generators) must survive the whole
/// flow too.
#[test]
fn handmade_netlist_flows_end_to_end() {
    let mut b = NetlistBuilder::new("handmade");
    let inputs: Vec<_> = (0..6).map(|i| b.add_input(&format!("i{i}"))).collect();
    let mut regs = Vec::new();
    for chunk in inputs.chunks(2) {
        let x = b.add_gate(GateKind::Xor, &[chunk[0], chunk[1]]);
        regs.push(b.add_dff(x));
    }
    let a1 = b.add_gate(GateKind::Nand, &[regs[0], regs[1]]);
    let a2 = b.add_gate(GateKind::Nor, &[regs[1], regs[2]]);
    let m = b.add_gate(GateKind::Mux2, &[regs[0], a1, a2]);
    let q = b.add_dff(m);
    let q2 = b.add_dff(a2);
    b.add_output("q", q);
    b.add_output("q2", q2);
    let nl: Netlist = b.finish().expect("valid handmade netlist");

    let part = PartitionAlgo::MinCut.partition(&nl, 3);
    let design = M3dDesign::new(nl, part);
    let pats = PatternSet::random(design.netlist(), 64, 1);
    let fsim = FaultSim::new(&design, &pats);
    let faults = m3d_fault_diagnosis::tdf::full_fault_list(&design);
    let mut det = fsim.detector();
    let detected = faults
        .iter()
        .filter(|f| !fsim.detections(&mut det, &[**f]).is_empty())
        .count();
    assert!(detected > 0, "some fault must be detectable");
}
