//! Region-level fault localization on a conventional 2D design.
//!
//! The paper's models are not M3D-specific: partition any 2D netlist into
//! spatial regions and the Tier-predictor architecture localizes faults to
//! a region (Section III-C) — useful for wafer-level defect clustering and
//! PFA scoping on planar silicon too. This example partitions an AES-like
//! 2D netlist into four regions, trains the region predictor, and scores
//! unseen failing chips.
//!
//! Run with: `cargo run --release --example region_localization_2d`

use m3d_fault_diagnosis::dft::ObsMode;
use m3d_fault_diagnosis::fault_localization::{
    generate_samples, DiagSample, InjectionKind, ModelConfig, RegionMap, RegionPredictor, TestEnv,
};
use m3d_fault_diagnosis::netlist::generate::Benchmark;
use m3d_fault_diagnosis::part::DesignConfig;

fn main() {
    let env = TestEnv::build(Benchmark::Aes, DesignConfig::Syn1, Some(900));
    let k = 4;
    let map = RegionMap::build(env.design.netlist(), k, 11);
    println!(
        "partitioned {} gates into {} regions: {:?}",
        env.design.netlist().gate_count(),
        k,
        map.histogram()
    );

    let fsim = env.fault_sim();
    let train = generate_samples(&env, &fsim, ObsMode::Bypass, InjectionKind::Single, 200, 1);
    let test = generate_samples(&env, &fsim, ObsMode::Bypass, InjectionKind::Single, 50, 999);
    let train_refs: Vec<&DiagSample> = train.iter().collect();
    let test_refs: Vec<&DiagSample> = test.iter().collect();

    let model = RegionPredictor::train(&env.design, &map, &train_refs, &ModelConfig::default());
    let acc = model.accuracy(&env.design, &map, &test_refs);
    println!(
        "region localization accuracy on {} unseen chips: {:.1}% (chance {:.1}%)",
        test.len(),
        acc * 100.0,
        100.0 / k as f64
    );

    // Show a few individual localizations.
    println!("\nchip  true region  predicted  probabilities");
    for (i, chip) in test.iter().take(8).enumerate() {
        let Some(sg) = &chip.subgraph else { continue };
        let truth = map.region_of_site(&env.design, chip.injected[0].site);
        let pred = model.predict(&env.design, &map, sg);
        let proba = model.predict_proba(&env.design, &map, sg);
        let probs: Vec<String> = proba.iter().map(|p| format!("{p:.2}")).collect();
        println!(
            "  {:<3} {:<12} {:<10} [{}] {}",
            i + 1,
            truth,
            pred,
            probs.join(", "),
            if pred == truth { "✓" } else { "✗" }
        );
    }
}
