//! MIV defect screening: early characterization of defective inter-tier
//! vias.
//!
//! MIVs punch through the inter-tier dielectric and are prone to voids
//! that manifest as delay defects (paper Section I). This example plays a
//! silicon bring-up engineer: chips with suspected MIV delay faults arrive
//! from the tester; the MIV-pinpointer flags the faulty via directly, and
//! the policy moves MIV-equivalent candidates to the top of every
//! diagnosis report so PFA looks at the right via first.
//!
//! Run with: `cargo run --release --example miv_screening`

use m3d_fault_diagnosis::dft::ObsMode;
use m3d_fault_diagnosis::diagnosis::{miv_equivalent, Diagnoser, DiagnosisConfig};
use m3d_fault_diagnosis::fault_localization::{
    generate_samples, DiagSample, FaultLocalizer, FrameworkConfig, InjectionKind, TestEnv,
};
use m3d_fault_diagnosis::netlist::generate::Benchmark;
use m3d_fault_diagnosis::part::DesignConfig;

fn main() {
    let env = TestEnv::build(Benchmark::Tate, DesignConfig::Syn1, Some(1000));
    println!(
        "design has {} MIVs across {} nets",
        env.design.miv_count(),
        env.design.netlist().net_count()
    );

    // Train with a mixture rich in MIV faults so the pinpointer sees
    // positives.
    let fsim = env.fault_sim();
    let mut train = generate_samples(&env, &fsim, ObsMode::Bypass, InjectionKind::Single, 100, 3);
    train.extend(generate_samples(
        &env,
        &fsim,
        ObsMode::Bypass,
        InjectionKind::MivOnly,
        60,
        4,
    ));
    let refs: Vec<&DiagSample> = train.iter().collect();
    let framework = FaultLocalizer::train(&refs, &FrameworkConfig::default());

    // Screen a batch of suspected-MIV failing chips.
    let chips = generate_samples(
        &env,
        &fsim,
        ObsMode::Bypass,
        InjectionKind::MivOnly,
        12,
        0xABCD,
    );
    let diagnoser = Diagnoser::new(
        &fsim,
        &env.scan,
        ObsMode::Bypass,
        DiagnosisConfig::default(),
    );

    let mut hits = 0usize;
    let mut top_ranked = 0usize;
    println!("\nchip  injected MIV  predicted MIVs  rank of MIV candidate");
    for (i, chip) in chips.iter().enumerate() {
        let Some(sg) = &chip.subgraph else { continue };
        let predicted = framework.miv.predict_faulty_mivs(sg);
        let truth = chip.miv_truth.first().copied();
        if truth.is_some_and(|t| predicted.contains(&t)) {
            hits += 1;
        }

        let report = diagnoser.diagnose(&chip.log);
        let outcome = framework.enhance(&env.design, &report, chip);
        // Where does the first MIV-equivalent candidate rank now?
        let rank = outcome
            .report
            .candidates()
            .iter()
            .position(|c| {
                miv_equivalent(&env.design, c.fault.site).is_some_and(|m| Some(m) == truth)
            })
            .map(|p| p + 1);
        if rank == Some(1) {
            top_ranked += 1;
        }
        println!(
            "  {:<3} {:<12?} {:<15?} {:?}",
            i + 1,
            truth,
            predicted,
            rank
        );
    }
    println!(
        "\npinpointer hit rate: {hits}/{} chips; MIV candidate ranked #1 on \
         {top_ranked} reports (policy prioritizes predicted MIVs)",
        chips.len()
    );
}
