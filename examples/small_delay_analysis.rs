//! Small-delay-defect detectability analysis.
//!
//! Gross TDF testing catches any activated slow transition, but real M3D
//! defects add *finite* delay: an MIV void or a degraded top-tier
//! transistor adds a small δ that only fails paths with little slack. This
//! example runs static timing with the M3D technology penalties (top-tier
//! device degradation, bottom-tier tungsten interconnect, MIV crossing
//! delay) and reports how detectable small defects are per tier — the
//! quantitative version of the paper's Section I motivation.
//!
//! Run with: `cargo run --release --example small_delay_analysis`

use m3d_fault_diagnosis::netlist::generate::Benchmark;
use m3d_fault_diagnosis::netlist::SitePos;
use m3d_fault_diagnosis::part::DesignConfig;
use m3d_fault_diagnosis::tdf::{StaticTiming, TimingModel};

fn main() {
    let model = TimingModel::default();
    println!(
        "timing model: top-tier device ×{:.2}, bottom-tier wire ×{:.2}, \
         MIV +{:.2}",
        model.top_tier_device_penalty, model.bottom_tier_wire_penalty, model.miv_delay
    );
    println!(
        "\n{:<9} {:>9} {:>12} {:>12} {:>14}",
        "design", "Tcrit", "δmin top", "δmin bottom", "10% δ caught"
    );
    for bench in Benchmark::ALL {
        let design = DesignConfig::Syn1.build_sized(bench, Some(800));
        let timing = StaticTiming::compute(&design, &model);
        let period = timing.critical_path() * 1.05; // 5% clock margin
        let profile = timing.tier_slack_profile(&design, period);

        // How many sites would a defect of 10% of the period be caught at?
        let delta = period * 0.10;
        let (mut caught, mut total) = (0usize, 0usize);
        let mut miv_caught = 0usize;
        let mut miv_total = 0usize;
        for (site, pos) in design.sites().iter() {
            let min_delta = timing.min_detectable_delta(&design, site, period);
            let hit = delta >= min_delta;
            if matches!(pos, SitePos::Miv(_)) {
                miv_total += 1;
                miv_caught += usize::from(hit);
            } else {
                total += 1;
                caught += usize::from(hit);
            }
        }
        println!(
            "{:<9} {:>9.1} {:>12.2} {:>12.2} {:>11.1}% (MIVs {:.1}%)",
            bench.name(),
            timing.critical_path(),
            profile[0],
            profile[1],
            caught as f64 / total.max(1) as f64 * 100.0,
            miv_caught as f64 / miv_total.max(1) as f64 * 100.0,
        );
    }
    println!(
        "\nReading: δmin is the smallest defect the at-speed test can catch \
         (mean per tier). MIV sites sit on penalized crossings, so small \
         MIV voids are caught at higher rates than average — the defect \
         class the paper's MIV-pinpointer targets."
    );
}
