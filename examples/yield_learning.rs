//! Yield learning: tier-level feedback to the foundry from a lot of
//! failing chips.
//!
//! Scenario from the paper's introduction: an immature low-temperature
//! process causes *systematic* delay defects concentrated in the top tier.
//! Chips fail on the tester with 2–5 delay faults each; waiting for
//! physical failure analysis of every chip would take weeks. The
//! Tier-predictor localizes each failing chip to a tier in milliseconds,
//! and the aggregated histogram points the process team at the faulty tier
//! long before PFA.
//!
//! Run with: `cargo run --release --example yield_learning`

use m3d_fault_diagnosis::dft::ObsMode;
use m3d_fault_diagnosis::fault_localization::{
    generate_samples, DiagSample, FaultLocalizer, FrameworkConfig, InjectionKind, TestEnv,
};
use m3d_fault_diagnosis::hetgraph::back_trace;
use m3d_fault_diagnosis::netlist::generate::Benchmark;
use m3d_fault_diagnosis::part::{DesignConfig, Tier};
use m3d_fault_diagnosis::tdf::{FailureLog, FaultSim};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let env = TestEnv::build(Benchmark::Netcard, DesignConfig::Syn1, Some(1500));
    let fsim = env.fault_sim();

    // Train on ordinary single-fault chips.
    let train = generate_samples(
        &env,
        &fsim,
        ObsMode::Compacted,
        InjectionKind::Single,
        150,
        7,
    );
    let refs: Vec<&DiagSample> = train.iter().collect();
    let framework = FaultLocalizer::train(&refs, &FrameworkConfig::default());
    println!(
        "framework trained on {} chips (Tp = {:.3})",
        train.len(),
        framework.tp_threshold
    );

    // The failing lot: systematic top-tier defects, 2-5 faults per chip
    // (the immature top-tier device process).
    let mut rng = StdRng::seed_from_u64(99);
    let top_faults: Vec<_> = env
        .detected_faults()
        .into_iter()
        .filter(|f| env.design.tier_of_site(f.site) == Some(Tier::Top))
        .collect();
    let lot_size = 40;
    println!("\nsimulating a lot of {lot_size} failing chips (top-tier systematic defects)…");

    let mut votes = [0usize; 2];
    let mut unresolved = 0usize;
    let mut detector = fsim.detector();
    for _ in 0..lot_size {
        let k = *[2usize, 3, 4, 5].choose(&mut rng).expect("non-empty");
        let injected: Vec<_> = top_faults.choose_multiple(&mut rng, k).copied().collect();
        let dets = fsim.detections(&mut detector, &injected);
        let log = FailureLog::from_detections(&dets, &env.scan, ObsMode::Compacted);
        if log.is_empty() {
            unresolved += 1;
            continue;
        }
        match back_trace(&env.het, &fsim, &env.scan, &log) {
            None => unresolved += 1,
            Some(sg) => {
                let (tier, _p) = framework.tier.predict(&sg);
                votes[tier.index()] += 1;
            }
        }
    }

    println!("\ntier-level localization histogram:");
    println!("  top tier:    {:>3} chips", votes[Tier::Top.index()]);
    println!("  bottom tier: {:>3} chips", votes[Tier::Bottom.index()]);
    println!("  unresolved:  {unresolved:>3} chips");
    let total = votes[0] + votes[1];
    if total > 0 && votes[Tier::Top.index()] * 2 > total {
        println!(
            "\n=> {:.0}% of localized failures point at the TOP tier: review the \
             low-temperature device process before waiting for PFA.",
            votes[Tier::Top.index()] as f64 / total as f64 * 100.0
        );
    } else {
        println!("\n=> no tier dominates; defects are not systematic.");
    }
    // Keep the unused-import lint honest about FaultSim's role.
    let _: &FaultSim<'_> = &fsim;
}
