//! Quickstart: localize a delay fault in an M3D design, end to end.
//!
//! Builds an AES-like two-tier benchmark, trains the GNN framework on
//! injected-fault samples, then plays the role of the tester: one fault is
//! injected, its failure log diagnosed, and the framework's tier
//! prediction prunes and reorders the ATPG report.
//!
//! Run with: `cargo run --release --example quickstart`

use m3d_fault_diagnosis::dft::ObsMode;
use m3d_fault_diagnosis::diagnosis::{Diagnoser, DiagnosisConfig};
use m3d_fault_diagnosis::fault_localization::{
    generate_samples, DiagSample, FaultLocalizer, FrameworkConfig, InjectionKind, TestEnv,
};
use m3d_fault_diagnosis::netlist::generate::Benchmark;
use m3d_fault_diagnosis::part::DesignConfig;

fn main() {
    // 1. Build the design under diagnosis: netlist -> 3D partition -> scan
    //    insertion -> TDF ATPG -> heterogeneous graph.
    let env = TestEnv::build(Benchmark::Aes, DesignConfig::Syn1, Some(800));
    let stats = env.design.netlist().stats();
    println!(
        "design: {} gates, {} MIVs, {} scan chains, {} patterns (FC {:.1}%)",
        stats.gates,
        env.design.miv_count(),
        env.scan.chain_count(),
        env.test_set.pattern_count(),
        env.test_set.fault_coverage * 100.0
    );

    // 2. Train the framework on simulated failing chips (Fig. 4 flow).
    let fsim = env.fault_sim();
    let train = generate_samples(&env, &fsim, ObsMode::Bypass, InjectionKind::Single, 120, 1);
    let refs: Vec<&DiagSample> = train.iter().collect();
    let framework = FaultLocalizer::train(&refs, &FrameworkConfig::default());
    println!(
        "framework trained: Tp = {:.3}, tier accuracy on train = {:.1}%",
        framework.tp_threshold,
        framework.tier.accuracy(&refs) * 100.0
    );

    // 3. A chip fails on the tester (we simulate one unseen fault).
    let test = generate_samples(
        &env,
        &fsim,
        ObsMode::Bypass,
        InjectionKind::Single,
        1,
        0xFEED,
    );
    let chip = &test[0];
    println!(
        "\ntester: chip failed {} responses; ground truth = {:?} in tier {:?}",
        chip.log.len(),
        chip.injected[0].site,
        env.design.tier_of_site(chip.injected[0].site)
    );

    // 4. ATPG diagnosis + GNN enhancement run side by side.
    let diagnoser = Diagnoser::new(
        &fsim,
        &env.scan,
        ObsMode::Bypass,
        DiagnosisConfig::default(),
    );
    let report = diagnoser.diagnose(&chip.log);
    println!("ATPG report: {} candidates", report.resolution());

    let outcome = framework.enhance(&env.design, &report, chip);
    if let Some((tier, p)) = outcome.predicted_tier {
        println!("Tier-predictor: faulty tier = {tier} (p = {p:.3})");
    }
    println!(
        "policy action: {:?}; final report: {} candidates ({} pruned to backup)",
        outcome.action,
        outcome.report.resolution(),
        outcome.backup.len()
    );
    for (i, c) in outcome.report.candidates().iter().take(5).enumerate() {
        println!(
            "  #{:<2} {:?} {:?} tier={:?} (tfsf={}, tfsp={}, tpsf={})",
            i + 1,
            c.fault.site,
            c.fault.polarity,
            c.tier,
            c.score.tfsf,
            c.score.tfsp,
            c.score.tpsf
        );
    }
    let fhi = outcome.report.first_hit_index(&chip.injected);
    println!(
        "ground truth found at rank {:?} (accuracy preserved: {})",
        fhi,
        outcome.report.is_accurate(&chip.injected)
    );
}
