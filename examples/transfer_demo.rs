//! Transferability: one trained model, four design configurations.
//!
//! M3D has no standardized design flow — the same RTL gets re-synthesized,
//! test-point-inserted, and re-partitioned. Retraining per netlist would
//! negate the value of ML diagnosis (paper Section IV). This example
//! trains the framework once (Syn-1 + two randomly-partitioned netlists)
//! and applies it, without retraining, to all four configurations.
//!
//! Run with: `cargo run --release --example transfer_demo`

use m3d_fault_diagnosis::dft::ObsMode;
use m3d_fault_diagnosis::fault_localization::{
    generate_samples, DiagSample, FaultLocalizer, FrameworkConfig, InjectionKind, TestEnv,
};
use m3d_fault_diagnosis::netlist::generate::Benchmark;
use m3d_fault_diagnosis::part::DesignConfig;

fn main() {
    let bench = Benchmark::Tate;
    let target = Some(1000);
    let mode = ObsMode::Bypass;

    // Training corpus: Syn-1 + two randomly-partitioned variants (the
    // paper's data-augmentation solution).
    let mut train: Vec<DiagSample> = Vec::new();
    {
        let syn1 = TestEnv::build(bench, DesignConfig::Syn1, target);
        let fsim = syn1.fault_sim();
        train.extend(generate_samples(
            &syn1,
            &fsim,
            mode,
            InjectionKind::Single,
            80,
            1,
        ));
        for k in 0..2 {
            let aug = TestEnv::build_augmented(bench, k, target);
            let fsim = aug.fault_sim();
            train.extend(generate_samples(
                &aug,
                &fsim,
                mode,
                InjectionKind::Single,
                80,
                2 + k,
            ));
        }
    }
    let refs: Vec<&DiagSample> = train.iter().collect();
    let framework = FaultLocalizer::train(&refs, &FrameworkConfig::default());
    println!(
        "trained once on {} samples from 3 netlists (Tp = {:.3})\n",
        train.len(),
        framework.tp_threshold
    );

    println!("config   tier accuracy (no retraining)");
    for config in DesignConfig::ALL {
        let env = TestEnv::build(bench, config, target);
        let fsim = env.fault_sim();
        let test = generate_samples(&env, &fsim, mode, InjectionKind::Single, 40, 555);
        let test_refs: Vec<&DiagSample> = test.iter().collect();
        let acc = framework.tier.accuracy(&test_refs);
        println!("{:<8} {:.1}%", config.name(), acc * 100.0);
    }
    println!(
        "\nThe transferred model holds its accuracy on netlists it never \
         saw — re-synthesized, test-point-inserted, and re-partitioned."
    );
}
