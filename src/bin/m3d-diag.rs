//! `m3d-diag` — command-line driver for the M3D delay-fault diagnosis
//! stack.
//!
//! ```text
//! m3d-diag gen       --bench aes [--target N] [--synth-seed S] [-o FILE]
//! m3d-diag partition --netlist F [--algo mincut|levelbanded|random] [--seed S] [-o FILE]
//! m3d-diag stats     --netlist F [--partition F]
//! m3d-diag inject    --netlist F --partition F --site K [--fall] [--patterns N] [--compacted] [-o FILE]
//! m3d-diag diagnose  --netlist F --partition F --log F [--patterns N] [--compacted]
//! m3d-diag train     --checkpoint-dir D [--bench aes] [--target N] [--samples N]
//!                    [--epochs N] [--seed S] [--model-seed S] [--checkpoint-every N]
//!                    [--resume] [--guard-policy abort|skip|rollback]
//!                    [--halt-after K] [--compacted]
//! m3d-diag demo      --bench tate [--target N] [--compacted]
//! m3d-diag lint      [--bench all|aes|tate|netcard|leon3mp] [--target N] [--samples N] [--json]
//!                    [--deny] [--baseline FILE] [--write-baseline FILE]
//! m3d-diag lint      --netlist F [--partition F] [--json]
//! m3d-diag verify    [--bench all|aes|tate|netcard|leon3mp] [--target N] [--json]
//!                    [--deny] [--baseline FILE] [--write-baseline FILE]
//! m3d-diag verify    --netlist F --partition F [--json]
//! m3d-diag serve     [--addr A] [--bench aes|--design-dir D] [--width N]
//!                    [--enhance-samples N] [--model-cache F] [--queue N] [--watermark N]
//!                    [--telemetry-addr A] [--flight-dir D] [--slo SPEC]
//! m3d-diag load      [--addr A] [--clients N] [--requests N] [--widths 1,4]
//!                    [--chaos-seed S] [--chaos-rate X] [--telemetry] [--flight-dir D]
//!                    [-o BENCH_serve.json]
//! m3d-diag watch     --addr A [--interval-ms N] [--once]
//! m3d-diag report    [--flight] FILE.jsonl [MORE.jsonl…]
//! m3d-diag help      [COMMAND]
//! ```
//!
//! Every command also accepts the global observability flags
//! `--trace FILE` (hierarchical span trace as JSON-lines) and
//! `--metrics FILE` (counters/gauges/histograms/series as JSON-lines);
//! `m3d-diag report` renders either file — or both together — into a
//! per-span time breakdown with pool utilization and metric tables.
//! `--threads N` pins the worker-pool width for the invocation (same as
//! `M3D_THREADS=N`); every parallel stage is bitwise deterministic in the
//! width, so the flag changes wall time only.
//!
//! File formats are the plain-text ones of `m3d_netlist::io`,
//! `m3d_part::write_partition`, and `m3d_tdf::write_failure_log`.
//! `inject`/`diagnose` derive the TDF pattern set deterministically from
//! `--pattern-seed`, so a log injected with the same seed diagnoses
//! correctly without shipping pattern files.
//!
//! `train` runs the crash-safe Tier-predictor training loop of
//! `m3d-resilient`: it checkpoints into `--checkpoint-dir` every
//! `--checkpoint-every` epochs, `--resume` continues an interrupted run
//! bit-identically (the printed `weights digest` matches an uninterrupted
//! run's), `--halt-after K` simulates a crash after `K` epochs, and
//! `--guard-policy` selects how NaN/Inf losses or gradients are handled.

use std::collections::HashMap;
use std::process::ExitCode;

use m3d_fault_diagnosis::dft::{ObsMode, ScanChains, ScanConfig};
use m3d_fault_diagnosis::diagnosis::{Diagnoser, DiagnosisConfig};
use m3d_fault_diagnosis::fault_localization::{
    generate_samples, DiagSample, FaultLocalizer, FrameworkConfig, InjectionKind, TestEnv,
};
use m3d_fault_diagnosis::netlist::generate::{Benchmark, GenParams};
use m3d_fault_diagnosis::netlist::io::{read_netlist, write_netlist};
use m3d_fault_diagnosis::netlist::{Netlist, SiteId};
use m3d_fault_diagnosis::part::{read_partition, write_partition, M3dDesign, PartitionAlgo};
use m3d_fault_diagnosis::serve::{
    render_bench_json, run_load, spawn_server, AdmissionConfig, BundleSource, BundleSpec,
    LoadConfig, ServeConfig,
};
use m3d_fault_diagnosis::tdf::{
    generate_patterns, read_failure_log, write_failure_log, AtpgConfig, FailureLog, Fault,
    FaultSim, Polarity,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("m3d-diag: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Minimal flag parser: `--key value` pairs plus boolean flags.
struct Flags {
    values: HashMap<String, String>,
    bools: Vec<String>,
}

impl Flags {
    fn parse(args: &[String], bool_flags: &[&str]) -> Result<Flags, String> {
        let mut values = HashMap::new();
        let mut bools = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .or_else(|| a.strip_prefix('-'))
                .ok_or_else(|| format!("unexpected argument `{a}`"))?;
            if bool_flags.contains(&key) {
                bools.push(key.to_owned());
            } else {
                let v = it
                    .next()
                    .ok_or_else(|| format!("flag `--{key}` needs a value"))?;
                values.insert(key.to_owned(), v.clone());
            }
        }
        Ok(Flags { values, bools })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing `--{key}`"))
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value for `--{key}`: `{v}`")),
        }
    }

    fn flag(&self, key: &str) -> bool {
        self.bools.iter().any(|b| b == key)
    }
}

/// Destinations for the global `--trace` / `--metrics` flags.
#[derive(Default)]
struct ObsSinks {
    trace: Option<std::path::PathBuf>,
    metrics: Option<std::path::PathBuf>,
}

impl ObsSinks {
    fn wanted(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some()
    }

    /// Writes whichever JSONL sinks were requested (a failed command
    /// still flushes — a trace of the failure is exactly what you want).
    fn flush(&self) -> Result<(), String> {
        if let Some(path) = &self.trace {
            m3d_obs::write_trace(path).map_err(|e| format!("writing {}: {e}", path.display()))?;
        }
        if let Some(path) = &self.metrics {
            m3d_obs::write_metrics(path).map_err(|e| format!("writing {}: {e}", path.display()))?;
        }
        Ok(())
    }
}

/// Strips the global `--trace FILE` / `--metrics FILE` / `--threads N`
/// flags out of the argument list (any position) so per-command parsers
/// never see them.
fn extract_global_flags(args: &[String]) -> Result<(Vec<String>, ObsSinks, Option<usize>), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut sinks = ObsSinks::default();
    let mut threads = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            let v = it
                .next()
                .ok_or_else(|| format!("flag `{a}` needs a value"))?;
            threads = Some(
                v.parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("bad value for `--threads`: `{v}`"))?,
            );
            continue;
        }
        let slot = match a.as_str() {
            "--trace" => &mut sinks.trace,
            "--metrics" => &mut sinks.metrics,
            _ => {
                rest.push(a.clone());
                continue;
            }
        };
        let path = it
            .next()
            .ok_or_else(|| format!("flag `{a}` needs a value"))?;
        *slot = Some(path.into());
    }
    Ok((rest, sinks, threads))
}

fn run(args: &[String]) -> Result<(), String> {
    let (args, sinks, threads) = extract_global_flags(args)?;
    if sinks.wanted() {
        m3d_obs::set_enabled(true);
    }
    let Some((cmd, rest)) = args.split_first() else {
        return Err(usage());
    };
    let run_cmd = || {
        // One root span named after the command, so the report's tree has
        // a stable top-level node (inert unless --trace/--metrics given).
        let _root = m3d_obs::span(root_span_name(cmd));
        match cmd.as_str() {
            "gen" => cmd_gen(rest),
            "partition" => cmd_partition(rest),
            "stats" => cmd_stats(rest),
            "inject" => cmd_inject(rest),
            "diagnose" => cmd_diagnose(rest),
            "train" => cmd_train(rest),
            "demo" => cmd_demo(rest),
            "lint" => cmd_lint(rest),
            "verify" => cmd_verify(rest),
            "serve" => cmd_serve(rest),
            "load" => cmd_load(rest),
            "watch" => cmd_watch(rest),
            "report" => cmd_report(rest),
            "help" | "--help" | "-h" => cmd_help(rest),
            other => Err(format!("unknown command `{other}`\n{}", usage())),
        }
    };
    // `--threads N` pins the worker pool for the whole command (the same
    // effect as M3D_THREADS=N, but per invocation). Every parallel stage
    // is bitwise deterministic in the pool width, so this only changes
    // wall time, never output.
    //
    // The command runs under `catch_unwind` so that abnormal termination —
    // a panic escaping a long-running `serve` loop, say — still flushes the
    // requested `--trace`/`--metrics` JSONL before the process dies: the
    // trace of a crash is the most valuable trace there is.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match threads {
        Some(n) => m3d_par::with_threads(n, run_cmd),
        None => run_cmd(),
    }));
    let result = match outcome {
        Ok(r) => r,
        Err(payload) => {
            if sinks.wanted() {
                let _ = sinks.flush();
            }
            std::panic::resume_unwind(payload);
        }
    };
    let flushed = if sinks.wanted() {
        sinks.flush()
    } else {
        Ok(())
    };
    // A command error outranks a flush error.
    result.and(flushed)
}

/// The `&'static` span name for a command's root span.
fn root_span_name(cmd: &str) -> &'static str {
    match cmd {
        "gen" => "gen",
        "partition" => "partition",
        "stats" => "stats",
        "inject" => "inject",
        "diagnose" => "diagnose",
        "train" => "train",
        "demo" => "demo",
        "lint" => "lint",
        "verify" => "verify",
        "serve" => "serve",
        "load" => "load",
        "watch" => "watch",
        "report" => "report",
        _ => "cli",
    }
}

fn usage() -> String {
    let mut out = String::from(
        "usage: m3d-diag <command> [flags]\n\
         \n\
         commands:\n",
    );
    for cmd in COMMANDS {
        out.push_str(&format!("  {:<10} {}\n", cmd.name, cmd.summary));
    }
    out.push_str(
        "\nglobal flags (any command):\n  \
         --trace FILE    write a hierarchical span trace as JSON-lines\n  \
         --metrics FILE  write counters/gauges/histograms as JSON-lines\n  \
         --threads N     pin the worker-pool width (like M3D_THREADS=N;\n                  \
         outputs are bitwise identical at any width)\n\
         \nrun `m3d-diag help <command>` for per-command flags",
    );
    out
}

/// One entry of the command reference: name, one-line summary, and the
/// per-command flag help printed by `m3d-diag help <command>`.
struct CommandHelp {
    name: &'static str,
    summary: &'static str,
    flags: &'static str,
}

const COMMANDS: &[CommandHelp] = &[
    CommandHelp {
        name: "gen",
        summary: "generate a scaled benchmark netlist",
        flags: "  --bench NAME      benchmark: aes|tate|netcard|leon3mp (required)\n  \
                --target N        approximate gate-count target\n  \
                --synth-seed S    synthesis seed (default 1)\n  \
                -o FILE           write the netlist to FILE (default stdout)",
    },
    CommandHelp {
        name: "partition",
        summary: "partition a netlist into two tiers",
        flags: "  --netlist FILE    input netlist (required)\n  \
                --algo NAME       mincut|levelbanded|random (default mincut)\n  \
                --seed S          partitioning seed (default 1)\n  \
                -o FILE           write the partition to FILE (default stdout)",
    },
    CommandHelp {
        name: "stats",
        summary: "print netlist (and optional partition) statistics",
        flags: "  --netlist FILE    input netlist (required)\n  \
                --partition FILE  also report MIV count and tier balance",
    },
    CommandHelp {
        name: "inject",
        summary: "inject a delay fault and emit its tester failure log",
        flags: "  --netlist FILE    input netlist (required)\n  \
                --partition FILE  tier assignment (required)\n  \
                --site K          fault site index (required)\n  \
                --fall            slow-to-fall instead of slow-to-rise\n  \
                --patterns N      ATPG pattern cap (default 1024)\n  \
                --pattern-seed S  ATPG seed (default 1)\n  \
                --compacted       compacted (MISR-style) observation mode\n  \
                -o FILE           write the failure log to FILE (default stdout)",
    },
    CommandHelp {
        name: "diagnose",
        summary: "diagnose a failure log into ranked fault candidates",
        flags: "  --netlist FILE    input netlist (required)\n  \
                --partition FILE  tier assignment (required)\n  \
                --log FILE        tester failure log (required)\n  \
                --patterns N      ATPG pattern cap (default 1024)\n  \
                --pattern-seed S  ATPG seed (default 1)\n  \
                --compacted       compacted (MISR-style) observation mode",
    },
    CommandHelp {
        name: "train",
        summary: "crash-safe Tier-predictor training with checkpoints",
        flags: "  --checkpoint-dir D    checkpoint directory (required)\n  \
                --bench NAME          benchmark (default aes)\n  \
                --target N            approximate gate-count target\n  \
                --samples N           diagnosis samples to generate (default 60)\n  \
                --epochs N            training epochs (default 8)\n  \
                --seed S              sample-generation seed (default 1)\n  \
                --model-seed S        weight-init seed (default 7)\n  \
                --checkpoint-every N  checkpoint cadence in epochs (default 1)\n  \
                --resume              continue from the latest checkpoint\n  \
                --guard-policy P      abort|skip|rollback (default abort)\n  \
                --halt-after K        simulate a crash after K epochs\n  \
                --compacted           compacted observation mode",
    },
    CommandHelp {
        name: "demo",
        summary: "end-to-end inject → diagnose → GNN-enhance walkthrough",
        flags: "  --bench NAME      benchmark (default aes)\n  \
                --target N        approximate gate-count target\n  \
                --compacted       compacted observation mode",
    },
    CommandHelp {
        name: "lint",
        summary: "structural static analysis over benchmarks or files",
        flags: "  --bench NAME      all|aes|tate|netcard|leon3mp (default all)\n  \
                --target N        benchmark gate-count target (default 400)\n  \
                --samples N       diagnosis samples per benchmark (default 4)\n  \
                --seed S          sample seed (default 1)\n  \
                --netlist FILE    lint a netlist file instead of benchmarks\n  \
                --partition FILE  with --netlist: lint the full design\n  \
                --json            machine-readable report\n  \
                --deny            exit nonzero on any finding (not just errors)\n  \
                --baseline FILE   waive the findings listed in FILE\n  \
                --write-baseline FILE  write the current findings as a baseline\n  \
                --compacted       compacted observation mode",
    },
    CommandHelp {
        name: "verify",
        summary: "flow-sensitive design verification (SCOAP, constants, untestable faults)",
        flags: "  --bench NAME          all|aes|tate|netcard|leon3mp (default all)\n  \
                --target N            benchmark gate-count target (default 400)\n  \
                --netlist FILE        verify a netlist file instead of benchmarks\n  \
                --partition FILE      with --netlist: tier assignment (required)\n  \
                --clock-factor X      test clock as a multiple of the critical path (default 1.1)\n  \
                --slack-frac X        escape threshold as a clock fraction (default 0.75)\n  \
                --json                machine-readable report\n  \
                --deny                exit nonzero on any unwaived finding\n  \
                --baseline FILE       waive the findings listed in FILE\n  \
                --write-baseline FILE write the current findings as a baseline",
    },
    CommandHelp {
        name: "serve",
        summary: "long-running TCP diagnosis service (length-prefixed JSONL)",
        flags: "  --addr A              bind address (default 127.0.0.1:7433; :0 picks a port)\n  \
                --bench NAME          generated benchmark source (default aes)\n  \
                --target N            benchmark gate-count target (default 300)\n  \
                --design-dir D        CRC-verified bundle directory instead of --bench\n  \
                --compacted           compacted observation mode\n  \
                --enhance-samples N   train GNN enhancement on N samples (0 = baseline only)\n  \
                --epochs N            enhancement training epochs (default 25)\n  \
                --sample-seed S       training-sample seed (default 1)\n  \
                --model-seed S        model-init seed (default 7)\n  \
                --model-cache F       checkpoint file caching the trained weights\n  \
                --width N             diagnosis pool width (default 1)\n  \
                --queue N             admission queue capacity (default 64)\n  \
                --watermark N         shed watermark: degrade past this depth (default 48)\n  \
                --default-deadline-ms N  budget when the request names none (default 2000)\n  \
                --max-deadline-ms N   hard cap on requested budgets (default 10000)\n  \
                --batch-max N         max jobs per scoring batch (default 8)\n  \
                --frame-timeout-ms N  slow-writer (partial-frame) timeout (default 2000)\n  \
                --chaos-panic-every N chaos hook: panic every Nth job's worker\n  \
                --telemetry-addr A    bind the live telemetry exporter (:0 picks a port)\n  \
                --flight-dir D        flight-recorder dump directory (panic/poison/storm/shutdown)\n  \
                --slo SPEC            SLO spec, e.g. availability>=0.99,p99_ms<=250,degraded_frac<=0.1",
    },
    CommandHelp {
        name: "load",
        summary: "deterministic load generator + chaos client for the service",
        flags: "  --addr A              target an external server (default: in-process per width)\n  \
                --clients N           concurrent client sessions per width (default 1000)\n  \
                --requests N          clean exchanges per client (default 2)\n  \
                --widths LIST         pool widths to phase through (default 1,4)\n  \
                --chaos-seed S        chaos schedule seed (default 1)\n  \
                --chaos-rate X        per-request fault probability 0..1 (default 0)\n  \
                --deadline-ms N       per-request budget sent to the server\n  \
                --log-pool N          distinct synthetic failure logs (default 32)\n  \
                --server-panic-every N  in-process chaos: panic every Nth job\n  \
                --queue N / --watermark N / --batch-max N   in-process admission knobs\n  \
                --frame-timeout-ms N  in-process slow-writer timeout (default 400)\n  \
                --telemetry           run + scrape a telemetry exporter on in-process servers\n  \
                --flight-dir D        verify flight dumps land here (w<width> subdirs)\n  \
                --bench/--target/--design-dir/--compacted/--enhance-samples/...\n                        \
                artifact spec, as for `serve` (must match an external server)\n  \
                -o FILE               write the BENCH_serve.json report to FILE",
    },
    CommandHelp {
        name: "watch",
        summary: "live terminal view over a server's telemetry exporter",
        flags: "  --addr A          the exporter address printed by `serve` (required)\n  \
                --interval-ms N   scrape cadence (default 1000)\n  \
                --once            print one snapshot and exit",
    },
    CommandHelp {
        name: "report",
        summary: "render --trace/--metrics/flight JSONL into a profiling report",
        flags:
            "  FILE.jsonl…       one or more JSONL files written by --trace,\n                    \
                --metrics, or the flight recorder; files are merged as\n                    \
                tagged sources with a stable total order\n  \
                --flight          render only the causal flight timeline",
    },
    CommandHelp {
        name: "help",
        summary: "show this overview or per-command flags",
        flags: "  COMMAND           the command to describe",
    },
];

/// `m3d-diag help [command]`.
fn cmd_help(args: &[String]) -> Result<(), String> {
    match args.first() {
        None => {
            println!("{}", usage());
            Ok(())
        }
        Some(name) => {
            let cmd = COMMANDS
                .iter()
                .find(|c| c.name == name.as_str())
                .ok_or_else(|| format!("unknown command `{name}`\n{}", usage()))?;
            println!(
                "usage: m3d-diag {} — {}\n\nflags:\n{}",
                cmd.name, cmd.summary, cmd.flags
            );
            println!(
                "\nglobal flags:\n  --trace FILE    write a span trace (JSON-lines)\n  \
                 --metrics FILE  write metrics (JSON-lines)"
            );
            Ok(())
        }
    }
}

/// `m3d-diag watch`: a live terminal view over a running server's
/// telemetry exporter — request rates, queue depth, shed/degraded and
/// deadline counters, sliding latency quantiles, pool utilization, and
/// SLO burn, one block per scrape.
fn cmd_watch(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["once"])?;
    let addr: std::net::SocketAddr = flags
        .require("addr")?
        .parse()
        .map_err(|e| format!("bad --addr: {e}"))?;
    let interval_ms: u64 = flags.num("interval-ms", 1_000u64)?;
    loop {
        match m3d_fault_diagnosis::serve::scrape(addr) {
            Ok(snap) => print!("{}", render_watch(&snap)),
            // A single-shot scrape that fails is a failure; the live
            // view keeps retrying through exporter restarts.
            Err(e) if flags.flag("once") => return Err(format!("watch {addr}: {e}")),
            Err(e) => eprintln!("watch: {e}"),
        }
        if flags.flag("once") {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(50)));
    }
}

/// Formats one telemetry snapshot as the `watch` terminal block.
fn render_watch(snap: &m3d_fault_diagnosis::obs::Json) -> String {
    let num = |path: &[&str]| -> f64 {
        let mut cur = snap;
        for k in path {
            match cur.get(k) {
                Some(v) => cur = v,
                None => return 0.0,
            }
        }
        cur.as_f64().unwrap_or(0.0)
    };
    let breached = snap
        .get("slo")
        .and_then(|s| s.get("breached"))
        .is_some_and(|b| matches!(b, m3d_fault_diagnosis::obs::Json::Bool(true)));
    let mut out = format!(
        "t={:.1}s gen {} | req/s 1s/10s/60s: {:.1}/{:.1}/{:.1} | queue {} (watermark dist {})\n",
        num(&["t_ms"]) / 1e3,
        num(&["stats", "generation"]),
        num(&["rates", "serve.completed", "1s"]),
        num(&["rates", "serve.completed", "10s"]),
        num(&["rates", "serve.completed", "60s"]),
        num(&["stats", "queue_depth"]),
        num(&["gauges", "serve.shed_watermark_distance"]),
    );
    out.push_str(&format!(
        "completed {} (degraded {}) | shed {} | deadline {} | proto-errs {} | panics {} | conns {}\n",
        num(&["stats", "completed"]),
        num(&["stats", "degraded"]),
        num(&["stats", "overloaded"]),
        num(&["stats", "deadline_exceeded"]),
        num(&["stats", "protocol_errors"]),
        num(&["stats", "panics_contained"]),
        num(&["stats", "connections"]),
    ));
    out.push_str(&format!(
        "latency ms p50/p95/p99: {:.2}/{:.2}/{:.2} | stage us queue/exec p50: {:.0}/{:.0} | \
         pool util {:.1}% | exporter {:.2}%\n",
        num(&["quantiles", "serve.latency_ms", "p50"]),
        num(&["quantiles", "serve.latency_ms", "p95"]),
        num(&["quantiles", "serve.latency_ms", "p99"]),
        num(&["quantiles", "par.queue_us", "p50"]),
        num(&["quantiles", "par.exec_us", "p50"]),
        num(&["pool", "utilization_10s_pct"]),
        num(&["exporter", "overhead_pct"]),
    ));
    out.push_str(&format!(
        "slo burn avail/p99/degraded: {:.2}/{:.2}/{:.2} [{}]\n\n",
        num(&["slo", "burn_availability"]),
        num(&["slo", "burn_p99"]),
        num(&["slo", "burn_degraded"]),
        if breached { "BREACHED" } else { "OK" },
    ));
    out
}

/// `m3d-diag report`: renders JSONL trace/metrics/flight files into the
/// top-down profiling report of `m3d_obs::report`. Multiple inputs are
/// merged with a stable total order: each file becomes a tagged
/// [`Source`](m3d_obs::report::Source), span ids are re-allocated so
/// sources can never collide, and metric names gain a `tag:` prefix when
/// more than one file is given. `--flight` renders only the causal
/// flight-recorder timeline (for `flight-*.jsonl` crash artifacts).
fn cmd_report(args: &[String]) -> Result<(), String> {
    let flight_only = args.iter().any(|a| a == "--flight");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();
    if paths.is_empty() {
        return Err("usage: m3d-diag report [--flight] FILE.jsonl [MORE.jsonl…]".to_owned());
    }
    let mut sources = Vec::new();
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let events = m3d_fault_diagnosis::obs::report::parse_jsonl(&text)
            .map_err(|e| format!("{path}: {e}"))?;
        let tag = std::path::Path::new(path)
            .file_stem()
            .map_or_else(|| path.to_string(), |s| s.to_string_lossy().into_owned());
        sources.push(m3d_fault_diagnosis::obs::report::Source { tag, events });
    }
    if flight_only {
        let merged = m3d_fault_diagnosis::obs::report::merge_sources(&sources);
        print!(
            "{}",
            m3d_fault_diagnosis::obs::report::render_flight_timeline(&merged)
        );
    } else {
        print!(
            "{}",
            m3d_fault_diagnosis::obs::report::render_merged_report(&sources)
        );
    }
    Ok(())
}

fn parse_bench(name: &str) -> Result<Benchmark, String> {
    Benchmark::ALL
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown benchmark `{name}` (aes|tate|netcard|leon3mp)"))
}

fn load_netlist(flags: &Flags) -> Result<Netlist, String> {
    let path = flags.require("netlist")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    read_netlist(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_design(flags: &Flags) -> Result<M3dDesign, String> {
    let nl = load_netlist(flags)?;
    let path = flags.require("partition")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let part = read_partition(&nl, &text)?;
    Ok(M3dDesign::new(nl, part))
}

fn emit(flags: &Flags, text: &str) -> Result<(), String> {
    match flags.get("o") {
        None => {
            print!("{text}");
            Ok(())
        }
        Some(path) => std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}")),
    }
}

fn mode_of(flags: &Flags) -> ObsMode {
    if flags.flag("compacted") {
        ObsMode::Compacted
    } else {
        ObsMode::Bypass
    }
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let bench = parse_bench(flags.require("bench")?)?;
    let mut params = GenParams::new(flags.num("synth-seed", 1u64)?);
    if let Some(t) = flags.get("target") {
        params = params.with_target(t.parse().map_err(|_| format!("bad --target `{t}`"))?);
    }
    let nl = bench.generate(&params);
    emit(&flags, &write_netlist(&nl))
}

fn cmd_partition(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let nl = load_netlist(&flags)?;
    let algo = match flags.get("algo").unwrap_or("mincut") {
        "mincut" => PartitionAlgo::MinCut,
        "levelbanded" => PartitionAlgo::LevelBanded,
        "random" => PartitionAlgo::Random,
        other => return Err(format!("unknown --algo `{other}`")),
    };
    let part = algo.partition(&nl, flags.num("seed", 1u64)?);
    emit(&flags, &write_partition(&part))
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let nl = load_netlist(&flags)?;
    let s = nl.stats();
    println!("design {}", nl.name());
    println!("  gates          {}", s.gates);
    println!("  combinational  {}", s.combinational);
    println!("  flops          {}", s.flops);
    println!("  PIs / POs      {} / {}", s.inputs, s.outputs);
    println!("  nets           {}", s.nets);
    println!("  depth          {}", s.depth);
    println!("  area (NAND2)   {:.0}", s.area);
    if let Some(path) = flags.get("partition") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let part = read_partition(&nl, &text)?;
        let design = M3dDesign::new(nl, part);
        println!("  MIVs           {}", design.miv_count());
        println!(
            "  area imbalance {:.1}%",
            design.partition().imbalance(design.netlist()) * 100.0
        );
    }
    Ok(())
}

fn test_setup(
    design: &M3dDesign,
    flags: &Flags,
) -> Result<(ScanChains, m3d_fault_diagnosis::tdf::TestSet), String> {
    let scan = ScanChains::new(
        design.netlist(),
        ScanConfig::for_flop_count(design.netlist().flops().len()),
    );
    let max_patterns = flags.num("patterns", 1024usize)?;
    let seed = flags.num("pattern-seed", 1u64)?;
    let ts = generate_patterns(design, &AtpgConfig::new(seed, max_patterns));
    Ok((scan, ts))
}

fn cmd_inject(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["compacted", "fall"])?;
    let design = load_design(&flags)?;
    let site: usize = flags.require("site")?.parse().map_err(|_| "bad --site")?;
    if site >= design.sites().len() {
        return Err(format!(
            "site {site} out of range (design has {} sites)",
            design.sites().len()
        ));
    }
    let polarity = if flags.flag("fall") {
        Polarity::SlowToFall
    } else {
        Polarity::SlowToRise
    };
    let (scan, ts) = test_setup(&design, &flags)?;
    let fsim = FaultSim::new(&design, &ts.patterns);
    let fault = Fault::new(SiteId::new(site), polarity);
    let dets = fsim.detections(&mut fsim.detector(), &[fault]);
    let log = FailureLog::from_detections(&dets, &scan, mode_of(&flags));
    eprintln!(
        "injected {fault:?}: {} erroneous responses over {} patterns (FC {:.1}%)",
        log.len(),
        ts.pattern_count(),
        ts.fault_coverage * 100.0
    );
    emit(&flags, &write_failure_log(&log))
}

fn cmd_diagnose(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["compacted"])?;
    let design = load_design(&flags)?;
    let log_path = flags.require("log")?;
    let log_text =
        std::fs::read_to_string(log_path).map_err(|e| format!("reading {log_path}: {e}"))?;
    let log = read_failure_log(&log_text).map_err(|e| format!("{log_path}: {e}"))?;
    let (scan, ts) = test_setup(&design, &flags)?;
    let fsim = FaultSim::new(&design, &ts.patterns);
    let diagnoser = Diagnoser::new(&fsim, &scan, mode_of(&flags), DiagnosisConfig::default());
    let report = diagnoser.diagnose(&log);
    print!("{report}");
    Ok(())
}

/// The stable identity of a diagnostic in a baseline file:
/// `target<TAB>code<TAB>span`. Messages are excluded on purpose — they
/// carry counts and measures that legitimately drift.
fn diag_key(target: &str, d: &m3d_fault_diagnosis::lint::Diagnostic) -> String {
    format!("{target}\t{}\t{}", d.code, d.span)
}

/// Drops every report diagnostic whose key appears in the baseline file
/// (blank lines and `#` comments ignored). Returns the waived count.
fn apply_baseline(
    reports: &mut [m3d_fault_diagnosis::lint::LintReport],
    path: &str,
) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let waivers: std::collections::HashSet<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let mut waived = 0usize;
    for report in reports {
        let target = report.target().to_owned();
        report.retain(|d| {
            let known = waivers.contains(diag_key(&target, d).as_str());
            waived += usize::from(known);
            !known
        });
    }
    Ok(waived)
}

/// Writes every current diagnostic's key, one per line, as a baseline.
fn write_baseline(
    reports: &[m3d_fault_diagnosis::lint::LintReport],
    path: &str,
) -> Result<(), String> {
    let mut out = String::from("# m3d-diag baseline: target\tcode\tspan\n");
    for report in reports {
        for d in report.diagnostics() {
            out.push_str(&diag_key(report.target(), d));
            out.push('\n');
        }
    }
    std::fs::write(path, out).map_err(|e| format!("writing {path}: {e}"))
}

/// `m3d-diag lint`: static analysis over generated benchmarks or files.
///
/// Without `--netlist`, builds each selected benchmark archetype end to
/// end (design, scan, a few diagnosis samples, and a TPI variant of the
/// netlist) and lints the lot. With `--netlist` (and optionally
/// `--partition`), lints the given files instead. Exits nonzero when any
/// target carries error-severity diagnostics — or, under `--deny`, any
/// diagnostic at all that `--baseline` does not waive.
fn cmd_lint(args: &[String]) -> Result<(), String> {
    use m3d_fault_diagnosis::lint::{LintReport, LintRunner, LintTarget};

    let flags = Flags::parse(args, &["json", "compacted", "deny"])?;
    let runner = LintRunner::new();
    let mut reports: Vec<LintReport> = Vec::new();

    if flags.get("netlist").is_some() {
        if flags.get("partition").is_some() {
            let design = load_design(&flags)?;
            let target = LintTarget::new(design.netlist().name()).design(&design);
            reports.push(runner.run(&target));
        } else {
            let nl = load_netlist(&flags)?;
            reports.push(runner.run(&LintTarget::new(nl.name()).netlist(&nl)));
        }
    } else {
        let benches: Vec<Benchmark> = match flags.get("bench").unwrap_or("all") {
            "all" => Benchmark::ALL.to_vec(),
            name => vec![parse_bench(name)?],
        };
        let target_size = flags.num("target", 400usize)?;
        let n_samples = flags.num("samples", 4usize)?;
        let seed = flags.num("seed", 1u64)?;
        let mode = mode_of(&flags);
        for bench in benches {
            let env = TestEnv::build(
                bench,
                m3d_fault_diagnosis::part::DesignConfig::Syn1,
                Some(target_size),
            );
            let fsim = env.fault_sim();
            let samples =
                generate_samples(&env, &fsim, mode, InjectionKind::Single, n_samples, seed);
            let target = LintTarget::new(bench.name())
                .design(&env.design)
                .scan(&env.scan)
                .samples(&samples);
            reports.push(runner.run(&target));
            let tpi = m3d_fault_diagnosis::netlist::tpi::insert_test_points(
                env.design.netlist().clone(),
                0.01,
                seed,
            );
            let tpi_target = LintTarget::new(tpi.name()).netlist(&tpi);
            reports.push(runner.run(&tpi_target));
        }
    }

    if let Some(path) = flags.get("write-baseline") {
        write_baseline(&reports, path)?;
        eprintln!("baseline written to {path}");
    }
    if let Some(path) = flags.get("baseline") {
        let waived = apply_baseline(&mut reports, path)?;
        eprintln!("baseline {path}: {waived} finding(s) waived");
    }
    if flags.flag("json") {
        let body: Vec<String> = reports.iter().map(LintReport::render_json).collect();
        println!("[{}]", body.join(","));
    } else {
        for r in &reports {
            print!("{}", r.render_text());
        }
    }
    let errors: usize = reports.iter().map(LintReport::error_count).sum();
    if errors > 0 {
        return Err(format!("lint found {errors} error(s)"));
    }
    if flags.flag("deny") {
        let total: usize = reports.iter().map(|r| r.diagnostics().len()).sum();
        if total > 0 {
            return Err(format!("lint found {total} finding(s) under --deny"));
        }
    }
    Ok(())
}

/// `m3d-diag verify`: flow-sensitive design verification.
///
/// Runs the `m3d-dataflow` analyses — SCOAP testability, constant
/// propagation, and static untestable-fault proofs — over benchmark
/// archetypes (or a `--netlist`/`--partition` pair) and reports the
/// `L1xxx` findings with a per-design summary. Findings are facts about
/// healthy designs, so gating is baseline-driven: `--write-baseline`
/// records the current state, `--baseline` waives it, and `--deny` fails
/// on anything new.
fn cmd_verify(args: &[String]) -> Result<(), String> {
    use m3d_fault_diagnosis::dataflow::{verify_design, UntestableClass, VerifyConfig};
    use m3d_fault_diagnosis::lint::{passes, LintReport};

    let flags = Flags::parse(args, &["json", "deny"])?;
    let mut named: Vec<(String, M3dDesign)> = Vec::new();
    if flags.get("netlist").is_some() {
        let design = load_design(&flags)?;
        named.push((design.netlist().name().to_owned(), design));
    } else {
        let benches: Vec<Benchmark> = match flags.get("bench").unwrap_or("all") {
            "all" => Benchmark::ALL.to_vec(),
            name => vec![parse_bench(name)?],
        };
        let target_size = flags.num("target", 400usize)?;
        for bench in benches {
            let design =
                m3d_fault_diagnosis::part::DesignConfig::Syn1.build_sized(bench, Some(target_size));
            named.push((bench.name().to_owned(), design));
        }
    }

    let cfg = VerifyConfig {
        clock_factor: flags.num("clock-factor", 1.1f32)?,
        slack_frac: flags.num("slack-frac", 0.75f32)?,
        ..VerifyConfig::default()
    };
    let mut reports: Vec<LintReport> = Vec::new();
    let mut summaries: Vec<String> = Vec::new();
    for (name, design) in &named {
        let verify = verify_design(design, &cfg);
        let mut report = LintReport::new(name.clone());
        for d in passes::dataflow::report_diagnostics(design, &verify) {
            report.push(d);
        }
        let class_count = |c: UntestableClass| {
            verify
                .proofs
                .classes()
                .iter()
                .filter(|&&x| x == Some(c))
                .count()
        };
        summaries.push(format!(
            "{name}: {} sites, {} untestable ({} constant-site, {} no-launch, \
             {} no-capture), {} constant nets, {} slack sites, clock {:.2}",
            verify.sites.len(),
            verify.proofs.untestable_count(),
            class_count(UntestableClass::ConstantSite),
            class_count(UntestableClass::NoLaunch),
            class_count(UntestableClass::NoCapture),
            verify.constprop.constant_nets().len(),
            verify.slack_site_count(),
            verify.clock_period,
        ));
        reports.push(report.sorted());
    }

    if let Some(path) = flags.get("write-baseline") {
        write_baseline(&reports, path)?;
        eprintln!("baseline written to {path}");
    }
    if let Some(path) = flags.get("baseline") {
        let waived = apply_baseline(&mut reports, path)?;
        eprintln!("baseline {path}: {waived} finding(s) waived");
    }

    if flags.flag("json") {
        let body: Vec<String> = reports.iter().map(LintReport::render_json).collect();
        println!("[{}]", body.join(","));
    } else {
        for (summary, report) in summaries.iter().zip(&reports) {
            println!("{summary}");
            print!("{}", report.render_text());
        }
    }
    let total: usize = reports.iter().map(|r| r.diagnostics().len()).sum();
    if flags.flag("deny") && total > 0 {
        return Err(format!("verify found {total} unwaived finding(s)"));
    }
    Ok(())
}

/// `m3d-diag train`: the crash-safe Tier-predictor training loop.
///
/// Builds a benchmark test environment, generates tier-labelled diagnosis
/// samples, and trains the Tier-predictor GCN through
/// `m3d_resilient::train_resilient` — guarded epochs, periodic atomic
/// checkpoints, and bit-exact resume. The final `weights digest` line is
/// the stable hook for resume-equivalence checks: an interrupted run
/// (`--halt-after`) continued with `--resume` prints the same digest as an
/// uninterrupted one.
fn cmd_train(args: &[String]) -> Result<(), String> {
    use m3d_fault_diagnosis::gnn::{
        GcnClassifier, GraphData, GuardConfig, GuardPolicy, TrainConfig,
    };
    use m3d_fault_diagnosis::hetgraph::FEATURE_DIM;
    use m3d_fault_diagnosis::resilient::{train_resilient, weights_digest, CheckpointConfig};

    let flags = Flags::parse(args, &["compacted", "resume"])?;
    let bench = parse_bench(flags.get("bench").unwrap_or("aes"))?;
    let target = flags
        .get("target")
        .map(|t| t.parse().map_err(|_| "bad --target"))
        .transpose()?;
    let mode = mode_of(&flags);
    let n = flags.num("samples", 60usize)?;
    let seed = flags.num("seed", 1u64)?;
    let policy: GuardPolicy = flags.get("guard-policy").unwrap_or("abort").parse()?;
    let ckpt = CheckpointConfig {
        dir: flags.require("checkpoint-dir")?.into(),
        every: flags.num("checkpoint-every", 1usize)?,
    };
    let halt_after = flags
        .get("halt-after")
        .map(|v| v.parse().map_err(|_| format!("bad --halt-after `{v}`")))
        .transpose()?;
    let cfg = TrainConfig {
        epochs: flags.num("epochs", 8usize)?,
        ..TrainConfig::default()
    };

    eprintln!("building {} and generating {n} samples…", bench.name());
    let env = TestEnv::build(bench, m3d_fault_diagnosis::part::DesignConfig::Syn1, target);
    let fsim = env.fault_sim();
    let samples = generate_samples(&env, &fsim, mode, InjectionKind::Single, n, seed);
    let data: Vec<(&GraphData, usize)> = samples
        .iter()
        .filter(|s| s.tier_trainable())
        .map(|s| {
            (
                &s.subgraph.as_ref().expect("tier_trainable").data,
                s.faulty_tier.expect("tier_trainable").index(),
            )
        })
        .collect();
    if data.is_empty() {
        return Err("no tier-trainable samples; raise --samples or --target".to_owned());
    }
    eprintln!(
        "training on {} tier-labelled samples ({} epochs, {:?})…",
        data.len(),
        cfg.epochs,
        policy
    );
    // Input width follows the sample tensors (13 Table II columns, or 16
    // with the SCOAP feature extension).
    let dim = data.first().map_or(FEATURE_DIM, |(d, _)| d.features.cols());
    let mut model = GcnClassifier::new(dim, 16, 2, 2, flags.num("model-seed", 7u64)?);
    let outcome = train_resilient(
        &mut model,
        &data,
        &cfg,
        &GuardConfig::new(policy),
        &ckpt,
        flags.flag("resume"),
        halt_after,
    )
    .map_err(|e| e.to_string())?;
    if let Some(epoch) = outcome.resumed_from {
        println!("resumed from checkpoint at epoch {epoch}");
    }
    println!(
        "epochs run: {} of {}",
        outcome.report.epochs_run, cfg.epochs
    );
    println!("guard interventions: {}", outcome.report.interventions());
    println!("checkpoints written: {}", outcome.checkpoints_written);
    println!("final loss: {:.6}", outcome.report.final_loss);
    println!(
        "weights digest: {:08x}",
        weights_digest(&model.flat_params())
    );
    if let Some(epoch) = outcome.halted_at {
        println!("halted after epoch {epoch} (simulated crash); continue with --resume");
        return Ok(());
    }
    // Held-out evaluation of the finished model's environment: one fresh
    // sample through parallel fault simulation and cause-effect diagnosis.
    // This also exercises the remaining instrumented pipeline stages, so a
    // single `train --trace` run profiles the whole Fig. 2 flow.
    let probe = &generate_samples(&env, &fsim, mode, InjectionKind::Single, 1, 0xE7A1)[0];
    let detections = fsim.detections_par(&probe.injected);
    let diagnoser = Diagnoser::new(&fsim, &env.scan, mode, DiagnosisConfig::default());
    let report = diagnoser.diagnose(&probe.log);
    println!(
        "eval: {} detections, {} diagnosis candidate(s) on a held-out sample",
        detections.len(),
        report.candidates().len()
    );
    Ok(())
}

fn cmd_demo(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["compacted"])?;
    let bench = parse_bench(flags.get("bench").unwrap_or("aes"))?;
    let target = flags
        .get("target")
        .map(|t| t.parse().map_err(|_| "bad --target"))
        .transpose()?;
    let mode = mode_of(&flags);
    eprintln!("building {} ({:?})…", bench.name(), mode);
    let env = TestEnv::build(bench, m3d_fault_diagnosis::part::DesignConfig::Syn1, target);
    let fsim = env.fault_sim();
    eprintln!("training framework…");
    let train = generate_samples(&env, &fsim, mode, InjectionKind::Single, 120, 1);
    let refs: Vec<&DiagSample> = train.iter().collect();
    let fw = FaultLocalizer::train(&refs, &FrameworkConfig::default());
    let chip = &generate_samples(&env, &fsim, mode, InjectionKind::Single, 1, 0xD431)[0];
    let diagnoser = Diagnoser::new(&fsim, &env.scan, mode, DiagnosisConfig::default());
    let report = diagnoser.diagnose(&chip.log);
    let outcome = fw.enhance(&env.design, &report, chip);
    println!("ground truth: {:?}", chip.injected);
    if let Some((tier, p)) = outcome.predicted_tier {
        println!(
            "predicted faulty tier: {tier} (p = {p:.3}, Tp = {:.3})",
            fw.tp_threshold
        );
    }
    println!("action: {:?}", outcome.action);
    print!("{}", outcome.report);
    Ok(())
}

/// Builds the serve/load artifact spec from the shared bundle flags.
fn bundle_spec_of(flags: &Flags) -> Result<BundleSpec, String> {
    let d = BundleSpec::default();
    let source = match flags.get("design-dir") {
        Some(dir) => BundleSource::Directory(dir.into()),
        None => BundleSource::Generated {
            bench: parse_bench(flags.get("bench").unwrap_or("aes"))?,
            target: Some(flags.num("target", 300usize)?),
        },
    };
    Ok(BundleSpec {
        source,
        compacted: flags.flag("compacted"),
        enhance_samples: flags.num("enhance-samples", d.enhance_samples)?,
        epochs: flags.num("epochs", d.epochs)?,
        sample_seed: flags.num("sample-seed", d.sample_seed)?,
        model_seed: flags.num("model-seed", d.model_seed)?,
        model_path: flags.get("model-cache").map(Into::into),
    })
}

/// Builds the admission knobs from flags (shared by `serve` and the
/// in-process servers `load` spawns).
fn admission_of(flags: &Flags) -> Result<AdmissionConfig, String> {
    let d = AdmissionConfig::default();
    Ok(AdmissionConfig {
        queue_capacity: flags.num("queue", d.queue_capacity)?,
        shed_watermark: flags.num("watermark", d.shed_watermark)?,
        default_deadline_ms: flags.num("default-deadline-ms", d.default_deadline_ms)?,
        max_deadline_ms: flags.num("max-deadline-ms", d.max_deadline_ms)?,
        batch_max: flags.num("batch-max", d.batch_max)?,
    })
}

/// `m3d-diag serve`: the long-running diagnosis service. Loads (or trains)
/// the artifact bundle once, then serves framed requests until a client
/// sends `shutdown`.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["compacted"])?;
    let spec = bundle_spec_of(&flags)?;
    let d = ServeConfig::default();
    let cfg = ServeConfig {
        addr: flags.get("addr").unwrap_or("127.0.0.1:7433").to_owned(),
        pool_width: flags.num("width", d.pool_width)?,
        admission: admission_of(&flags)?,
        poll_ms: d.poll_ms,
        frame_timeout_ms: flags.num("frame-timeout-ms", d.frame_timeout_ms)?,
        chaos_panic_every: flags
            .get("chaos-panic-every")
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("bad --chaos-panic-every `{v}`"))
            })
            .transpose()?,
        telemetry_addr: flags.get("telemetry-addr").map(str::to_owned),
        flight_dir: flags.get("flight-dir").map(Into::into),
        slo: flags.get("slo").map(str::to_owned),
    };
    let server = spawn_server(&spec, &cfg)?;
    eprintln!(
        "m3d-serve listening on {} (pool width {}, queue {}, watermark {}) — loading artifacts…",
        server.addr(),
        cfg.pool_width,
        cfg.admission.queue_capacity,
        cfg.admission.shed_watermark
    );
    if let Some(taddr) = server.telemetry_addr() {
        eprintln!("telemetry exporter on {taddr} (scrape with `m3d-diag watch --addr {taddr}`)");
    }
    let summary = server.join()?;
    let s = &summary.stats;
    println!(
        "served {} generation(s): {} completed ({} degraded), {} overloaded, \
         {} deadline-exceeded, {} protocol errors, {} panics contained, {} connections",
        summary.generations,
        s.completed,
        s.degraded,
        s.overloaded,
        s.deadline_exceeded,
        s.protocol_errors,
        s.panics_contained,
        s.connections
    );
    Ok(())
}

/// `m3d-diag load`: the deterministic load generator + chaos client.
/// Exits nonzero when any width phase saw a crashed clean connection or a
/// report that differs from the offline diagnosis.
fn cmd_load(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["compacted", "telemetry"])?;
    let widths = flags
        .get("widths")
        .unwrap_or("1,4")
        .split(',')
        .map(|w| {
            w.trim()
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("bad --widths entry `{w}`"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let dl = LoadConfig::default();
    let cfg = LoadConfig {
        spec: bundle_spec_of(&flags)?,
        clients: flags.num("clients", dl.clients)?,
        requests_per_client: flags.num("requests", dl.requests_per_client)?,
        widths,
        chaos_seed: flags.num("chaos-seed", dl.chaos_seed)?,
        chaos_rate: flags.num("chaos-rate", dl.chaos_rate)?,
        deadline_ms: flags
            .get("deadline-ms")
            .map(|v| v.parse().map_err(|_| format!("bad --deadline-ms `{v}`")))
            .transpose()?,
        log_pool: flags.num("log-pool", dl.log_pool)?,
        server_panic_every: flags
            .get("server-panic-every")
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("bad --server-panic-every `{v}`"))
            })
            .transpose()?,
        admission: admission_of(&flags)?,
        frame_timeout_ms: flags.num("frame-timeout-ms", dl.frame_timeout_ms)?,
        addr: flags.get("addr").map(str::to_owned),
        telemetry: flags.flag("telemetry"),
        flight_dir: flags.get("flight-dir").map(Into::into),
    };
    eprintln!(
        "load: {} clients × {} requests over widths {:?} (chaos rate {})…",
        cfg.clients, cfg.requests_per_client, cfg.widths, cfg.chaos_rate
    );
    let report = run_load(&cfg)?;
    for w in &report.widths {
        let rate = if w.wall_secs > 0.0 {
            w.completed as f64 / w.wall_secs
        } else {
            0.0
        };
        eprintln!(
            "width {}: {} completed in {:.2}s ({:.1} diagnoses/s), p50 {:.1} ms, p99 {:.1} ms, \
             {} crashed, {} mismatches, {} overloaded, {} deadline-exceeded, {} degraded, \
             {} protocol rejections, {} panics contained, {} gave up",
            w.width,
            w.completed,
            w.wall_secs,
            rate,
            w.p50_ms,
            w.p99_ms,
            w.crashed_connections,
            w.mismatches,
            w.overloaded,
            w.deadline_exceeded,
            w.degraded,
            w.protocol_rejections,
            w.panics_contained,
            w.gave_up
        );
        if w.telemetry_scrapes > 0 || w.flight_dumps > 0 || w.telemetry_errors > 0 {
            eprintln!(
                "width {}: {} telemetry scrapes ({} errors), {} flight dumps, \
                 exporter overhead {:.2}%",
                w.width,
                w.telemetry_scrapes,
                w.telemetry_errors,
                w.flight_dumps,
                w.exporter_overhead_pct
            );
        }
    }
    emit(&flags, &render_bench_json(&report))?;
    if !report.clean() {
        let detail = report
            .widths
            .iter()
            .find_map(|w| w.first_mismatch.as_deref())
            .unwrap_or("crashed clean connections");
        return Err(format!("chaos invariant violated: {detail}"));
    }
    if let Some(w) = report.widths.iter().find(|w| w.telemetry_errors > 0) {
        return Err(format!(
            "telemetry plane violated at width {}: {} scrape/flight-dump errors",
            w.width, w.telemetry_errors
        ));
    }
    Ok(())
}
