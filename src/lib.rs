//! Facade crate re-exporting the full M3D delay-fault diagnosis stack.
//!
//! See the workspace README for the architecture overview. The typical
//! entry points are [`part::DesignConfig`] to build a benchmark design and
//! the `m3d_fault_localization` framework types re-exported from
//! [`fault_localization`].

#![warn(missing_docs)]

pub use m3d_dataflow as dataflow;
pub use m3d_dft as dft;
pub use m3d_diagnosis as diagnosis;
pub use m3d_fault_localization as fault_localization;
pub use m3d_gnn as gnn;
pub use m3d_hetgraph as hetgraph;
pub use m3d_lint as lint;
pub use m3d_netlist as netlist;
pub use m3d_obs as obs;
pub use m3d_par as par;
pub use m3d_part as part;
pub use m3d_resilient as resilient;
pub use m3d_serve as serve;
pub use m3d_tdf as tdf;
