//! Property tests for histogram quantile edges (ISSUE 10 satellite):
//! sliding-window p50/p99 over upper-bound-inclusive buckets are exact
//! for distributions whose values lie on the bucket bounds, monotone in
//! `q` and under merge, and identical whether the histogram is built on
//! 1 thread or sharded across 4.

use m3d_obs::Histogram;
use proptest::prelude::*;

const BOUNDS: [f64; 6] = [1.0, 2.0, 5.0, 10.0, 50.0, 100.0];

/// The exact quantile of a multiset under the histogram's definition:
/// the value at 1-based rank `ceil(q · n)` (clamped to at least 1) in
/// sorted order.
fn exact_quantile(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

fn hist_of(values: &[f64]) -> Histogram {
    let mut h = Histogram::new(&BOUNDS);
    for &v in values {
        h.record(v);
    }
    h
}

/// Values drawn from the bucket bounds themselves, so every observation
/// sits exactly on its bucket's upper bound and the histogram quantile
/// can be compared for equality against the true multiset quantile.
fn bound_values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0usize..BOUNDS.len(), 1..200)
        .prop_map(|idxs| idxs.into_iter().map(|i| BOUNDS[i]).collect::<Vec<f64>>())
}

/// Quantile fractions in (0, 1], on a centile grid.
fn centile() -> impl Strategy<Value = f64> {
    (1u32..101).prop_map(|c| f64::from(c) / 100.0)
}

proptest! {
    /// p50/p99 (and a sampled q) are *exact* when every value lies on a
    /// bucket bound — upper-bound-inclusive bucketing loses nothing.
    #[test]
    fn quantiles_are_exact_for_bound_valued_distributions(
        values in bound_values(),
        q in centile(),
    ) {
        let h = hist_of(&values);
        for q in [0.5, 0.99, q] {
            prop_assert_eq!(h.quantile(q), Some(exact_quantile(&values, q)));
        }
    }

    /// Quantiles are monotone non-decreasing in `q`.
    #[test]
    fn quantiles_are_monotone_in_q(
        values in bound_values(),
        q1 in centile(),
        q2 in centile(),
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let h = hist_of(&values);
        prop_assert!(h.quantile(lo).unwrap() <= h.quantile(hi).unwrap());
    }

    /// A merged histogram's quantile is bracketed by its inputs'
    /// quantiles (monotone under merge), and merging is exact: it equals
    /// the quantile of the concatenated multiset.
    #[test]
    fn quantiles_are_monotone_under_merge(
        a in bound_values(),
        b in bound_values(),
        q in centile(),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut merged = ha.clone();
        merged.merge(&hb);
        let (qa, qb) = (ha.quantile(q).unwrap(), hb.quantile(q).unwrap());
        let qm = merged.quantile(q).unwrap();
        prop_assert!(qa.min(qb) <= qm && qm <= qa.max(qb),
            "merge quantile {} outside [{}, {}]", qm, qa.min(qb), qa.max(qb));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(qm, exact_quantile(&all, q));
    }

    /// The sliding-window histogram (cumulative-snapshot difference via
    /// `delta_since`) has exact quantiles over just the window's values.
    #[test]
    fn sliding_window_quantiles_are_exact(
        values in bound_values(),
        split in 0usize..200,
        q in centile(),
    ) {
        let split = split.min(values.len().saturating_sub(1));
        let earlier = hist_of(&values[..split]);
        let now = hist_of(&values);
        let window = now.delta_since(&earlier).expect("same bounds, monotone counts");
        for q in [0.5, 0.99, q] {
            prop_assert_eq!(window.quantile(q), Some(exact_quantile(&values[split..], q)));
        }
    }

    /// Sharding the observations across 4 pool threads and merging the
    /// shards yields bit-identical quantiles to a single-threaded build.
    #[test]
    fn four_thread_sharded_build_matches_one_thread(
        values in bound_values(),
        q in centile(),
    ) {
        let serial = hist_of(&values);
        let sharded = m3d_par::with_threads(4, || {
            let shards = m3d_par::par_ranges(values.len(), |r| hist_of(&values[r]));
            let mut merged = Histogram::new(&BOUNDS);
            for s in &shards {
                merged.merge(s);
            }
            merged
        });
        prop_assert_eq!(&sharded, &serial);
        for q in [0.5, 0.99, q] {
            prop_assert_eq!(sharded.quantile(q), serial.quantile(q));
        }
    }
}
