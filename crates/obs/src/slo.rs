//! Declarative SLO specs and burn-rate evaluation.
//!
//! An SLO spec is a comma- (or whitespace-) separated list of clauses in
//! a tiny fixed grammar (DESIGN.md §17):
//!
//! ```text
//! availability>=0.99, p99_ms<=250, degraded_frac<=0.1
//! ```
//!
//! Every clause is optional; unknown keys or malformed clauses are
//! errors (a silently ignored SLO is worse than none). Evaluation turns
//! windowed observations into **burn rates** — observed consumption as a
//! multiple of what the objective allows, so `burn <= 1.0` means the SLO
//! holds:
//!
//! * `availability`: burn = error fraction ÷ error budget
//!   (`1 − availability` target). Zero traffic burns nothing.
//! * `p99_ms`: burn = observed p99 ÷ ceiling.
//! * `degraded_frac`: burn = observed degraded fraction ÷ ceiling.

/// A parsed SLO spec; `None` fields were not specified.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloSpec {
    /// Minimum fraction of answered requests that must succeed.
    pub availability: Option<f64>,
    /// Ceiling on windowed p99 latency, milliseconds.
    pub p99_ms: Option<f64>,
    /// Ceiling on the fraction of completions served degraded.
    pub degraded_frac: Option<f64>,
}

impl SloSpec {
    /// Parses the clause grammar above.
    ///
    /// # Errors
    ///
    /// Unknown keys, malformed clauses, out-of-range values.
    pub fn parse(text: &str) -> Result<SloSpec, String> {
        let mut spec = SloSpec::default();
        for clause in text
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|s| !s.is_empty())
        {
            let (key, op, value) = clause
                .find(">=")
                .map(|i| (&clause[..i], ">=", &clause[i + 2..]))
                .or_else(|| {
                    clause
                        .find("<=")
                        .map(|i| (&clause[..i], "<=", &clause[i + 2..]))
                })
                .ok_or_else(|| format!("SLO clause `{clause}` must use `>=` or `<=`"))?;
            let v: f64 = value
                .parse()
                .map_err(|_| format!("SLO clause `{clause}`: bad number `{value}`"))?;
            match (key, op) {
                ("availability", ">=") => {
                    if !(0.0..=1.0).contains(&v) {
                        return Err(format!("availability target {v} outside [0, 1]"));
                    }
                    spec.availability = Some(v);
                }
                ("p99_ms", "<=") => {
                    if v <= 0.0 {
                        return Err(format!("p99_ms ceiling {v} must be positive"));
                    }
                    spec.p99_ms = Some(v);
                }
                ("degraded_frac", "<=") => {
                    if !(0.0..=1.0).contains(&v) {
                        return Err(format!("degraded_frac ceiling {v} outside [0, 1]"));
                    }
                    spec.degraded_frac = Some(v);
                }
                _ => {
                    return Err(format!(
                        "unknown SLO clause `{clause}` (expected availability>=X, p99_ms<=X, or degraded_frac<=X)"
                    ))
                }
            }
        }
        Ok(spec)
    }

    /// Renders the spec back into the clause grammar.
    pub fn render(&self) -> String {
        let mut parts = Vec::new();
        if let Some(a) = self.availability {
            parts.push(format!("availability>={a}"));
        }
        if let Some(p) = self.p99_ms {
            parts.push(format!("p99_ms<={p}"));
        }
        if let Some(d) = self.degraded_frac {
            parts.push(format!("degraded_frac<={d}"));
        }
        parts.join(",")
    }

    /// Whether any objective was specified.
    pub fn is_empty(&self) -> bool {
        self.availability.is_none() && self.p99_ms.is_none() && self.degraded_frac.is_none()
    }
}

/// Windowed observations an SLO is evaluated against.
#[derive(Debug, Clone, Copy, Default)]
pub struct SloInputs {
    /// Requests answered successfully in the window.
    pub completed: u64,
    /// Requests that failed (gave up, crashed, internal errors).
    pub failed: u64,
    /// Completions served degraded.
    pub degraded: u64,
    /// Windowed p99 latency, when known.
    pub p99_ms: Option<f64>,
}

/// Burn rates for one evaluation window; `None` where the spec named no
/// objective or the window had no signal.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloStatus {
    /// Error-budget burn (observed error fraction ÷ allowed).
    pub burn_availability: Option<f64>,
    /// Latency burn (observed p99 ÷ ceiling).
    pub burn_p99: Option<f64>,
    /// Degradation burn (observed degraded fraction ÷ ceiling).
    pub burn_degraded: Option<f64>,
}

impl SloStatus {
    /// Whether any evaluated objective is burning faster than allowed.
    pub fn breached(&self) -> bool {
        [self.burn_availability, self.burn_p99, self.burn_degraded]
            .iter()
            .any(|b| b.is_some_and(|v| v > 1.0))
    }

    /// The largest burn rate across evaluated objectives (0 when none).
    pub fn worst_burn(&self) -> f64 {
        [self.burn_availability, self.burn_p99, self.burn_degraded]
            .iter()
            .filter_map(|b| *b)
            .fold(0.0, f64::max)
    }
}

/// Evaluates `spec` against one window of observations.
pub fn evaluate(spec: &SloSpec, inputs: &SloInputs) -> SloStatus {
    let answered = inputs.completed + inputs.failed;
    let burn_availability = spec.availability.and_then(|target| {
        if answered == 0 {
            return None;
        }
        let err_frac = inputs.failed as f64 / answered as f64;
        let budget = 1.0 - target;
        Some(if budget <= 0.0 {
            // A 100% objective has no budget: any error burns infinitely.
            if err_frac > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            err_frac / budget
        })
    });
    let burn_p99 = match (spec.p99_ms, inputs.p99_ms) {
        (Some(ceiling), Some(p99)) => Some(p99 / ceiling),
        _ => None,
    };
    let burn_degraded = spec.degraded_frac.and_then(|ceiling| {
        if inputs.completed == 0 {
            return None;
        }
        let frac = inputs.degraded as f64 / inputs.completed as f64;
        Some(if ceiling <= 0.0 {
            if frac > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            frac / ceiling
        })
    });
    SloStatus {
        burn_availability,
        burn_p99,
        burn_degraded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_grammar_round_trips_and_rejects_nonsense() {
        let spec = SloSpec::parse("availability>=0.99, p99_ms<=250 degraded_frac<=0.1").unwrap();
        assert_eq!(spec.availability, Some(0.99));
        assert_eq!(spec.p99_ms, Some(250.0));
        assert_eq!(spec.degraded_frac, Some(0.1));
        assert_eq!(SloSpec::parse(&spec.render()).unwrap(), spec);
        assert!(SloSpec::parse("").unwrap().is_empty());
        for bad in [
            "availability<=0.99", // wrong operator direction
            "p99_ms>=250",
            "latency<=5",
            "availability>=1.5",
            "p99_ms<=abc",
        ] {
            assert!(SloSpec::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn burn_rates_scale_with_budget_consumption() {
        let spec = SloSpec::parse("availability>=0.99,p99_ms<=100,degraded_frac<=0.5").unwrap();
        // 0.5% errors against a 1% budget → burn 0.5; p99 at half the
        // ceiling → 0.5; 25% degraded against 50% allowed → 0.5.
        let status = evaluate(
            &spec,
            &SloInputs {
                completed: 199,
                failed: 1,
                degraded: 50,
                p99_ms: Some(50.0),
            },
        );
        assert!((status.burn_availability.unwrap() - 0.5).abs() < 1e-9);
        assert_eq!(status.burn_p99, Some(0.5));
        assert!((status.burn_degraded.unwrap() - 0.502_512).abs() < 1e-3);
        assert!(!status.breached());
        // Blowing the latency ceiling breaches.
        let hot = evaluate(
            &spec,
            &SloInputs {
                completed: 100,
                failed: 0,
                degraded: 0,
                p99_ms: Some(250.0),
            },
        );
        assert!(hot.breached());
        assert_eq!(hot.worst_burn(), 2.5);
    }

    #[test]
    fn empty_windows_burn_nothing() {
        let spec = SloSpec::parse("availability>=0.99,degraded_frac<=0.1").unwrap();
        let status = evaluate(&spec, &SloInputs::default());
        assert_eq!(status, SloStatus::default());
        assert!(!status.breached());
        assert_eq!(status.worst_burn(), 0.0);
    }
}
