//! Profiling-report rendering: turns a JSONL trace/metrics stream back
//! into a human-readable top-down time breakdown.
//!
//! The report has four sections:
//!
//! 1. **Span breakdown** — spans aggregated by call path (a child
//!    appears under its parent), with call count, total wall time, and
//!    self time (total minus time attributed to child spans).
//! 2. **Pool utilization** — `m3d-par` dispatches grouped by enclosing
//!    span, with busy/(threads × wall) utilization.
//! 3. **Metrics** — counters, gauges, histogram summaries, and series.
//! 4. **Flight timeline** — flight-recorder events in global sequence
//!    order (present only when the stream contains them).
//!
//! Multiple JSONL inputs (offline trace + serve telemetry + flight
//! dumps) merge via [`merge_sources`] into one stream with a stable
//! total order and per-source tagging; see [`render_merged_report`].

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::Event;

/// Parses a JSONL document into events, skipping blank lines. Errors
/// carry the 1-based line number of the offending line.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(Event::parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(events)
}

/// One named input stream for a merged report (tag = file basename).
#[derive(Debug, Clone)]
pub struct Source {
    /// Human-readable origin, prefixed onto metric names when merging
    /// more than one source.
    pub tag: String,
    /// The source's parsed events, in file order.
    pub events: Vec<Event>,
}

/// Merges multiple event streams into one with a stable total order:
/// timed events (spans, flight events) sort by `t_us`, then source
/// index, then position in their source; untimed registry summaries
/// keep per-source file order and sort after all timed events. Span ids
/// are reallocated so ids from different sources never collide (parent
/// links stay within their source). When more than one source is given,
/// metric names and flight ring names are prefixed with `tag:` so
/// same-named streams stay distinguishable.
pub fn merge_sources(sources: &[Source]) -> Vec<Event> {
    let tagging = sources.len() > 1;
    let mut next_id: u64 = 1;
    // (t_key, source_idx, original_idx, event)
    let mut merged: Vec<(u64, usize, usize, Event)> = Vec::new();
    for (si, src) in sources.iter().enumerate() {
        let mut id_map: BTreeMap<u64, u64> = BTreeMap::new();
        for e in &src.events {
            if let Event::Span { id, .. } = e {
                id_map.insert(*id, next_id);
                next_id += 1;
            }
        }
        let tag = |name: &str| -> String {
            if tagging {
                format!("{}:{}", src.tag, name)
            } else {
                name.to_string()
            }
        };
        for (oi, e) in src.events.iter().enumerate() {
            let remapped = match e {
                Event::Span {
                    id,
                    parent,
                    name,
                    t_us,
                    dur_us,
                    counters,
                } => Event::Span {
                    id: id_map[id],
                    parent: parent.and_then(|p| id_map.get(&p).copied()),
                    name: name.clone(),
                    t_us: *t_us,
                    dur_us: *dur_us,
                    counters: counters.clone(),
                },
                Event::Counter { name, value } => Event::Counter {
                    name: tag(name),
                    value: *value,
                },
                Event::Gauge { name, value } => Event::Gauge {
                    name: tag(name),
                    value: *value,
                },
                Event::Hist {
                    name,
                    bounds,
                    counts,
                    count,
                    sum,
                    min,
                    max,
                } => Event::Hist {
                    name: tag(name),
                    bounds: bounds.clone(),
                    counts: counts.clone(),
                    count: *count,
                    sum: *sum,
                    min: *min,
                    max: *max,
                },
                Event::Series { name, values } => Event::Series {
                    name: tag(name),
                    values: values.clone(),
                },
                Event::Flight {
                    seq,
                    t_us,
                    source,
                    kind,
                    detail,
                } => Event::Flight {
                    seq: *seq,
                    t_us: *t_us,
                    source: tag(source),
                    kind: kind.clone(),
                    detail: detail.clone(),
                },
                other => other.clone(),
            };
            let t_key = match &remapped {
                Event::Span { t_us, .. } | Event::Flight { t_us, .. } => *t_us,
                // Registry summaries have no timestamp; sort after all
                // timed events, preserving per-source file order.
                _ => u64::MAX,
            };
            merged.push((t_key, si, oi, remapped));
        }
    }
    merged.sort_by_key(|a| (a.0, a.1, a.2));
    merged.into_iter().map(|m| m.3).collect()
}

/// One span occurrence, extracted for tree building.
struct SpanRec {
    id: u64,
    parent: Option<u64>,
    name: String,
    dur_us: u64,
}

/// Aggregate of all spans sharing one call path.
#[derive(Default)]
struct PathAgg {
    calls: u64,
    total_us: u64,
    child_us: u64,
    /// Children keyed by name, in first-seen order.
    children: Vec<String>,
    child_aggs: BTreeMap<String, PathAgg>,
}

impl PathAgg {
    fn child(&mut self, name: &str) -> &mut PathAgg {
        if !self.child_aggs.contains_key(name) {
            self.children.push(name.to_string());
            self.child_aggs.insert(name.to_string(), PathAgg::default());
        }
        self.child_aggs.get_mut(name).expect("just inserted")
    }
}

fn spans_of(events: &[Event]) -> Vec<SpanRec> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::Span {
                id,
                parent,
                name,
                dur_us,
                ..
            } => Some(SpanRec {
                id: *id,
                parent: *parent,
                name: name.clone(),
                dur_us: *dur_us,
            }),
            _ => None,
        })
        .collect()
}

/// Builds the path-aggregated span tree rooted at a synthetic node.
fn aggregate(spans: &[SpanRec]) -> PathAgg {
    let by_id: BTreeMap<u64, &SpanRec> = spans.iter().map(|s| (s.id, s)).collect();
    // Path of each span = path of parent + own name. The trace is in
    // completion order (parents last), so walk in id (allocation) order
    // instead — a parent always has a smaller id than its children.
    let mut root = PathAgg::default();
    let mut path_of: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    for s in by_id.values().copied() {
        let mut path = s
            .parent
            .and_then(|p| path_of.get(&p).cloned())
            .unwrap_or_default();
        path.push(s.name.clone());
        path_of.insert(s.id, path.clone());

        let mut node = &mut root;
        for name in &path {
            node = node.child(name);
        }
        node.calls += 1;
        node.total_us += s.dur_us;
        if let Some(p) = s.parent {
            if let Some(parent_path) = path_of.get(&p).cloned() {
                let mut pnode = &mut root;
                for name in &parent_path {
                    pnode = pnode.child(name);
                }
                pnode.child_us += s.dur_us;
            }
        }
    }
    root
}

fn render_agg(node: &PathAgg, name: &str, depth: usize, out: &mut String) {
    if depth > 0 {
        let self_us = node.total_us.saturating_sub(node.child_us);
        let indent = "  ".repeat(depth);
        let label = format!("{indent}{name}");
        let _ = writeln!(
            out,
            "  {label:<34} {:>10} {:>10} {:>6}",
            node.total_us, self_us, node.calls
        );
    }
    for child in &node.children {
        render_agg(&node.child_aggs[child], child, depth + 1, out);
    }
}

/// Renders only the span tree (used by `m3d_obs::render_tree`).
pub fn render_span_tree(events: &[Event]) -> String {
    let spans = spans_of(events);
    if spans.is_empty() {
        return "no spans recorded\n".to_string();
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {:<34} {:>10} {:>10} {:>6}",
        "span", "total_us", "self_us", "calls"
    );
    render_agg(&aggregate(&spans), "", 0, &mut out);
    out
}

/// Per-enclosing-span pool dispatch aggregate.
#[derive(Default)]
struct PoolAgg {
    dispatches: u64,
    items: u64,
    wall_us: u64,
    busy_us: u64,
    /// Σ threads_i × wall_i — the utilization denominator.
    capacity_us: u64,
    max_threads: usize,
}

fn render_pools(events: &[Event], out: &mut String) {
    let mut aggs: BTreeMap<String, PoolAgg> = BTreeMap::new();
    for e in events {
        if let Event::Pool {
            in_span,
            threads,
            chunks: _,
            items,
            wall_us,
            busy_us,
        } = e
        {
            let key = if in_span.is_empty() {
                "(top level)".to_string()
            } else {
                in_span.clone()
            };
            let a = aggs.entry(key).or_default();
            a.dispatches += 1;
            a.items += *items as u64;
            a.wall_us += wall_us;
            a.busy_us += busy_us;
            a.capacity_us += *threads as u64 * wall_us;
            a.max_threads = a.max_threads.max(*threads);
        }
    }
    if aggs.is_empty() {
        return;
    }
    let _ = writeln!(out, "\npool utilization:");
    let _ = writeln!(
        out,
        "  {:<26} {:>10} {:>8} {:>10} {:>10} {:>6}",
        "span", "dispatches", "threads", "wall_us", "busy_us", "util"
    );
    for (name, a) in &aggs {
        let util = if a.capacity_us == 0 {
            0.0
        } else {
            100.0 * a.busy_us as f64 / a.capacity_us as f64
        };
        let _ = writeln!(
            out,
            "  {:<26} {:>10} {:>8} {:>10} {:>10} {:>5.0}%",
            name, a.dispatches, a.max_threads, a.wall_us, a.busy_us, util
        );
    }
}

fn render_metrics(events: &[Event], out: &mut String) {
    let counters: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::Counter { name, value } => Some((name, *value)),
            _ => None,
        })
        .collect();
    if !counters.is_empty() {
        let _ = writeln!(out, "\ncounters:");
        for (name, value) in counters {
            let _ = writeln!(out, "  {name:<40} {value:>12}");
        }
    }

    let gauges: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::Gauge { name, value } => Some((name, *value)),
            _ => None,
        })
        .collect();
    if !gauges.is_empty() {
        let _ = writeln!(out, "\ngauges:");
        for (name, value) in gauges {
            let _ = writeln!(out, "  {name:<40} {value:>12.3}");
        }
    }

    let mut wrote_hist_header = false;
    for e in events {
        if let Event::Hist {
            name,
            count,
            sum,
            min,
            max,
            ..
        } = e
        {
            if !wrote_hist_header {
                let _ = writeln!(out, "\nhistograms:");
                let _ = writeln!(
                    out,
                    "  {:<28} {:>8} {:>12} {:>12} {:>12}",
                    "name", "count", "mean", "min", "max"
                );
                wrote_hist_header = true;
            }
            let mean = if *count == 0 {
                0.0
            } else {
                sum / *count as f64
            };
            let _ = writeln!(
                out,
                "  {name:<28} {count:>8} {mean:>12.1} {min:>12.1} {max:>12.1}"
            );
        }
    }

    let mut wrote_series_header = false;
    for e in events {
        if let Event::Series { name, values } = e {
            if !wrote_series_header {
                let _ = writeln!(out, "\nseries:");
                wrote_series_header = true;
            }
            let first = values.first().copied().unwrap_or(0.0);
            let last = values.last().copied().unwrap_or(0.0);
            let _ = writeln!(
                out,
                "  {name:<28} {:>4} points  first {first:.6}  last {last:.6}",
                values.len()
            );
        }
    }
}

/// Renders the flight-recorder events of a stream as a causal timeline
/// in global sequence order (ties broken by timestamp).
pub fn render_flight_timeline(events: &[Event]) -> String {
    let mut flights: Vec<(u64, u64, &str, &str, &str)> = events
        .iter()
        .filter_map(|e| match e {
            Event::Flight {
                seq,
                t_us,
                source,
                kind,
                detail,
            } => Some((*seq, *t_us, source.as_str(), kind.as_str(), detail.as_str())),
            _ => None,
        })
        .collect();
    if flights.is_empty() {
        return "no flight events recorded\n".to_string();
    }
    flights.sort();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {:>6} {:>12} {:<22} {:<10} detail",
        "seq", "t_us", "source", "kind"
    );
    for (seq, t_us, source, kind, detail) in flights {
        let _ = writeln!(
            out,
            "  {seq:>6} {t_us:>12} {source:<22} {kind:<10} {detail}"
        );
    }
    out
}

/// Renders the full profiling report for a parsed event stream.
pub fn render_report(events: &[Event]) -> String {
    let mut out = String::new();
    let spans = spans_of(events);
    if spans.is_empty() {
        out.push_str("no spans recorded\n");
    } else {
        out.push_str("span breakdown:\n");
        let _ = writeln!(
            out,
            "  {:<34} {:>10} {:>10} {:>6}",
            "span", "total_us", "self_us", "calls"
        );
        render_agg(&aggregate(&spans), "", 0, &mut out);
    }
    render_pools(events, &mut out);
    render_metrics(events, &mut out);
    if events.iter().any(|e| matches!(e, Event::Flight { .. })) {
        out.push_str("\nflight timeline:\n");
        out.push_str(&render_flight_timeline(events));
    }
    out
}

/// Renders a report over several merged sources: a source index header
/// (when more than one), then [`render_report`] of [`merge_sources`].
pub fn render_merged_report(sources: &[Source]) -> String {
    let mut out = String::new();
    if sources.len() > 1 {
        out.push_str("sources:\n");
        for s in sources {
            let _ = writeln!(out, "  {:<30} {:>6} events", s.tag, s.events.len());
        }
        out.push('\n');
    }
    out.push_str(&render_report(&merge_sources(sources)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, name: &str, dur_us: u64) -> Event {
        Event::Span {
            id,
            parent,
            name: name.into(),
            t_us: 0,
            dur_us,
            counters: Vec::new(),
        }
    }

    #[test]
    fn report_aggregates_self_and_total_time_per_path() {
        let events = vec![
            span(2, Some(1), "epoch", 40),
            span(3, Some(1), "epoch", 50),
            span(1, None, "fit", 100),
        ];
        let text = render_report(&events);
        let fit = text.lines().find(|l| l.contains("fit")).unwrap();
        // fit: total 100, self 100 - 90 = 10, 1 call.
        assert!(
            fit.contains("100") && fit.contains("10") && fit.ends_with('1'),
            "{text}"
        );
        let epoch = text.lines().find(|l| l.contains("epoch")).unwrap();
        // epoch: total 90, self 90, 2 calls.
        assert!(epoch.contains("90"), "{text}");
        assert!(epoch.ends_with('2'), "{text}");
    }

    #[test]
    fn report_renders_pool_utilization() {
        let events = vec![
            span(1, None, "fsim", 100),
            Event::Pool {
                in_span: "fsim".into(),
                threads: 4,
                chunks: 8,
                items: 64,
                wall_us: 100,
                busy_us: 200,
            },
        ];
        let text = render_report(&events);
        assert!(text.contains("pool utilization"), "{text}");
        // busy / (threads * wall) = 200 / 400 = 50%.
        assert!(text.contains("50%"), "{text}");
    }

    #[test]
    fn report_renders_metrics_sections() {
        let events = vec![
            Event::Counter {
                name: "hits".into(),
                value: 3,
            },
            Event::Gauge {
                name: "speed".into(),
                value: 1.5,
            },
            Event::Hist {
                name: "lat".into(),
                bounds: vec![1.0],
                counts: vec![1, 1],
                count: 2,
                sum: 3.0,
                min: 0.5,
                max: 2.5,
            },
            Event::Series {
                name: "loss".into(),
                values: vec![0.9, 0.1],
            },
        ];
        let text = render_report(&events);
        for needle in [
            "counters:",
            "gauges:",
            "histograms:",
            "series:",
            "hits",
            "loss",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn merged_sources_keep_span_ids_apart_and_tag_metrics() {
        // Both sources use span id 1 and the same counter name; the
        // merge must not conflate them.
        let a = Source {
            tag: "trace".into(),
            events: vec![
                span(1, None, "fit", 100),
                Event::Counter {
                    name: "hits".into(),
                    value: 3,
                },
            ],
        };
        let b = Source {
            tag: "telemetry".into(),
            events: vec![
                span(1, None, "serve", 50),
                Event::Counter {
                    name: "hits".into(),
                    value: 9,
                },
            ],
        };
        let merged = merge_sources(&[a.clone(), b.clone()]);
        let ids: Vec<u64> = merged
            .iter()
            .filter_map(|e| match e {
                Event::Span { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0], ids[1]);
        let text = render_merged_report(&[a, b]);
        for needle in ["sources:", "trace:hits", "telemetry:hits", "fit", "serve"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        // A single source stays untagged.
        let solo = merge_sources(&[Source {
            tag: "only".into(),
            events: vec![Event::Counter {
                name: "hits".into(),
                value: 3,
            }],
        }]);
        assert!(matches!(&solo[0], Event::Counter { name, .. } if name == "hits"));
    }

    #[test]
    fn merge_orders_timed_events_before_summaries() {
        let a = Source {
            tag: "a".into(),
            events: vec![
                Event::Counter {
                    name: "c".into(),
                    value: 1,
                },
                span(1, None, "late", 10),
            ],
        };
        let b = Source {
            tag: "b".into(),
            events: vec![Event::Flight {
                seq: 5,
                t_us: 3,
                source: "conn-1".into(),
                kind: "frame".into(),
                detail: "id=7".into(),
            }],
        };
        // Span t_us = 0 < flight t_us = 3 < counter (untimed, last).
        let merged = merge_sources(&[a, b]);
        assert!(matches!(merged[0], Event::Span { .. }), "{merged:?}");
        assert!(matches!(merged[1], Event::Flight { .. }), "{merged:?}");
        assert!(matches!(merged[2], Event::Counter { .. }), "{merged:?}");
    }

    #[test]
    fn flight_timeline_renders_in_sequence_order() {
        let events = vec![
            Event::Flight {
                seq: 9,
                t_us: 40,
                source: "pool-w1".into(),
                kind: "panic".into(),
                detail: "chaos seq 97".into(),
            },
            Event::Flight {
                seq: 2,
                t_us: 10,
                source: "conn-4".into(),
                kind: "frame".into(),
                detail: "diagnose id=97".into(),
            },
        ];
        let text = render_report(&events);
        assert!(text.contains("flight timeline:"), "{text}");
        let frame_at = text.find("diagnose id=97").unwrap();
        let panic_at = text.find("chaos seq 97").unwrap();
        assert!(frame_at < panic_at, "{text}");
        assert_eq!(render_flight_timeline(&[]), "no flight events recorded\n");
    }

    #[test]
    fn parse_jsonl_reports_line_numbers() {
        let err = parse_jsonl("{\"type\":\"counter\",\"name\":\"a\",\"value\":1}\n\nnot json")
            .unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
    }
}
