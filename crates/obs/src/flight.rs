//! The flight recorder: fixed-capacity ring buffers of recent events,
//! kept per source (one per connection, pool worker, or subsystem), for
//! post-mortem dumps when something goes wrong.
//!
//! Unlike the trace buffer, which grows without bound and is flushed at
//! process exit, the recorder is sized for *always-on* use in a
//! long-running server: each source keeps only its most recent
//! [`flight_capacity`] events (oldest overwritten first), so memory is
//! bounded no matter the uptime. A global monotone sequence number gives
//! every event a stable total order across sources — the causal timeline
//! `m3d-diag report --flight` reconstructs.
//!
//! Recording is gated by its own flag ([`set_flight_enabled`]),
//! independent of the trace/metrics gate: a production server records
//! flight events without accumulating an unbounded trace. Like all obs
//! recording, it is a pure observer — dropping or keeping events never
//! feeds back into computed results.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::event::Event;

/// Default per-source ring capacity.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

static FLIGHT_ENABLED: AtomicBool = AtomicBool::new(false);
static FLIGHT_SEQ: AtomicU64 = AtomicU64::new(1);
static FLIGHT_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_FLIGHT_CAPACITY);
static RINGS: Mutex<BTreeMap<String, Ring>> = Mutex::new(BTreeMap::new());

/// One recorded flight event.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Globally monotone sequence number (total order across sources).
    pub seq: u64,
    /// Microseconds since the process trace epoch.
    pub t_us: u64,
    /// The ring this event belongs to, e.g. `conn-12` or `pool-w3`.
    pub source: String,
    /// Short machine-readable kind, e.g. `frame`, `panic`, `reject`.
    pub kind: String,
    /// Free-form detail (request ids, error text).
    pub detail: String,
}

impl FlightEvent {
    /// Converts to the JSONL [`Event::Flight`] form.
    pub fn to_event(&self) -> Event {
        Event::Flight {
            seq: self.seq,
            t_us: self.t_us,
            source: self.source.clone(),
            kind: self.kind.clone(),
            detail: self.detail.clone(),
        }
    }
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<FlightEvent>,
    /// Events overwritten since the ring was created.
    dropped: u64,
}

fn lock_rings() -> std::sync::MutexGuard<'static, BTreeMap<String, Ring>> {
    RINGS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Turns flight recording on or off (off is the default; when off,
/// [`flight_record`] is a single relaxed atomic load).
pub fn set_flight_enabled(on: bool) {
    FLIGHT_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether flight recording is enabled.
pub fn flight_enabled() -> bool {
    FLIGHT_ENABLED.load(Ordering::Relaxed)
}

/// Sets the per-source ring capacity (existing rings shrink lazily as
/// they record). Clamped to at least 1.
pub fn set_flight_capacity(cap: usize) {
    FLIGHT_CAPACITY.store(cap.max(1), Ordering::Relaxed);
}

/// The current per-source ring capacity.
pub fn flight_capacity() -> usize {
    FLIGHT_CAPACITY.load(Ordering::Relaxed)
}

/// Records one event into `source`'s ring (no-op when disabled). The
/// oldest event is overwritten once the ring is at capacity.
pub fn flight_record(source: &str, kind: &str, detail: impl Into<String>) {
    if !flight_enabled() {
        return;
    }
    let ev = FlightEvent {
        seq: FLIGHT_SEQ.fetch_add(1, Ordering::Relaxed),
        t_us: crate::epoch().elapsed().as_micros() as u64,
        source: source.to_string(),
        kind: kind.to_string(),
        detail: detail.into(),
    };
    let cap = flight_capacity();
    let mut rings = lock_rings();
    let ring = rings.entry(ev.source.clone()).or_default();
    while ring.events.len() >= cap {
        ring.events.pop_front();
        ring.dropped += 1;
    }
    ring.events.push_back(ev);
}

/// Every retained event across all rings, in global sequence order.
pub fn flight_events() -> Vec<FlightEvent> {
    let rings = lock_rings();
    let mut out: Vec<FlightEvent> = rings
        .values()
        .flat_map(|r| r.events.iter().cloned())
        .collect();
    out.sort_by_key(|e| e.seq);
    out
}

/// Total events overwritten across all rings since the last clear (how
/// much history the capacity bound cost).
pub fn flight_dropped() -> u64 {
    lock_rings().values().map(|r| r.dropped).sum()
}

/// Drops every ring and resets the sequence counter.
pub fn flight_clear() {
    lock_rings().clear();
    FLIGHT_SEQ.store(1, Ordering::Relaxed);
}

/// Renders the retained events as a JSONL document (one
/// [`Event::Flight`] line per event, sequence order) — the `flight-*.jsonl`
/// dump format.
pub fn flight_render() -> String {
    let mut out = String::new();
    for e in flight_events() {
        out.push_str(&e.to_event().render_line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Flight state is global; tests must not interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> MutexGuard<'static, ()> {
        TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let _x = exclusive();
        flight_clear();
        set_flight_enabled(false);
        flight_record("conn-1", "frame", "diagnose id=1");
        assert!(flight_events().is_empty());
    }

    #[test]
    fn rings_overwrite_oldest_at_capacity() {
        let _x = exclusive();
        flight_clear();
        set_flight_enabled(true);
        set_flight_capacity(3);
        for i in 0..5 {
            flight_record("conn-1", "frame", format!("req {i}"));
        }
        flight_record("pool-w0", "job", "seq 9");
        set_flight_enabled(false);
        let events = flight_events();
        // conn-1 kept its newest 3; pool-w0 kept its 1.
        assert_eq!(events.len(), 4);
        assert_eq!(flight_dropped(), 2);
        let conn: Vec<&str> = events
            .iter()
            .filter(|e| e.source == "conn-1")
            .map(|e| e.detail.as_str())
            .collect();
        assert_eq!(conn, ["req 2", "req 3", "req 4"]);
        // Global sequence order is a total order across sources.
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        set_flight_capacity(DEFAULT_FLIGHT_CAPACITY);
        flight_clear();
    }

    #[test]
    fn rendered_dump_round_trips_through_the_event_codec() {
        let _x = exclusive();
        flight_clear();
        set_flight_enabled(true);
        flight_record("conn-2", "reject", "bad length prefix");
        flight_record("pool-w1", "panic", "chaos seq 97");
        set_flight_enabled(false);
        let dump = flight_render();
        let parsed = crate::report::parse_jsonl(&dump).expect("dump parses");
        assert_eq!(parsed.len(), 2);
        assert!(matches!(&parsed[1], Event::Flight { kind, .. } if kind == "panic"));
        flight_clear();
    }
}
