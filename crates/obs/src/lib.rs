//! Std-only observability substrate for the M3D diagnosis pipeline:
//! hierarchical span tracing, a deterministic metrics registry, and a
//! profiling report renderer.
//!
//! # Design
//!
//! - **Off by default, zero-ish cost when off.** Every recording entry
//!   point checks one relaxed atomic and returns immediately when
//!   observability is disabled, so instrumented hot paths stay cheap.
//! - **Determinism-preserving.** Recording is a pure *read* of pipeline
//!   state: spans and metrics are recorded only from orchestrating
//!   threads (worker threads at most measure timestamps that the caller
//!   records in chunk order), so enabling tracing never changes chunk
//!   boundaries, merge order, RNG draws, or any computed result.
//! - **Two sinks.** A trace buffer of [`Event::Span`] / [`Event::Pool`]
//!   events (wall-clock structure of a run) and a [`Registry`] of
//!   counters/gauges/histograms/series (aggregate health of a run).
//!   Both serialize to JSON-lines via [`Event::render_line`].
//!
//! # Usage
//!
//! ```
//! m3d_obs::reset();
//! m3d_obs::set_enabled(true);
//! {
//!     let mut span = m3d_obs::span("fault_simulation");
//!     span.add("faults", 12);
//!     m3d_obs::counter("tdf.fsim.calls", 1);
//! }
//! let trace = m3d_obs::trace_events();
//! assert_eq!(trace.len(), 1);
//! m3d_obs::set_enabled(false);
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod report;
pub mod rolling;
pub mod slo;

pub use event::Event;
pub use flight::{
    flight_capacity, flight_clear, flight_dropped, flight_enabled, flight_events, flight_record,
    flight_render, set_flight_capacity, set_flight_enabled, FlightEvent, DEFAULT_FLIGHT_CAPACITY,
};
pub use json::Json;
pub use metrics::{Histogram, Registry, LATENCY_MS_BOUNDS, QUEUE_DEPTH_BOUNDS, TIME_US_BOUNDS};
pub use rolling::{SnapshotRing, Stamped};
pub use slo::{SloInputs, SloSpec, SloStatus};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static TRACE_ENABLED: AtomicBool = AtomicBool::new(true);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static TRACE: Mutex<Vec<Event>> = Mutex::new(Vec::new());
static REGISTRY: Mutex<Registry> = Mutex::new(Registry::new());

thread_local! {
    /// Stack of open spans on this thread: `(id, name)`.
    static STACK: RefCell<Vec<(u64, &'static str)>> = const { RefCell::new(Vec::new()) };
}

/// Shared process-wide time origin for span `t_us` offsets.
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Locks `m`, recovering the data from a poisoned lock: observability
/// must keep working after a guarded worker panic elsewhere.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Turns recording on or off. Off is the default; when off, every
/// recording call is a single relaxed atomic load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recording is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the *trace* sink (span and pool events) on or off without
/// touching the metrics registry. On by default. A long-running server
/// sets this off so metrics keep accumulating while the unbounded trace
/// buffer stays empty.
pub fn set_trace_enabled(on: bool) {
    TRACE_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the trace sink is currently enabled (and recording overall).
pub fn trace_enabled() -> bool {
    enabled() && TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Clears the trace buffer, the metrics registry, and the id counter.
/// Open spans on other threads keep their already-allocated ids.
pub fn reset() {
    lock(&TRACE).clear();
    lock(&REGISTRY).clear();
    NEXT_ID.store(1, Ordering::Relaxed);
}

/// An RAII guard for one traced span. Created by [`span`]; records a
/// [`Event::Span`] with its wall time and counters when dropped.
#[derive(Debug)]
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct SpanGuard {
    active: bool,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    t_us: u64,
    start: Instant,
    counters: Vec<(&'static str, u64)>,
}

impl SpanGuard {
    /// Adds `n` to the per-span counter `name` (no-op when disabled).
    pub fn add(&mut self, name: &'static str, n: u64) {
        if !self.active {
            return;
        }
        match self.counters.iter_mut().find(|(k, _)| *k == name) {
            Some((_, v)) => *v += n,
            None => self.counters.push((name, n)),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            if s.last().map(|(id, _)| *id) == Some(self.id) {
                s.pop();
            }
        });
        let dur_us = self.start.elapsed().as_micros() as u64;
        lock(&TRACE).push(Event::Span {
            id: self.id,
            parent: self.parent,
            name: self.name.to_string(),
            t_us: self.t_us,
            dur_us,
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
        });
    }
}

/// Opens a span named `name`, nested under the innermost open span on
/// this thread. Returns an inert guard when recording is disabled.
pub fn span(name: &'static str) -> SpanGuard {
    if !trace_enabled() {
        return SpanGuard {
            active: false,
            id: 0,
            parent: None,
            name,
            t_us: 0,
            start: Instant::now(),
            counters: Vec::new(),
        };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().map(|(id, _)| *id);
        s.push((id, name));
        parent
    });
    SpanGuard {
        active: true,
        id,
        parent,
        name,
        t_us: epoch().elapsed().as_micros() as u64,
        start: Instant::now(),
        counters: Vec::new(),
    }
}

/// Name of the innermost open span on this thread, if any.
pub fn current_span() -> Option<&'static str> {
    STACK.with(|s| s.borrow().last().map(|(_, name)| *name))
}

/// Records one thread-pool dispatch for utilization accounting,
/// attributed to the innermost open span on the calling thread.
pub fn record_pool(threads: usize, chunks: usize, items: usize, wall_us: u64, busy_us: u64) {
    if !trace_enabled() {
        return;
    }
    let in_span = current_span().unwrap_or("").to_string();
    lock(&TRACE).push(Event::Pool {
        in_span,
        threads,
        chunks,
        items,
        wall_us,
        busy_us,
    });
}

/// Adds `n` to the global monotonic counter `name`.
pub fn counter(name: &str, n: u64) {
    if enabled() {
        lock(&REGISTRY).counter(name, n);
    }
}

/// Sets the global gauge `name` to `v`.
pub fn gauge(name: &str, v: f64) {
    if enabled() {
        lock(&REGISTRY).gauge(name, v);
    }
}

/// Records `v` into the global histogram `name` with the default
/// latency buckets ([`TIME_US_BOUNDS`]).
pub fn observe(name: &str, v: f64) {
    if enabled() {
        lock(&REGISTRY).observe(name, v);
    }
}

/// Records `v` into the global histogram `name`, creating it with
/// `bounds` on first use.
pub fn observe_with(name: &str, bounds: &[f64], v: f64) {
    if enabled() {
        lock(&REGISTRY).observe_with(name, bounds, v);
    }
}

/// Records every value in `values` into the global histogram `name`
/// under one registry lock (the batch form of [`observe`]).
pub fn observe_batch(name: &str, values: impl IntoIterator<Item = f64>) {
    if enabled() {
        lock(&REGISTRY).observe_all(name, values);
    }
}

/// Appends `v` to the global ordered series `name`.
pub fn series_push(name: &str, v: f64) {
    if enabled() {
        lock(&REGISTRY).series_push(name, v);
    }
}

/// A copy of the trace buffer (span and pool events, completion order).
pub fn trace_events() -> Vec<Event> {
    lock(&TRACE).clone()
}

/// The metrics registry exported as events (deterministic order).
pub fn metrics_events() -> Vec<Event> {
    lock(&REGISTRY).events()
}

/// A point-in-time copy of the whole metrics registry.
pub fn registry_snapshot() -> Registry {
    lock(&REGISTRY).clone()
}

fn write_jsonl(path: &std::path::Path, events: &[Event]) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    for e in events {
        writeln!(out, "{}", e.render_line())?;
    }
    out.flush()
}

/// Writes the trace buffer to `path` as JSON-lines.
pub fn write_trace(path: &std::path::Path) -> std::io::Result<()> {
    write_jsonl(path, &trace_events())
}

/// Writes the metrics registry to `path` as JSON-lines.
pub fn write_metrics(path: &std::path::Path) -> std::io::Result<()> {
    write_jsonl(path, &metrics_events())
}

/// Renders the recorded spans as a human-readable indented tree.
pub fn render_tree() -> String {
    report::render_span_tree(&trace_events())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Global-state tests must not interleave; every test takes this.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> MutexGuard<'static, ()> {
        TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_recording_is_inert() {
        let _x = exclusive();
        reset();
        set_enabled(false);
        {
            let mut s = span("outer");
            s.add("n", 3);
            counter("c", 1);
            observe("h", 1.0);
            record_pool(4, 8, 100, 10, 40);
        }
        assert!(trace_events().is_empty());
        assert!(metrics_events().is_empty());
    }

    #[test]
    fn spans_nest_and_record_counters() {
        let _x = exclusive();
        reset();
        set_enabled(true);
        {
            let mut outer = span("outer");
            outer.add("items", 2);
            outer.add("items", 3);
            {
                let _inner = span("inner");
                record_pool(4, 8, 100, 10, 40);
            }
        }
        set_enabled(false);
        let events = trace_events();
        assert_eq!(events.len(), 3);
        // Completion order: pool (inside inner), inner, outer.
        let Event::Pool { in_span, .. } = &events[0] else {
            panic!("expected pool first: {events:?}");
        };
        assert_eq!(in_span, "inner");
        let Event::Span { name, parent, .. } = &events[1] else {
            panic!("expected span: {events:?}");
        };
        assert_eq!(name, "inner");
        assert!(parent.is_some());
        let Event::Span {
            name,
            parent,
            counters,
            ..
        } = &events[2]
        else {
            panic!("expected span: {events:?}");
        };
        assert_eq!(name, "outer");
        assert_eq!(*parent, None);
        assert_eq!(counters, &[("items".to_string(), 5)]);
    }

    #[test]
    fn trace_gate_keeps_metrics_but_drops_spans() {
        let _x = exclusive();
        reset();
        set_enabled(true);
        set_trace_enabled(false);
        {
            let _s = span("quiet");
            counter("served", 3);
            record_pool(4, 8, 100, 10, 40);
        }
        set_trace_enabled(true);
        set_enabled(false);
        assert!(trace_events().is_empty());
        assert_eq!(registry_snapshot().counter_value("served"), Some(3));
    }

    #[test]
    fn reset_clears_both_sinks() {
        let _x = exclusive();
        reset();
        set_enabled(true);
        {
            let _s = span("x");
            counter("c", 2);
        }
        set_enabled(false);
        assert!(!trace_events().is_empty());
        reset();
        assert!(trace_events().is_empty());
        assert!(metrics_events().is_empty());
    }

    #[test]
    fn write_and_parse_round_trip_on_disk() {
        let _x = exclusive();
        reset();
        set_enabled(true);
        {
            let _s = span("stage");
            counter("hits", 7);
            series_push("loss", 0.5);
        }
        set_enabled(false);
        let dir = std::env::temp_dir();
        let trace = dir.join(format!("obs_trace_{}.jsonl", std::process::id()));
        let metrics = dir.join(format!("obs_metrics_{}.jsonl", std::process::id()));
        write_trace(&trace).unwrap();
        write_metrics(&metrics).unwrap();
        for p in [&trace, &metrics] {
            let text = std::fs::read_to_string(p).unwrap();
            for line in text.lines() {
                Event::parse_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
            }
            std::fs::remove_file(p).unwrap();
        }
    }
}
