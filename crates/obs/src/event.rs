//! The observability event schema and its JSONL wire format.
//!
//! Every line in a trace or metrics file is one JSON object whose
//! `"type"` field selects the variant:
//!
//! | `type`    | meaning                                              |
//! |-----------|------------------------------------------------------|
//! | `span`    | one completed span (id, parent, wall time, counters) |
//! | `pool`    | one thread-pool dispatch (utilization accounting)    |
//! | `counter` | final value of a monotonic counter                   |
//! | `gauge`   | final value of a gauge                               |
//! | `hist`    | a fixed-bucket histogram snapshot                    |
//! | `series`  | an ordered numeric series (e.g. per-epoch loss)      |
//! | `flight`  | one flight-recorder event (post-mortem ring dump)    |

use crate::json::{self, Json};

/// One observability event; see the module docs for the line schema.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A completed span. `parent` is `None` for root spans; `t_us` is
    /// the start offset from the process trace epoch.
    Span {
        /// Unique id within the trace (allocation order).
        id: u64,
        /// Enclosing span id, if any.
        parent: Option<u64>,
        /// Static stage name, e.g. `"fault_simulation"`.
        name: String,
        /// Start time, microseconds since the trace epoch.
        t_us: u64,
        /// Wall-clock duration in microseconds.
        dur_us: u64,
        /// Per-span counters accumulated via `SpanGuard::add`.
        counters: Vec<(String, u64)>,
    },
    /// One parallel dispatch through the `m3d-par` pool.
    Pool {
        /// Name of the span the dispatch ran under (empty at top level).
        in_span: String,
        /// Worker threads used for this dispatch.
        threads: usize,
        /// Number of chunks the input was split into.
        chunks: usize,
        /// Total items processed.
        items: usize,
        /// Wall time of the whole dispatch, microseconds.
        wall_us: u64,
        /// Summed per-chunk execution time, microseconds.
        busy_us: u64,
    },
    /// Final value of a monotonic counter.
    Counter {
        /// Metric name.
        name: String,
        /// Accumulated value.
        value: u64,
    },
    /// Final value of a gauge.
    Gauge {
        /// Metric name.
        name: String,
        /// Last written value.
        value: f64,
    },
    /// A histogram snapshot (see `metrics::Histogram` for semantics).
    Hist {
        /// Metric name.
        name: String,
        /// Bucket upper bounds.
        bounds: Vec<f64>,
        /// Per-bucket counts (`bounds.len() + 1`; last is overflow).
        counts: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Sum of observations.
        sum: f64,
        /// Smallest observation.
        min: f64,
        /// Largest observation.
        max: f64,
    },
    /// An ordered numeric series.
    Series {
        /// Metric name.
        name: String,
        /// Values in record order.
        values: Vec<f64>,
    },
    /// One flight-recorder event (see `flight` module): a line in a
    /// `flight-*.jsonl` post-mortem dump.
    Flight {
        /// Globally monotone sequence number (total order across rings).
        seq: u64,
        /// Microseconds since the process trace epoch.
        t_us: u64,
        /// Originating ring, e.g. `conn-12` or `pool-w3`.
        source: String,
        /// Short machine-readable kind, e.g. `frame`, `panic`.
        kind: String,
        /// Free-form detail (request ids, error text).
        detail: String,
    },
}

fn num_arr(xs: &[f64]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::Num(x)).collect())
}

fn u64_arr(xs: &[u64]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::Num(x as f64)).collect())
}

impl Event {
    /// Converts the event to its JSON object form.
    pub fn to_json(&self) -> Json {
        match self {
            Event::Span {
                id,
                parent,
                name,
                t_us,
                dur_us,
                counters,
            } => Json::Obj(vec![
                ("type".into(), Json::Str("span".into())),
                ("id".into(), Json::Num(*id as f64)),
                (
                    "parent".into(),
                    parent.map_or(Json::Null, |p| Json::Num(p as f64)),
                ),
                ("name".into(), Json::Str(name.clone())),
                ("t_us".into(), Json::Num(*t_us as f64)),
                ("dur_us".into(), Json::Num(*dur_us as f64)),
                (
                    "counters".into(),
                    Json::Obj(
                        counters
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                            .collect(),
                    ),
                ),
            ]),
            Event::Pool {
                in_span,
                threads,
                chunks,
                items,
                wall_us,
                busy_us,
            } => Json::Obj(vec![
                ("type".into(), Json::Str("pool".into())),
                ("in".into(), Json::Str(in_span.clone())),
                ("threads".into(), Json::Num(*threads as f64)),
                ("chunks".into(), Json::Num(*chunks as f64)),
                ("items".into(), Json::Num(*items as f64)),
                ("wall_us".into(), Json::Num(*wall_us as f64)),
                ("busy_us".into(), Json::Num(*busy_us as f64)),
            ]),
            Event::Counter { name, value } => Json::Obj(vec![
                ("type".into(), Json::Str("counter".into())),
                ("name".into(), Json::Str(name.clone())),
                ("value".into(), Json::Num(*value as f64)),
            ]),
            Event::Gauge { name, value } => Json::Obj(vec![
                ("type".into(), Json::Str("gauge".into())),
                ("name".into(), Json::Str(name.clone())),
                ("value".into(), Json::Num(*value)),
            ]),
            Event::Hist {
                name,
                bounds,
                counts,
                count,
                sum,
                min,
                max,
            } => Json::Obj(vec![
                ("type".into(), Json::Str("hist".into())),
                ("name".into(), Json::Str(name.clone())),
                ("bounds".into(), num_arr(bounds)),
                ("counts".into(), u64_arr(counts)),
                ("count".into(), Json::Num(*count as f64)),
                ("sum".into(), Json::Num(*sum)),
                ("min".into(), Json::Num(*min)),
                ("max".into(), Json::Num(*max)),
            ]),
            Event::Series { name, values } => Json::Obj(vec![
                ("type".into(), Json::Str("series".into())),
                ("name".into(), Json::Str(name.clone())),
                ("values".into(), num_arr(values)),
            ]),
            Event::Flight {
                seq,
                t_us,
                source,
                kind,
                detail,
            } => Json::Obj(vec![
                ("type".into(), Json::Str("flight".into())),
                ("seq".into(), Json::Num(*seq as f64)),
                ("t_us".into(), Json::Num(*t_us as f64)),
                ("source".into(), Json::Str(source.clone())),
                ("kind".into(), Json::Str(kind.clone())),
                ("detail".into(), Json::Str(detail.clone())),
            ]),
        }
    }

    /// Renders the event as one JSONL line (no trailing newline).
    pub fn render_line(&self) -> String {
        self.to_json().render()
    }

    /// Reconstructs an event from its JSON object form.
    pub fn from_json(v: &Json) -> Result<Event, String> {
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or("event missing `type`")?;
        let name = || -> Result<String, String> {
            Ok(v.get("name")
                .and_then(Json::as_str)
                .ok_or("event missing `name`")?
                .to_string())
        };
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("event missing integer `{key}`"))
        };
        let f = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event missing number `{key}`"))
        };
        let fs = |key: &str| -> Result<Vec<f64>, String> {
            v.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("event missing array `{key}`"))?
                .iter()
                .map(|x| x.as_f64().ok_or_else(|| format!("non-number in `{key}`")))
                .collect()
        };
        match kind {
            "span" => {
                let parent = match v.get("parent") {
                    Some(Json::Null) | None => None,
                    Some(p) => Some(p.as_u64().ok_or("bad `parent`")?),
                };
                let counters = match v.get("counters") {
                    Some(Json::Obj(pairs)) => pairs
                        .iter()
                        .map(|(k, n)| {
                            n.as_u64()
                                .map(|n| (k.clone(), n))
                                .ok_or_else(|| format!("non-integer counter `{k}`"))
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => Vec::new(),
                };
                Ok(Event::Span {
                    id: u("id")?,
                    parent,
                    name: name()?,
                    t_us: u("t_us")?,
                    dur_us: u("dur_us")?,
                    counters,
                })
            }
            "pool" => Ok(Event::Pool {
                in_span: v
                    .get("in")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                threads: u("threads")? as usize,
                chunks: u("chunks")? as usize,
                items: u("items")? as usize,
                wall_us: u("wall_us")?,
                busy_us: u("busy_us")?,
            }),
            "counter" => Ok(Event::Counter {
                name: name()?,
                value: u("value")?,
            }),
            "gauge" => Ok(Event::Gauge {
                name: name()?,
                value: f("value")?,
            }),
            "hist" => Ok(Event::Hist {
                name: name()?,
                bounds: fs("bounds")?,
                counts: v
                    .get("counts")
                    .and_then(Json::as_arr)
                    .ok_or("event missing array `counts`")?
                    .iter()
                    .map(|x| x.as_u64().ok_or("non-integer in `counts`".to_string()))
                    .collect::<Result<Vec<_>, _>>()?,
                count: u("count")?,
                sum: f("sum")?,
                min: f("min")?,
                max: f("max")?,
            }),
            "series" => Ok(Event::Series {
                name: name()?,
                values: fs("values")?,
            }),
            "flight" => {
                let s = |key: &str| -> Result<String, String> {
                    Ok(v.get(key)
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("event missing string `{key}`"))?
                        .to_string())
                };
                Ok(Event::Flight {
                    seq: u("seq")?,
                    t_us: u("t_us")?,
                    source: s("source")?,
                    kind: s("kind")?,
                    detail: s("detail")?,
                })
            }
            other => Err(format!("unknown event type `{other}`")),
        }
    }

    /// Parses one JSONL line into an event.
    pub fn parse_line(line: &str) -> Result<Event, String> {
        Event::from_json(&json::parse(line)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(e: Event) {
        let line = e.render_line();
        let back = Event::parse_line(&line).unwrap_or_else(|err| panic!("{err}: {line}"));
        assert_eq!(back, e, "line: {line}");
    }

    #[test]
    fn all_event_kinds_round_trip_through_jsonl() {
        round_trip(Event::Span {
            id: 3,
            parent: Some(1),
            name: "fault_simulation".into(),
            t_us: 120,
            dur_us: 4_567,
            counters: vec![("faults".into(), 12), ("blocks".into(), 3)],
        });
        round_trip(Event::Span {
            id: 1,
            parent: None,
            name: "train".into(),
            t_us: 0,
            dur_us: 9,
            counters: Vec::new(),
        });
        round_trip(Event::Pool {
            in_span: "sample_generation".into(),
            threads: 4,
            chunks: 16,
            items: 240,
            wall_us: 1000,
            busy_us: 3600,
        });
        round_trip(Event::Counter {
            name: "gnn.train.batches".into(),
            value: 42,
        });
        round_trip(Event::Gauge {
            name: "tdf.fsim.detections_per_s".into(),
            value: 1234.5,
        });
        round_trip(Event::Hist {
            name: "par.exec_us".into(),
            bounds: vec![10.0, 100.0],
            counts: vec![1, 2, 0],
            count: 3,
            sum: 151.5,
            min: 8.25,
            max: 99.0,
        });
        round_trip(Event::Series {
            name: "gnn.epoch_loss".into(),
            values: vec![0.9, 0.5, 0.25],
        });
        round_trip(Event::Flight {
            seq: 17,
            t_us: 456_789,
            source: "conn-3".into(),
            kind: "panic".into(),
            detail: "chaos: injected worker panic (seq 97)".into(),
        });
    }

    #[test]
    fn parse_line_rejects_unknown_type_and_garbage() {
        assert!(Event::parse_line("{\"type\":\"nope\"}").is_err());
        assert!(Event::parse_line("not json").is_err());
        assert!(Event::parse_line("{\"name\":\"x\"}").is_err());
    }
}
