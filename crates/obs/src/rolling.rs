//! Rolling-window aggregation over cumulative registry snapshots.
//!
//! The live telemetry plane samples [`crate::registry_snapshot`] at a
//! fixed cadence and pushes each (timestamped) snapshot into a
//! [`SnapshotRing`]. Because counters and histograms are *cumulative*,
//! any window aggregate is a difference of two snapshots:
//!
//! * a counter's rate over the last `w` ms is
//!   `(now − then) / elapsed_secs`,
//! * a histogram's sliding p50/p95/p99 is the
//!   [`Histogram::delta_since`] of the two snapshots, quantiled.
//!
//! The ring holds only what the longest window needs (plus one slot of
//! slack so a `horizon`-wide window always has a baseline), so memory is
//! bounded regardless of uptime.

use std::collections::VecDeque;

use crate::metrics::{Histogram, Registry};

/// One timestamped registry snapshot.
#[derive(Debug, Clone)]
pub struct Stamped {
    /// Sample time, milliseconds on the sampler's own monotonic clock.
    pub t_ms: u64,
    /// The cumulative registry state at `t_ms`.
    pub registry: Registry,
}

/// A bounded ring of cumulative registry snapshots supporting windowed
/// rates and sliding histogram quantiles.
#[derive(Debug)]
pub struct SnapshotRing {
    horizon_ms: u64,
    slots: VecDeque<Stamped>,
}

impl SnapshotRing {
    /// Creates a ring retaining roughly `horizon_ms` of history (the
    /// longest window a caller will ask for, e.g. 60 000).
    pub fn new(horizon_ms: u64) -> Self {
        SnapshotRing {
            horizon_ms: horizon_ms.max(1),
            slots: VecDeque::new(),
        }
    }

    /// Pushes one snapshot and evicts slots older than the horizon
    /// (always keeping one slot at-or-past the horizon so a full-width
    /// window still has a baseline). `t_ms` must be monotone
    /// non-decreasing; a regressing stamp clears the ring (the sampler
    /// restarted).
    pub fn push(&mut self, t_ms: u64, registry: Registry) {
        if self.slots.back().is_some_and(|s| s.t_ms > t_ms) {
            self.slots.clear();
        }
        self.slots.push_back(Stamped { t_ms, registry });
        let cutoff = t_ms.saturating_sub(self.horizon_ms);
        while self.slots.len() > 2 && self.slots[1].t_ms <= cutoff {
            self.slots.pop_front();
        }
    }

    /// The most recent snapshot.
    pub fn latest(&self) -> Option<&Stamped> {
        self.slots.back()
    }

    /// Number of retained snapshots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the ring holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The baseline slot for a window ending at the newest snapshot: the
    /// *newest* slot at least `window_ms` older than the latest (so the
    /// window covers at least the requested span), falling back to the
    /// oldest slot while the ring is still filling.
    fn baseline(&self, window_ms: u64) -> Option<&Stamped> {
        let newest = self.slots.back()?;
        let target = newest.t_ms.saturating_sub(window_ms);
        self.slots
            .iter()
            .rev()
            .skip(1)
            .find(|s| s.t_ms <= target)
            .or_else(|| {
                if self.slots.len() >= 2 {
                    self.slots.front()
                } else {
                    None
                }
            })
    }

    /// The increase of counter `name` over the last `window_ms`, as a
    /// per-second rate. `None` until two snapshots span a nonzero
    /// interval (or when the counter never appeared).
    pub fn rate(&self, name: &str, window_ms: u64) -> Option<f64> {
        let newest = self.slots.back()?;
        let base = self.baseline(window_ms)?;
        let dt_ms = newest.t_ms.checked_sub(base.t_ms)?;
        if dt_ms == 0 {
            return None;
        }
        let now = newest.registry.counter_value(name).unwrap_or(0);
        let then = base.registry.counter_value(name).unwrap_or(0);
        Some(now.saturating_sub(then) as f64 / (dt_ms as f64 / 1e3))
    }

    /// The sliding-window view of histogram `name` over the last
    /// `window_ms` (difference of cumulative snapshots). `None` until a
    /// baseline exists or when the histogram is absent.
    pub fn hist_window(&self, name: &str, window_ms: u64) -> Option<Histogram> {
        let newest = self.slots.back()?;
        let now = newest.registry.histogram(name)?;
        match self
            .baseline(window_ms)
            .and_then(|b| b.registry.histogram(name))
        {
            Some(then) => now.delta_since(then),
            // The histogram appeared after the baseline snapshot: the
            // whole cumulative state is inside the window.
            None => Some(now.clone()),
        }
    }

    /// Sliding-window quantile of histogram `name`: the `q`-quantile of
    /// [`SnapshotRing::hist_window`]. `None` when the window is empty.
    pub fn quantile(&self, name: &str, window_ms: u64, q: f64) -> Option<f64> {
        self.hist_window(name, window_ms)?.quantile(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(completed: u64, lat: &[f64]) -> Registry {
        let mut r = Registry::new();
        r.counter("serve.completed", completed);
        for &v in lat {
            r.observe_with("lat_ms", &[1.0, 10.0, 100.0], v);
        }
        r
    }

    #[test]
    fn windowed_rate_diffs_the_right_baseline() {
        let mut ring = SnapshotRing::new(60_000);
        let mut r = reg(0, &[]);
        ring.push(0, r.clone());
        assert_eq!(ring.rate("serve.completed", 1_000), None);
        r.counter("serve.completed", 10);
        ring.push(1_000, r.clone());
        // 10 completions in 1 s.
        assert_eq!(ring.rate("serve.completed", 1_000), Some(10.0));
        r.counter("serve.completed", 50);
        ring.push(2_000, r.clone());
        // Last second: 50; last two seconds: 60 total / 2 s.
        assert_eq!(ring.rate("serve.completed", 1_000), Some(50.0));
        assert_eq!(ring.rate("serve.completed", 2_000), Some(30.0));
        // A wider-than-history window falls back to the oldest slot.
        assert_eq!(ring.rate("serve.completed", 60_000), Some(30.0));
    }

    #[test]
    fn sliding_quantiles_see_only_the_window() {
        let mut ring = SnapshotRing::new(60_000);
        let mut r = Registry::new();
        for _ in 0..100 {
            r.observe_with("lat_ms", &[1.0, 10.0, 100.0], 1.0);
        }
        ring.push(0, r.clone());
        // The next second is all slow requests.
        for _ in 0..10 {
            r.observe_with("lat_ms", &[1.0, 10.0, 100.0], 100.0);
        }
        ring.push(1_000, r.clone());
        // Cumulative p50 is still fast; the 1 s window is all slow.
        assert_eq!(
            ring.latest()
                .unwrap()
                .registry
                .histogram("lat_ms")
                .unwrap()
                .quantile(0.5),
            Some(1.0)
        );
        assert_eq!(ring.quantile("lat_ms", 1_000, 0.5), Some(100.0));
        assert_eq!(ring.quantile("lat_ms", 1_000, 0.99), Some(100.0));
    }

    #[test]
    fn ring_is_bounded_by_the_horizon() {
        let mut ring = SnapshotRing::new(5_000);
        for t in 0..100u64 {
            ring.push(t * 1_000, reg(t, &[]));
        }
        // ~5 s of slots plus the baseline slack; far fewer than 100.
        assert!(ring.len() <= 8, "len {}", ring.len());
        assert_eq!(ring.latest().unwrap().t_ms, 99_000);
        // Rates still work over the retained span.
        assert_eq!(ring.rate("serve.completed", 1_000), Some(1.0));
    }

    #[test]
    fn time_regression_resets_the_ring() {
        let mut ring = SnapshotRing::new(5_000);
        ring.push(10_000, reg(5, &[]));
        ring.push(1_000, reg(0, &[]));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.latest().unwrap().t_ms, 1_000);
    }
}
