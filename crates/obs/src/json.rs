//! Minimal JSON value model, renderer, and recursive-descent parser.
//!
//! The workspace is offline (no serde); observability events need a
//! machine-readable wire format that round-trips through plain files.
//! This module implements the small JSON subset the event schema uses:
//! objects preserve insertion order (they are association lists, not
//! maps) so rendered output is byte-deterministic.

use std::fmt::Write as _;

/// A parsed or constructed JSON value.
///
/// Numbers are `f64` (like JavaScript); integral values within the
/// exactly-representable range render without a fractional part so
/// counters and timestamps round-trip as integers. Non-finite numbers
/// render as `null` — they never appear in well-formed events.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as an order-preserving association list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if exactly integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as a single-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_num(*n, out),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Largest integer magnitude `f64` represents exactly (2^53).
const EXACT_INT: f64 = 9_007_199_254_740_992.0;

fn render_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < EXACT_INT {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'{') => parse_obj(bytes, pos),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        Some(c) => Err(format!("unexpected `{}` at byte {}", *c as char, *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("malformed literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("malformed number `{text}` at byte {start}"))
}

/// Four hex digits at `bytes[at..at + 4]`, as in a `\uXXXX` escape.
fn hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let hex = bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
    let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
    u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".into())
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hi = hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        if (0xD800..0xDC00).contains(&hi) {
                            // High surrogate: JSON encodes astral-plane
                            // characters as a `\uD8xx\uDCxx` pair.
                            if bytes.get(*pos + 1..*pos + 3) == Some(br"\u") {
                                let lo = hex4(bytes, *pos + 3)?;
                                if (0xDC00..0xE000).contains(&lo) {
                                    let code = 0x10000 + (((hi - 0xD800) << 10) | (lo - 0xDC00));
                                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                    *pos += 6;
                                } else {
                                    out.push('\u{fffd}'); // unpaired high surrogate
                                }
                            } else {
                                out.push('\u{fffd}');
                            }
                        } else {
                            // Lone low surrogates also fall to U+FFFD here.
                            out.push(char::from_u32(hi).unwrap_or('\u{fffd}'));
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (multi-byte safe).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8 in string")?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_integral_numbers_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(-3.0).render(), "-3");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn round_trips_nested_values() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("a \"quoted\"\npath".into())),
            ("xs".into(), Json::Arr(vec![Json::Num(1.0), Json::Null])),
            ("ok".into(), Json::Bool(true)),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn decodes_surrogate_pairs() {
        // U+1F600 as the \uXXXX\uXXXX pair JSON writers emit for astral chars.
        assert_eq!(
            parse(r#""\uD83D\uDE00""#).unwrap(),
            Json::Str("\u{1F600}".into())
        );
        // Mixed with surrounding text.
        assert_eq!(
            parse(r#""a\uD83D\uDE00b""#).unwrap(),
            Json::Str("a\u{1F600}b".into())
        );
        // Literal astral characters round-trip through render + parse.
        let v = Json::Str("net \u{1F600} \u{10FFFF}".into());
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn lone_surrogates_become_replacement_chars() {
        assert_eq!(parse(r#""\uD800""#).unwrap(), Json::Str("\u{fffd}".into()));
        assert_eq!(
            parse(r#""\uDC00x""#).unwrap(),
            Json::Str("\u{fffd}x".into())
        );
        // High surrogate followed by a non-surrogate escape: both survive.
        assert_eq!(
            parse(r#""\uD800A""#).unwrap(),
            Json::Str("\u{fffd}A".into())
        );
    }

    #[test]
    fn preserves_object_key_order() {
        let text = r#"{"z":1,"a":2}"#;
        assert_eq!(parse(text).unwrap().render(), text);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"abc").is_err());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""aA\n\t\\""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\n\t\\"));
    }
}
