//! Deterministic metrics registry: counters, gauges, fixed-bucket
//! histograms, and ordered numeric series.
//!
//! Everything is stored in `BTreeMap`s so exported event order is a
//! function of metric names alone, and [`Registry::merge`] folds a
//! second registry in left-to-right (like `par_fold` merges chunks) so
//! aggregation is bitwise-reproducible regardless of thread count.

use std::collections::BTreeMap;

use crate::event::Event;

/// Default bucket upper bounds (microseconds) for latency histograms,
/// spanning 10 µs to 5 s on a coarse exponential grid.
pub const TIME_US_BOUNDS: [f64; 12] = [
    10.0,
    50.0,
    100.0,
    500.0,
    1_000.0,
    5_000.0,
    10_000.0,
    50_000.0,
    100_000.0,
    500_000.0,
    1_000_000.0,
    5_000_000.0,
];

/// Bucket upper bounds (milliseconds) for request-latency histograms,
/// spanning 250 µs to 5 s — the serving-path mirror of
/// [`TIME_US_BOUNDS`].
pub const LATENCY_MS_BOUNDS: [f64; 14] = [
    0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1_000.0, 2_000.0, 5_000.0,
];

/// Bucket upper bounds for queue-depth histograms (powers of two up to a
/// default admission queue's capacity).
pub const QUEUE_DEPTH_BOUNDS: [f64; 8] = [0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// A fixed-bucket histogram.
///
/// Bucket `i` counts observations `v <= bounds[i]` (upper-bound
/// inclusive, first match wins); one extra overflow bucket counts
/// everything above the last bound. Bounds are fixed at first
/// observation, so two histograms with the same name always merge.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates an empty histogram with the given ascending upper bounds.
    pub fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`. Both must share bucket bounds; the
    /// caller (the registry) guarantees this by keying on metric name.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds must match");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; last is overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Arithmetic mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`, clamped) as a bucket upper
    /// bound, or `None` when the histogram is empty.
    ///
    /// The estimate is the upper bound of the bucket holding the
    /// observation of rank `ceil(q × count)` (rank at least 1), walking
    /// cumulative counts left to right; the overflow bucket reports
    /// [`Histogram::max`]. Because buckets are upper-bound inclusive, a
    /// distribution whose values all sit exactly on bucket bounds is
    /// reported *exactly*, and the estimate is monotone both in `q` and
    /// under [`Histogram::merge`] (the merged quantile never leaves the
    /// interval spanned by the operands' quantiles).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                });
            }
        }
        Some(self.max)
    }

    /// The bucketwise difference `self − earlier` between two cumulative
    /// snapshots of the *same* histogram — the sliding-window view a
    /// telemetry scraper needs. Returns `None` when the bounds differ
    /// (not snapshots of one histogram) or when any bucket of `earlier`
    /// exceeds `self`'s (a registry reset happened in between).
    ///
    /// Window `min`/`max` cannot be recovered from cumulative snapshots,
    /// so the delta conservatively carries the cumulative extremes.
    pub fn delta_since(&self, earlier: &Histogram) -> Option<Histogram> {
        if self.bounds != earlier.bounds || self.count < earlier.count {
            return None;
        }
        let mut counts = Vec::with_capacity(self.counts.len());
        for (c, e) in self.counts.iter().zip(&earlier.counts) {
            counts.push(c.checked_sub(*e)?);
        }
        Some(Histogram {
            bounds: self.bounds.clone(),
            counts,
            count: self.count - earlier.count,
            sum: self.sum - earlier.sum,
            min: self.min,
            max: self.max,
        })
    }
}

/// A registry of named metrics with deterministic export order.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
    series: BTreeMap<String, Vec<f64>>,
}

impl Registry {
    /// Creates an empty registry.
    pub const fn new() -> Self {
        Registry {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            series: BTreeMap::new(),
        }
    }

    /// Adds `n` to the monotonic counter `name`.
    pub fn counter(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Sets the gauge `name` to `v` (last write wins).
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Records `v` into histogram `name`, creating it with `bounds` on
    /// first use (later calls reuse the original bounds).
    pub fn observe_with(&mut self, name: &str, bounds: &[f64], v: f64) {
        self.hists
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .record(v);
    }

    /// Records `v` into histogram `name` with [`TIME_US_BOUNDS`].
    pub fn observe(&mut self, name: &str, v: f64) {
        self.observe_with(name, &TIME_US_BOUNDS, v);
    }

    /// Records every value in `values` into histogram `name` (created
    /// with [`TIME_US_BOUNDS`] on first use) after a single map lookup —
    /// the batch form of [`Registry::observe`] for hot paths that record
    /// one value per chunk.
    pub fn observe_all(&mut self, name: &str, values: impl IntoIterator<Item = f64>) {
        let h = self
            .hists
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(&TIME_US_BOUNDS));
        for v in values {
            h.record(v);
        }
    }

    /// Appends `v` to the ordered series `name`.
    pub fn series_push(&mut self, name: &str, v: f64) {
        self.series.entry(name.to_string()).or_default().push(v);
    }

    /// Reads back a counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Reads back a gauge.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Reads back a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Reads back a series.
    pub fn series(&self, name: &str) -> Option<&[f64]> {
        self.series.get(name).map(Vec::as_slice)
    }

    /// True when no metric of any kind has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.series.is_empty()
    }

    /// Folds `other` into `self`: counters add, gauges take `other`'s
    /// value (last write wins), histograms merge, series concatenate.
    /// Merging in chunk order keeps aggregation order-deterministic.
    pub fn merge(&mut self, other: &Registry) {
        for (name, n) in &other.counters {
            self.counter(name, *n);
        }
        for (name, v) in &other.gauges {
            self.gauge(name, *v);
        }
        for (name, h) in &other.hists {
            self.hists
                .entry(name.clone())
                .and_modify(|mine| mine.merge(h))
                .or_insert_with(|| h.clone());
        }
        for (name, vs) in &other.series {
            self.series
                .entry(name.clone())
                .or_default()
                .extend_from_slice(vs);
        }
    }

    /// Exports every metric as events, ordered counters → gauges →
    /// histograms → series, each alphabetically by name.
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for (name, n) in &self.counters {
            out.push(Event::Counter {
                name: name.clone(),
                value: *n,
            });
        }
        for (name, v) in &self.gauges {
            out.push(Event::Gauge {
                name: name.clone(),
                value: *v,
            });
        }
        for (name, h) in &self.hists {
            out.push(Event::Hist {
                name: name.clone(),
                bounds: h.bounds.clone(),
                counts: h.counts.clone(),
                count: h.count,
                sum: h.sum,
                min: h.min,
                max: h.max,
            });
        }
        for (name, vs) in &self.series {
            out.push(Event::Series {
                name: name.clone(),
                values: vs.clone(),
            });
        }
        out
    }

    /// Drops every recorded metric.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.hists.clear();
        self.series.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_upper_bound_inclusive() {
        let mut h = Histogram::new(&[10.0, 100.0]);
        h.record(10.0); // exactly on the first bound → bucket 0
        h.record(10.5); // just above → bucket 1
        h.record(100.0); // exactly on the last bound → bucket 1
        h.record(101.0); // above all bounds → overflow
        assert_eq!(h.counts(), &[1, 2, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 10.0);
        assert_eq!(h.max(), 101.0);
    }

    #[test]
    fn histogram_merge_adds_bucketwise() {
        let mut a = Histogram::new(&[1.0]);
        a.record(0.5);
        let mut b = Histogram::new(&[1.0]);
        b.record(2.0);
        b.record(0.25);
        a.merge(&b);
        assert_eq!(a.counts(), &[2, 1]);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 0.25);
        assert_eq!(a.max(), 2.0);
    }

    #[test]
    fn quantile_is_exact_on_bucket_bounds_and_reports_overflow_max() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [1.0, 1.0, 2.0, 4.0] {
            h.record(v);
        }
        // Ranks: p25 → 1st obs (1.0), p50 → 2nd (1.0), p75 → 3rd (2.0),
        // p100 → 4th (4.0). All values sit on bounds, so all are exact.
        assert_eq!(h.quantile(0.25), Some(1.0));
        assert_eq!(h.quantile(0.50), Some(1.0));
        assert_eq!(h.quantile(0.75), Some(2.0));
        assert_eq!(h.quantile(1.0), Some(4.0));
        // q = 0 clamps to rank 1.
        assert_eq!(h.quantile(0.0), Some(1.0));
        h.record(100.0); // overflow bucket → reported as max
        assert_eq!(h.quantile(1.0), Some(100.0));
        assert_eq!(Histogram::new(&[1.0]).quantile(0.5), None);
    }

    #[test]
    fn delta_since_recovers_the_window_histogram() {
        let mut early = Histogram::new(&[1.0, 2.0]);
        early.record(0.5);
        let mut late = early.clone();
        late.record(1.5);
        late.record(9.0);
        let win = late.delta_since(&early).expect("same bounds");
        assert_eq!(win.counts(), &[0, 1, 1]);
        assert_eq!(win.count(), 2);
        assert!((win.sum() - 10.5).abs() < 1e-9);
        // Mismatched bounds or a reset in between yield None.
        assert!(late.delta_since(&Histogram::new(&[3.0])).is_none());
        assert!(early.delta_since(&late).is_none());
    }

    #[test]
    fn registry_merge_is_order_deterministic_for_counters_and_hists() {
        let mut chunk_a = Registry::new();
        chunk_a.counter("x", 2);
        chunk_a.observe_with("lat", &[1.0], 0.5);
        let mut chunk_b = Registry::new();
        chunk_b.counter("x", 3);
        chunk_b.observe_with("lat", &[1.0], 4.0);

        let mut ab = Registry::new();
        ab.merge(&chunk_a);
        ab.merge(&chunk_b);
        let mut ba = Registry::new();
        ba.merge(&chunk_b);
        ba.merge(&chunk_a);

        assert_eq!(ab.counter_value("x"), Some(5));
        assert_eq!(ab.counter_value("x"), ba.counter_value("x"));
        assert_eq!(ab.histogram("lat"), ba.histogram("lat"));
    }

    #[test]
    fn series_concatenate_in_merge_order() {
        let mut a = Registry::new();
        a.series_push("loss", 1.0);
        let mut b = Registry::new();
        b.series_push("loss", 0.5);
        a.merge(&b);
        assert_eq!(a.series("loss"), Some(&[1.0, 0.5][..]));
    }

    #[test]
    fn events_are_sorted_by_kind_then_name() {
        let mut r = Registry::new();
        r.series_push("s", 1.0);
        r.gauge("g", 2.0);
        r.counter("z", 1);
        r.counter("a", 1);
        let kinds: Vec<_> = r
            .events()
            .iter()
            .map(|e| match e {
                Event::Counter { name, .. } => format!("c:{name}"),
                Event::Gauge { name, .. } => format!("g:{name}"),
                Event::Series { name, .. } => format!("s:{name}"),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kinds, ["c:a", "c:z", "g:g", "s:s"]);
    }
}
