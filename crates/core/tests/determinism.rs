//! Thread-count determinism for dataset generation: the wave-parallel
//! `generate_samples` must emit exactly the same sample batch at any
//! thread count (the RNG stream is drawn serially; only the fault
//! simulation and back-trace fan out).

use m3d_fault_localization::{generate_samples, InjectionKind, TestEnv};
use m3d_netlist::generate::Benchmark;
use m3d_part::DesignConfig;

#[test]
fn scoap_feature_samples_are_deterministic_and_wider() {
    let env = TestEnv::build(Benchmark::Aes, DesignConfig::Syn1, Some(300)).with_scoap_features();
    let fsim = env.fault_sim();
    let kind = InjectionKind::Single;
    let serial = m3d_par::with_threads(1, || {
        generate_samples(&env, &fsim, m3d_dft::ObsMode::Bypass, kind, 8, 17)
    });
    let parallel = m3d_par::with_threads(4, || {
        generate_samples(&env, &fsim, m3d_dft::ObsMode::Bypass, kind, 8, 17)
    });
    assert_eq!(serial.len(), parallel.len());
    let mut saw_subgraph = false;
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.injected, b.injected);
        assert_eq!(a.log, b.log);
        let (Some(sa), Some(sb)) = (&a.subgraph, &b.subgraph) else {
            assert_eq!(a.subgraph.is_some(), b.subgraph.is_some());
            continue;
        };
        saw_subgraph = true;
        assert_eq!(
            sa.data.features.cols(),
            m3d_hetgraph::FEATURE_DIM + m3d_hetgraph::SCOAP_FEATURE_DIM
        );
        assert_eq!(sa.sites, sb.sites);
        for r in 0..sa.data.features.rows() {
            for (x, y) in sa.data.features.row(r).iter().zip(sb.data.features.row(r)) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "SCOAP features must be bitwise equal"
                );
            }
        }
    }
    assert!(saw_subgraph, "at least one sample back-traces");
}

#[test]
fn sample_generation_is_thread_count_independent() {
    let env = TestEnv::build(Benchmark::Aes, DesignConfig::Syn1, Some(300));
    let fsim = env.fault_sim();
    for kind in [
        InjectionKind::Single,
        InjectionKind::MivOnly,
        InjectionKind::MultiSameTier,
    ] {
        let serial = m3d_par::with_threads(1, || {
            generate_samples(&env, &fsim, m3d_dft::ObsMode::Compacted, kind, 10, 42)
        });
        let parallel = m3d_par::with_threads(8, || {
            generate_samples(&env, &fsim, m3d_dft::ObsMode::Compacted, kind, 10, 42)
        });
        assert_eq!(serial.len(), parallel.len(), "{kind:?}: batch size differs");
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.injected, b.injected, "{kind:?}: injected faults differ");
            assert_eq!(a.log, b.log, "{kind:?}: failure logs differ");
            assert_eq!(a.faulty_tier, b.faulty_tier, "{kind:?}: tier label differs");
            assert_eq!(a.miv_truth, b.miv_truth, "{kind:?}: MIV truth differs");
            assert_eq!(
                a.subgraph.is_some(),
                b.subgraph.is_some(),
                "{kind:?}: sub-graph presence differs"
            );
        }
    }
}
