//! Thread-count determinism for dataset generation: the wave-parallel
//! `generate_samples` must emit exactly the same sample batch at any
//! thread count (the RNG stream is drawn serially; only the fault
//! simulation and back-trace fan out).

use m3d_fault_localization::{generate_samples, InjectionKind, TestEnv};
use m3d_netlist::generate::Benchmark;
use m3d_part::DesignConfig;

#[test]
fn sample_generation_is_thread_count_independent() {
    let env = TestEnv::build(Benchmark::Aes, DesignConfig::Syn1, Some(300));
    let fsim = env.fault_sim();
    for kind in [
        InjectionKind::Single,
        InjectionKind::MivOnly,
        InjectionKind::MultiSameTier,
    ] {
        let serial = m3d_par::with_threads(1, || {
            generate_samples(&env, &fsim, m3d_dft::ObsMode::Compacted, kind, 10, 42)
        });
        let parallel = m3d_par::with_threads(8, || {
            generate_samples(&env, &fsim, m3d_dft::ObsMode::Compacted, kind, 10, 42)
        });
        assert_eq!(serial.len(), parallel.len(), "{kind:?}: batch size differs");
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.injected, b.injected, "{kind:?}: injected faults differ");
            assert_eq!(a.log, b.log, "{kind:?}: failure logs differ");
            assert_eq!(a.faulty_tier, b.faulty_tier, "{kind:?}: tier label differs");
            assert_eq!(a.miv_truth, b.miv_truth, "{kind:?}: MIV truth differs");
            assert_eq!(
                a.subgraph.is_some(),
                b.subgraph.is_some(),
                "{kind:?}: sub-graph presence differs"
            );
        }
    }
}
