//! Transferable GNN-based delay-fault localization for monolithic 3D ICs —
//! the paper's primary contribution.
//!
//! This crate ties the substrates together into the framework of Fig. 1:
//!
//! * [`TestEnv`] — design + scan + ATPG patterns + heterogeneous graph;
//! * [`generate_samples`] — the Fig. 4 data-generation flow (fault
//!   injection → logic simulation → failure log → back-traced sub-graph);
//! * [`TierPredictor`] / [`MivPinpointer`] — the two GNN models;
//! * [`PruneClassifier`] — the transfer-learned prune/reorder Classifier
//!   with dummy-buffer oversampling;
//! * [`FaultLocalizer`] — the trained framework with its `T_p` threshold;
//! * [`prune_and_reorder`] — the candidate pruning/reordering policy with
//!   MIV prioritization and the backup dictionary;
//! * [`evaluate_methods`] — the Tables V–VIII evaluation harness
//!   (ATPG vs baseline \[11\] vs GNN vs GNN+\[11\], plus tier localization);
//! * [`RegionMap`] / [`RegionPredictor`] — the paper's 2D extension:
//!   region-level fault localization (Section III-C).
//!
//! # Examples
//!
//! ```no_run
//! use m3d_dft::ObsMode;
//! use m3d_fault_localization::{
//!     evaluate_methods, generate_samples, FaultLocalizer, FrameworkConfig,
//!     InjectionKind, TestEnv,
//! };
//! use m3d_netlist::generate::Benchmark;
//! use m3d_part::DesignConfig;
//!
//! let env = TestEnv::build(Benchmark::Tate, DesignConfig::Syn1, None);
//! let fsim = env.fault_sim();
//! let train = generate_samples(&env, &fsim, ObsMode::Bypass, InjectionKind::Single, 240, 1);
//! let test = generate_samples(&env, &fsim, ObsMode::Bypass, InjectionKind::Single, 60, 2);
//! let refs: Vec<&_> = train.iter().collect();
//! let fw = FaultLocalizer::train(&refs, &FrameworkConfig::default());
//! let eval = evaluate_methods(&env, &fsim, &fw, ObsMode::Bypass, &test);
//! println!("GNN accuracy {:.1}%", eval.gnn.accuracy * 100.0);
//! ```

#![warn(missing_docs)]

mod classifier;
mod env;
mod eval;
mod framework;
mod models;
mod policy;
mod region;
mod sample;

pub use classifier::{PruneClassifier, CLASS_PRUNE, CLASS_REORDER};
pub use env::TestEnv;
pub use eval::{diagnose_all, evaluate_methods, parallel_map, MethodEval};
pub use framework::{FaultLocalizer, FrameworkConfig};
pub use models::{MivPinpointer, ModelConfig, TierPredictor};
pub use policy::{prune_and_reorder, PolicyAction, PolicyOutcome};
pub use region::{RegionMap, RegionPredictor};
pub use sample::{generate_samples, try_generate_samples, DiagSample, InjectionKind};
