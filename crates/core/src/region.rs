//! Region-level fault localization for 2D designs (Section III-C).
//!
//! The paper notes its models are not restricted to M3D: *"If 2D circuits
//! are partitioned into distinct regions, Tier-predictor can be utilized
//! to perform region-level fault localization"*, with no change to feature
//! extraction or model construction (the graph-representation vector simply
//! grows to the region count). This module provides that capability:
//!
//! * [`RegionMap`] — a k-way spatial partition of a netlist built by
//!   recursive min-cut bisection,
//! * [`RegionPredictor`] — a k-class GCN graph classifier over the same
//!   Table II sub-graph features, with the tier-location column replaced
//!   by the normalized region index.

use m3d_gnn::{GcnClassifier, GraphData};
use m3d_hetgraph::{SubGraph, FEATURE_DIM};
use m3d_netlist::{GateId, Netlist, SitePos};
use m3d_part::{M3dDesign, PartitionAlgo, Tier};

use crate::models::ModelConfig;
use crate::sample::DiagSample;

/// Index of the location feature inside the Table II feature vector
/// (tier for M3D, region for 2D designs).
const LOCATION_FEATURE: usize = 3;

/// A k-way region assignment over the gates of a netlist.
///
/// Built by recursive min-cut bisection, so regions are balanced and
/// connectivity-coherent — the 2D analogue of tier partitioning.
///
/// # Examples
///
/// ```
/// use m3d_fault_localization::RegionMap;
/// use m3d_netlist::generate::{Benchmark, GenParams};
///
/// let nl = Benchmark::Aes.generate(&GenParams::small(1));
/// let regions = RegionMap::build(&nl, 4, 1);
/// assert_eq!(regions.region_count(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct RegionMap {
    region: Vec<u8>,
    k: usize,
}

impl RegionMap {
    /// Partitions `netlist` into `k` regions (`k` rounded up to a power of
    /// two internally; the reported count is the requested `k`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > 64`.
    pub fn build(netlist: &Netlist, k: usize, seed: u64) -> Self {
        assert!(k > 0 && k <= 64, "1..=64 regions supported");
        let mut region = vec![0u8; netlist.gate_count()];
        // Recursive bisection: each level splits every current region in
        // two with the min-cut partitioner until k regions exist.
        let levels = (usize::BITS - (k - 1).leading_zeros()) as usize;
        for level in 0..levels {
            let part = PartitionAlgo::MinCut.partition(netlist, seed ^ (level as u64) << 8);
            for (i, r) in region.iter_mut().enumerate() {
                let half = match part.tier(GateId::new(i)) {
                    Tier::Top => 0u8,
                    Tier::Bottom => 1u8,
                };
                *r = (*r << 1) | half;
            }
        }
        // Fold any excess power-of-two regions back into range.
        for r in &mut region {
            *r %= k as u8;
        }
        RegionMap { region, k }
    }

    /// Number of regions.
    #[inline]
    pub fn region_count(&self) -> usize {
        self.k
    }

    /// The region of a gate.
    #[inline]
    pub fn region_of(&self, gate: GateId) -> u8 {
        self.region[gate.index()]
    }

    /// The region of a fault site (MIV sites take their driver's region —
    /// a 2D design has no true MIVs, but partitioned netlists may).
    pub fn region_of_site(&self, design: &M3dDesign, site: m3d_netlist::SiteId) -> u8 {
        match design.sites().pos(site) {
            SitePos::Output(g) | SitePos::Input(g, _) => self.region_of(g),
            SitePos::Miv(m) => {
                let net = design.mivs()[m as usize].net;
                self.region_of(design.netlist().net(net).driver())
            }
        }
    }

    /// Rewrites a sub-graph's location feature column from tier to the
    /// normalized region index, producing the input the region model sees.
    pub fn relabel(&self, design: &M3dDesign, subgraph: &SubGraph) -> GraphData {
        let mut feats = subgraph.data.features.clone();
        for (node, &site) in subgraph.sites.iter().enumerate() {
            let r = self.region_of_site(design, site);
            feats[(node, LOCATION_FEATURE)] = f32::from(r) / self.k.max(1) as f32;
        }
        GraphData::new(subgraph.data.graph.clone(), feats)
    }

    /// Per-region gate counts (balance check).
    pub fn histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.k];
        for &r in &self.region {
            h[r as usize] += 1;
        }
        h
    }
}

/// A k-class region classifier: the Tier-predictor architecture with the
/// output dimension extended to the region count.
#[derive(Clone, Debug)]
pub struct RegionPredictor {
    model: GcnClassifier,
    regions: usize,
}

impl RegionPredictor {
    /// Trains on diagnosis samples labelled by the ground-truth fault's
    /// region. Samples without a sub-graph are skipped.
    pub fn train(
        design: &M3dDesign,
        map: &RegionMap,
        samples: &[&DiagSample],
        cfg: &ModelConfig,
    ) -> Self {
        let data: Vec<(GraphData, usize)> = samples
            .iter()
            .filter_map(|s| {
                let sg = s.subgraph.as_ref()?;
                let fault = s.injected.first()?;
                let label = map.region_of_site(design, fault.site) as usize;
                Some((map.relabel(design, sg), label))
            })
            .collect();
        let refs: Vec<(&GraphData, usize)> = data.iter().map(|(d, l)| (d, *l)).collect();
        let dim = refs.first().map_or(FEATURE_DIM, |(d, _)| d.features.cols());
        let mut model = GcnClassifier::new(
            dim,
            cfg.hidden,
            cfg.layers,
            map.region_count(),
            cfg.seed.wrapping_add(4000),
        );
        model.fit(&refs, &cfg.train);
        RegionPredictor {
            model,
            regions: map.region_count(),
        }
    }

    /// Number of output regions.
    pub fn region_count(&self) -> usize {
        self.regions
    }

    /// Per-region probabilities for a (relabelled) sub-graph.
    pub fn predict_proba(
        &self,
        design: &M3dDesign,
        map: &RegionMap,
        subgraph: &SubGraph,
    ) -> Vec<f32> {
        self.model.predict_proba(&map.relabel(design, subgraph))
    }

    /// The most probable faulty region.
    pub fn predict(&self, design: &M3dDesign, map: &RegionMap, subgraph: &SubGraph) -> u8 {
        self.model.predict(&map.relabel(design, subgraph)) as u8
    }

    /// Region-localization accuracy over labelled samples.
    pub fn accuracy(&self, design: &M3dDesign, map: &RegionMap, samples: &[&DiagSample]) -> f64 {
        let mut total = 0usize;
        let mut hits = 0usize;
        for s in samples {
            let (Some(sg), Some(fault)) = (&s.subgraph, s.injected.first()) else {
                continue;
            };
            total += 1;
            let truth = map.region_of_site(design, fault.site);
            if self.predict(design, map, sg) == truth {
                hits += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::TestEnv;
    use crate::sample::{generate_samples, InjectionKind};
    use m3d_dft::ObsMode;
    use m3d_gnn::TrainConfig;
    use m3d_netlist::generate::Benchmark;
    use m3d_part::DesignConfig;

    #[test]
    fn region_map_is_balanced_and_total() {
        let env = TestEnv::build(Benchmark::Aes, DesignConfig::Syn1, Some(400));
        for k in [2usize, 3, 4, 8] {
            let map = RegionMap::build(env.design.netlist(), k, 7);
            let hist = map.histogram();
            assert_eq!(hist.len(), k);
            assert_eq!(
                hist.iter().sum::<usize>(),
                env.design.netlist().gate_count()
            );
            assert!(
                hist.iter().all(|&c| c > 0),
                "k={k}: every region populated, got {hist:?}"
            );
        }
    }

    #[test]
    fn region_predictor_beats_chance_on_four_regions() {
        let env = TestEnv::build(Benchmark::Aes, DesignConfig::Syn1, Some(400));
        let map = RegionMap::build(env.design.netlist(), 4, 3);
        let fsim = env.fault_sim();
        let samples = generate_samples(&env, &fsim, ObsMode::Bypass, InjectionKind::Single, 120, 5);
        let refs: Vec<&DiagSample> = samples.iter().collect();
        let (train, test) = refs.split_at(90);
        let cfg = ModelConfig {
            train: TrainConfig {
                epochs: 40,
                ..TrainConfig::default()
            },
            ..ModelConfig::default()
        };
        let model = RegionPredictor::train(&env.design, &map, train, &cfg);
        assert_eq!(model.region_count(), 4);
        let acc = model.accuracy(&env.design, &map, test);
        assert!(
            acc > 0.45,
            "4-region accuracy {acc} must beat 0.25 chance clearly"
        );
        // Probabilities are a distribution over regions.
        let sg = samples
            .iter()
            .find_map(|s| s.subgraph.as_ref())
            .expect("some subgraph");
        let p = model.predict_proba(&env.design, &map, sg);
        assert_eq!(p.len(), 4);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn relabel_touches_only_the_location_column() {
        let env = TestEnv::build(Benchmark::Aes, DesignConfig::Syn1, Some(400));
        let map = RegionMap::build(env.design.netlist(), 4, 3);
        let fsim = env.fault_sim();
        let samples = generate_samples(&env, &fsim, ObsMode::Bypass, InjectionKind::Single, 3, 9);
        let sg = samples
            .iter()
            .find_map(|s| s.subgraph.as_ref())
            .expect("subgraph");
        let relabelled = map.relabel(&env.design, sg);
        for r in 0..sg.data.features.rows() {
            for c in 0..FEATURE_DIM {
                if c == LOCATION_FEATURE {
                    assert!((0.0..1.0).contains(&relabelled.features[(r, c)]));
                } else {
                    assert_eq!(relabelled.features[(r, c)], sg.data.features[(r, c)]);
                }
            }
        }
    }
}
