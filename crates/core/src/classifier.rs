//! The GNN-based Classifier (Section V-C).
//!
//! Among *Predicted Positive* samples (Tier-predictor confidence above
//! `T_p`), the Classifier separates True Positives (safe to prune) from
//! False Positives (pruning would delete the ground truth). It reuses the
//! Tier-predictor's pre-trained hidden layers with a fresh classification
//! head (network-based deep transfer learning), and balances its heavily
//! skewed training set by synthesizing minority samples with dummy-buffer
//! insertion.

use m3d_gnn::{GcnClassifier, GraphData};
use m3d_hetgraph::SubGraph;

use crate::models::{ModelConfig, TierPredictor};
use crate::sample::DiagSample;

/// Classifier decisions: prune the fault-free tier, or only reorder.
pub const CLASS_REORDER: usize = 0;
/// See [`CLASS_REORDER`].
pub const CLASS_PRUNE: usize = 1;

/// The transfer-learned prune/reorder classifier.
#[derive(Clone, Debug)]
pub struct PruneClassifier {
    model: GcnClassifier,
}

impl PruneClassifier {
    /// Trains on the Predicted Positive subset of `samples`.
    ///
    /// Returns `None` when no sample clears the threshold (degenerate
    /// training runs) — the policy then falls back to reordering only.
    pub fn train(
        tier: &TierPredictor,
        samples: &[&DiagSample],
        tp_threshold: f64,
        cfg: &ModelConfig,
    ) -> Option<Self> {
        // Collect Predicted Positive samples and their prune-safety label.
        let mut real: Vec<(&SubGraph, usize)> = Vec::new();
        for s in samples {
            if !s.tier_trainable() {
                continue;
            }
            let sg = s.subgraph.as_ref().expect("tier_trainable");
            let (pred, p) = tier.predict(sg);
            if p <= tp_threshold {
                continue;
            }
            let label = if Some(pred) == s.faulty_tier {
                CLASS_PRUNE
            } else {
                CLASS_REORDER
            };
            real.push((sg, label));
        }
        if real.is_empty() {
            return None;
        }

        // Oversample the minority class with dummy-buffer synthesis.
        let prune_n = real.iter().filter(|&&(_, l)| l == CLASS_PRUNE).count();
        let reorder_n = real.len() - prune_n;
        let (minority, majority_n) = if prune_n < reorder_n {
            (CLASS_PRUNE, reorder_n)
        } else {
            (CLASS_REORDER, prune_n)
        };
        let minority_samples: Vec<&SubGraph> = real
            .iter()
            .filter(|&&(_, l)| l == minority)
            .map(|&(sg, _)| sg)
            .collect();
        let mut synthetic: Vec<SubGraph> = Vec::new();
        if !minority_samples.is_empty() {
            let mut deficit = majority_n - minority_samples.len();
            // Append consecutive buffers node by node, sample by sample,
            // exactly as Section V-C describes, until balanced.
            let mut round = 0usize;
            while deficit > 0 && round < 64 {
                for &sg in &minority_samples {
                    if deficit == 0 {
                        break;
                    }
                    let node = round % sg.node_count().max(1);
                    synthetic.push(sg.with_dummy_buffer(node));
                    deficit -= 1;
                }
                round += 1;
            }
        }

        let mut data: Vec<(&GraphData, usize)> =
            real.iter().map(|&(sg, l)| (&sg.data, l)).collect();
        data.extend(synthetic.iter().map(|sg| (&sg.data, minority)));

        let mut model = GcnClassifier::transfer_from(tier.model(), 2, cfg.seed.wrapping_add(2000));
        model.fit(&data, &cfg.train);
        Some(PruneClassifier { model })
    }

    /// Whether pruning is predicted safe for this sub-graph.
    pub fn should_prune(&self, subgraph: &SubGraph) -> bool {
        self.model.predict(&subgraph.data) == CLASS_PRUNE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::TestEnv;
    use crate::sample::{generate_samples, InjectionKind};
    use m3d_dft::ObsMode;
    use m3d_gnn::TrainConfig;
    use m3d_netlist::generate::Benchmark;
    use m3d_part::DesignConfig;

    #[test]
    fn classifier_trains_on_predicted_positive_subset() {
        let env = TestEnv::build(Benchmark::Aes, DesignConfig::Syn1, Some(300));
        let fsim = env.fault_sim();
        let samples = generate_samples(&env, &fsim, ObsMode::Bypass, InjectionKind::Single, 50, 4);
        let refs: Vec<&DiagSample> = samples.iter().collect();
        let cfg = ModelConfig {
            train: TrainConfig {
                epochs: 15,
                ..TrainConfig::default()
            },
            ..ModelConfig::default()
        };
        let tier = TierPredictor::train(&refs, &cfg);
        // Threshold 0 admits every sample, so training must succeed.
        let clf = PruneClassifier::train(&tier, &refs, 0.0, &cfg)
            .expect("non-empty predicted-positive set");
        // The classifier must produce a decision for any sub-graph.
        let sg = samples
            .iter()
            .find_map(|s| s.subgraph.as_ref())
            .expect("some subgraph");
        let _ = clf.should_prune(sg);
        // An impossible threshold yields no training set.
        assert!(PruneClassifier::train(&tier, &refs, 1.1, &cfg).is_none());
    }
}
