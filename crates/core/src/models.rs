//! The two GNN models of the framework: Tier-predictor and MIV-pinpointer.

use m3d_gnn::{GcnClassifier, GraphData, NodeClassifier, PrCurve, ScoredSample, TrainConfig};
use m3d_hetgraph::{SubGraph, FEATURE_DIM};
use m3d_part::Tier;

use crate::sample::DiagSample;

/// GNN architecture knobs shared by the framework models.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelConfig {
    /// Hidden width of the GCN layers.
    pub hidden: usize,
    /// Number of GCN layers.
    pub layers: usize,
    /// Training hyper-parameters.
    pub train: TrainConfig,
    /// Initialization seed.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            hidden: 16,
            layers: 2,
            train: TrainConfig::default(),
            seed: 7,
        }
    }
}

/// The Tier-predictor: graph classification producing `[p_top, p_bottom]`.
///
/// # Examples
///
/// See [`FaultLocalizer`](crate::FaultLocalizer) for end-to-end usage.
#[derive(Clone, Debug)]
pub struct TierPredictor {
    model: GcnClassifier,
}

impl TierPredictor {
    /// Trains on the tier-labelled samples of `samples` (others skipped).
    pub fn train(samples: &[&DiagSample], cfg: &ModelConfig) -> Self {
        let data: Vec<(&GraphData, usize)> = samples
            .iter()
            .filter(|s| s.tier_trainable())
            .map(|s| {
                (
                    &s.subgraph.as_ref().expect("tier_trainable").data,
                    s.faulty_tier.expect("tier_trainable").index(),
                )
            })
            .collect();
        // The input width follows the data: 13 Table II columns, or 16
        // when the sub-graphs carry the SCOAP extension.
        let dim = data.first().map_or(FEATURE_DIM, |(d, _)| d.features.cols());
        let mut model = GcnClassifier::new(dim, cfg.hidden, cfg.layers, 2, cfg.seed);
        model.fit(&data, &cfg.train);
        TierPredictor { model }
    }

    /// Mutable access to the underlying graph classifier, for
    /// checkpointing and the fault-injection harness.
    pub fn model_mut(&mut self) -> &mut GcnClassifier {
        &mut self.model
    }

    /// Wraps an existing classifier (e.g. one whose tensors were restored
    /// from a CRC-verified checkpoint by the `m3d-serve` artifact cache).
    pub fn from_model(model: GcnClassifier) -> Self {
        TierPredictor { model }
    }

    /// `[p_top, p_bottom]` for a sub-graph.
    pub fn predict_proba(&self, subgraph: &SubGraph) -> [f64; 2] {
        let p = self.model.predict_proba(&subgraph.data);
        [f64::from(p[0]), f64::from(p[1])]
    }

    /// The predicted faulty tier and its probability (the confidence score
    /// compared against `T_p`).
    pub fn predict(&self, subgraph: &SubGraph) -> (Tier, f64) {
        let p = self.predict_proba(subgraph);
        if p[0] >= p[1] {
            (Tier::Top, p[0])
        } else {
            (Tier::Bottom, p[1])
        }
    }

    /// Accuracy over tier-labelled samples.
    pub fn accuracy(&self, samples: &[&DiagSample]) -> f64 {
        let mut total = 0usize;
        let mut hits = 0usize;
        for s in samples {
            if !s.tier_trainable() {
                continue;
            }
            total += 1;
            let (tier, _) = self.predict(s.subgraph.as_ref().expect("trainable"));
            if Some(tier) == s.faulty_tier {
                hits += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// The PR curve of confidence scores over labelled samples (used to
    /// derive `T_p` during training).
    pub fn pr_curve(&self, samples: &[&DiagSample]) -> PrCurve {
        let scored: Vec<ScoredSample> = samples
            .iter()
            .filter(|s| s.tier_trainable())
            .map(|s| {
                let (tier, p) = self.predict(s.subgraph.as_ref().expect("trainable"));
                ScoredSample {
                    score: p,
                    correct: Some(tier) == s.faulty_tier,
                }
            })
            .collect();
        PrCurve::from_samples(&scored)
    }

    /// The underlying classifier (transfer-learning source for the
    /// GNN-based Classifier).
    pub fn model(&self) -> &GcnClassifier {
        &self.model
    }

    /// Pooled pre-head embedding of a sub-graph (for Fig. 5's PCA).
    pub fn embedding(&self, subgraph: &SubGraph) -> Vec<f32> {
        self.model.pooled_embedding(&subgraph.data)
    }
}

/// The MIV-pinpointer: node classification over the MIV nodes of a
/// sub-graph.
#[derive(Clone, Debug)]
pub struct MivPinpointer {
    model: NodeClassifier,
    /// Decision threshold on the per-node fault probability.
    pub threshold: f32,
}

impl MivPinpointer {
    /// Trains on every sample with a sub-graph containing MIV nodes; node
    /// labels mark the injected MIVs. Positive nodes are up-weighted to
    /// counter the extreme class imbalance.
    pub fn train(samples: &[&DiagSample], cfg: &ModelConfig) -> Self {
        let mut labelled: Vec<(&GraphData, Vec<(usize, bool)>)> = Vec::new();
        let mut pos = 0usize;
        let mut neg = 0usize;
        for s in samples {
            let Some(sg) = &s.subgraph else { continue };
            if sg.miv_nodes.is_empty() {
                continue;
            }
            let labels: Vec<(usize, bool)> = sg
                .miv_nodes
                .iter()
                .map(|&(node, m)| {
                    let is_faulty = s.miv_truth.contains(&m);
                    if is_faulty {
                        pos += 1;
                    } else {
                        neg += 1;
                    }
                    (node, is_faulty)
                })
                .collect();
            labelled.push((&sg.data, labels));
        }
        let pos_weight = if pos == 0 {
            1.0
        } else {
            (neg as f32 / pos as f32).clamp(1.0, 50.0)
        };
        let refs: Vec<(&GraphData, &[(usize, bool)])> =
            labelled.iter().map(|(d, l)| (*d, l.as_slice())).collect();
        let dim = refs.first().map_or(FEATURE_DIM, |(d, _)| d.features.cols());
        let mut model =
            NodeClassifier::new(dim, cfg.hidden, cfg.layers, cfg.seed.wrapping_add(1000));
        model.fit(&refs, pos_weight, &cfg.train);
        MivPinpointer {
            model,
            threshold: 0.5,
        }
    }

    /// Wraps an existing node classifier and decision threshold (the
    /// checkpoint-restore counterpart of [`MivPinpointer::train`]).
    pub fn from_model(model: NodeClassifier, threshold: f32) -> Self {
        MivPinpointer { model, threshold }
    }

    /// The underlying node classifier (for checkpointing).
    pub fn model(&self) -> &NodeClassifier {
        &self.model
    }

    /// Mutable access to the underlying node classifier, for checkpoint
    /// restore and the fault-injection harness.
    pub fn model_mut(&mut self) -> &mut NodeClassifier {
        &mut self.model
    }

    /// MIV indices predicted faulty in a sub-graph.
    pub fn predict_faulty_mivs(&self, subgraph: &SubGraph) -> Vec<u32> {
        if subgraph.miv_nodes.is_empty() {
            return Vec::new();
        }
        let nodes: Vec<usize> = subgraph.miv_nodes.iter().map(|&(n, _)| n).collect();
        let probs = self.model.predict_nodes(&subgraph.data, &nodes);
        subgraph
            .miv_nodes
            .iter()
            .zip(probs)
            .filter(|&(_, p)| p > self.threshold)
            .map(|(&(_, m), _)| m)
            .collect()
    }

    /// Sample-level accuracy: an MIV-fault sample counts when an injected
    /// MIV is predicted; a fault-free-MIV sample counts when no MIV is.
    pub fn accuracy(&self, samples: &[&DiagSample]) -> f64 {
        let mut total = 0usize;
        let mut hits = 0usize;
        for s in samples {
            let Some(sg) = &s.subgraph else { continue };
            if sg.miv_nodes.is_empty() {
                continue;
            }
            total += 1;
            let predicted = self.predict_faulty_mivs(sg);
            let ok = if s.miv_truth.is_empty() {
                predicted.is_empty()
            } else {
                s.miv_truth.iter().any(|m| predicted.contains(m))
            };
            if ok {
                hits += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::TestEnv;
    use crate::sample::{generate_samples, InjectionKind};
    use m3d_dft::ObsMode;
    use m3d_netlist::generate::Benchmark;
    use m3d_part::DesignConfig;

    fn quick_cfg() -> ModelConfig {
        ModelConfig {
            hidden: 12,
            layers: 2,
            train: TrainConfig {
                epochs: 25,
                ..TrainConfig::default()
            },
            seed: 3,
        }
    }

    #[test]
    fn tier_predictor_beats_chance() {
        let env = TestEnv::build(Benchmark::Aes, DesignConfig::Syn1, Some(300));
        let fsim = env.fault_sim();
        let samples = generate_samples(&env, &fsim, ObsMode::Bypass, InjectionKind::Single, 60, 1);
        let refs: Vec<&DiagSample> = samples.iter().collect();
        let (train, test) = refs.split_at(45);
        let tp = TierPredictor::train(train, &quick_cfg());
        let acc = tp.accuracy(test);
        assert!(acc > 0.65, "tier accuracy {acc}");
        // PR curve yields a usable threshold.
        let curve = tp.pr_curve(train);
        let t = curve.threshold_for_precision(0.99);
        assert!((0.0..=1.0).contains(&t));
    }

    #[test]
    fn miv_pinpointer_flags_injected_mivs() {
        let env = TestEnv::build(Benchmark::Aes, DesignConfig::Syn1, Some(300));
        let fsim = env.fault_sim();
        let mut samples =
            generate_samples(&env, &fsim, ObsMode::Bypass, InjectionKind::MivOnly, 30, 2);
        samples.extend(generate_samples(
            &env,
            &fsim,
            ObsMode::Bypass,
            InjectionKind::Single,
            30,
            3,
        ));
        let refs: Vec<&DiagSample> = samples.iter().collect();
        let mp = MivPinpointer::train(&refs, &quick_cfg());
        let acc = mp.accuracy(&refs);
        assert!(acc > 0.6, "MIV accuracy {acc}");
    }
}
