//! A fully-prepared test environment: design, scan, patterns, graph.

use m3d_dft::{ScanChains, ScanConfig};
use m3d_hetgraph::HetGraph;
use m3d_netlist::generate::Benchmark;
use m3d_part::{augmented_design, DesignConfig, M3dDesign};
use m3d_tdf::{full_fault_list, generate_patterns, AtpgConfig, Fault, FaultSim, TestSet};

/// Everything needed to test and diagnose one M3D design: the partitioned
/// netlist, the stitched scan architecture, the ATPG pattern set, and the
/// heterogeneous graph (built once, reused for every failure log).
///
/// # Examples
///
/// ```
/// use m3d_fault_localization::TestEnv;
/// use m3d_netlist::generate::Benchmark;
/// use m3d_part::DesignConfig;
///
/// let env = TestEnv::build(Benchmark::Aes, DesignConfig::Syn1, Some(300));
/// assert!(env.test_set.fault_coverage > 0.9);
/// ```
#[derive(Debug)]
pub struct TestEnv {
    /// The partitioned design.
    pub design: M3dDesign,
    /// Scan chains and compactor mapping.
    pub scan: ScanChains,
    /// TDF patterns with coverage bookkeeping.
    pub test_set: TestSet,
    /// The heterogeneous graph (Section III-A).
    pub het: HetGraph,
}

impl TestEnv {
    /// Builds the environment for a benchmark under a design configuration.
    ///
    /// `target` overrides the gate-count target (`None` = benchmark
    /// default). ATPG runs to 95% testable-fault coverage.
    pub fn build(benchmark: Benchmark, config: DesignConfig, target: Option<usize>) -> Self {
        Self::from_design(config.build_sized(benchmark, target))
    }

    /// Builds the environment for a randomly-partitioned augmentation
    /// design (`k` selects the partition).
    pub fn build_augmented(benchmark: Benchmark, k: u64, target: Option<usize>) -> Self {
        Self::from_design(augmented_design(benchmark, k, target))
    }

    /// Wraps an already-partitioned design.
    pub fn from_design(design: M3dDesign) -> Self {
        let scan = ScanChains::new(
            design.netlist(),
            ScanConfig::for_flop_count(design.netlist().flops().len()),
        );
        let max_patterns = (design.netlist().gate_count() / 2).clamp(256, 4096);
        let test_set = generate_patterns(&design, &AtpgConfig::new(1, max_patterns));
        let het = HetGraph::new(&design);
        TestEnv {
            design,
            scan,
            test_set,
            het,
        }
    }

    /// Rebuilds the heterogeneous graph with the optional SCOAP feature
    /// extension attached: sub-graphs extracted from this environment
    /// carry three extra feature columns (normalized CC0/CC1/CO), and the
    /// framework models size their input layer accordingly.
    pub fn with_scoap_features(mut self) -> Self {
        self.het = HetGraph::with_scoap(&self.design);
        self
    }

    /// A fault simulator over this environment's patterns.
    pub fn fault_sim(&self) -> FaultSim<'_> {
        FaultSim::new(&self.design, &self.test_set.patterns)
    }

    /// The faults the pattern set detects (the injectable universe for
    /// dataset generation — an undetected fault produces an empty log).
    pub fn detected_faults(&self) -> Vec<Fault> {
        full_fault_list(&self.design)
            .into_iter()
            .zip(&self.test_set.detected)
            .filter(|&(_, &d)| d)
            .map(|(f, _)| f)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_builds_consistently() {
        let env = TestEnv::build(Benchmark::Aes, DesignConfig::Syn1, Some(300));
        assert!(env.test_set.fault_coverage > 0.9);
        assert_eq!(env.het.node_count(), env.design.sites().len());
        assert!(!env.detected_faults().is_empty());
        let chains: usize = env.scan.chains().iter().map(Vec::len).sum();
        assert_eq!(chains, env.design.netlist().flops().len());
    }
}
