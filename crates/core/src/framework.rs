//! The end-to-end fault-localization framework (Fig. 1).

use m3d_diagnosis::DiagnosisReport;
use m3d_part::M3dDesign;

use crate::classifier::PruneClassifier;
use crate::models::{MivPinpointer, ModelConfig, TierPredictor};
use crate::policy::{prune_and_reorder, PolicyOutcome};
use crate::sample::DiagSample;

/// Framework-level configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrameworkConfig {
    /// GNN architecture and training knobs.
    pub model: ModelConfig,
    /// Precision target selecting `T_p` on the training PR curve (the
    /// paper uses 99%).
    pub precision_target: f64,
}

impl Default for FrameworkConfig {
    fn default() -> Self {
        FrameworkConfig {
            model: ModelConfig::default(),
            precision_target: 0.99,
        }
    }
}

/// The trained framework: Tier-predictor, MIV-pinpointer, the `T_p`
/// confidence threshold, and the transfer-learned Classifier.
///
/// # Examples
///
/// ```no_run
/// use m3d_dft::ObsMode;
/// use m3d_fault_localization::{
///     generate_samples, FaultLocalizer, FrameworkConfig, InjectionKind, TestEnv,
/// };
/// use m3d_netlist::generate::Benchmark;
/// use m3d_part::DesignConfig;
///
/// let env = TestEnv::build(Benchmark::Aes, DesignConfig::Syn1, Some(300));
/// let fsim = env.fault_sim();
/// let train = generate_samples(
///     &env, &fsim, ObsMode::Bypass, InjectionKind::Single, 100, 1,
/// );
/// let refs: Vec<&_> = train.iter().collect();
/// let framework = FaultLocalizer::train(&refs, &FrameworkConfig::default());
/// println!("Tp = {}", framework.tp_threshold);
/// ```
#[derive(Clone, Debug)]
pub struct FaultLocalizer {
    /// The tier-level graph classifier.
    pub tier: TierPredictor,
    /// The MIV node classifier.
    pub miv: MivPinpointer,
    /// The prune/reorder Classifier (absent when no Predicted Positive
    /// training samples existed).
    pub classifier: Option<PruneClassifier>,
    /// The `T_p` confidence threshold derived from the training PR curve.
    pub tp_threshold: f64,
}

impl FaultLocalizer {
    /// Trains the full framework on labelled samples.
    pub fn train(samples: &[&DiagSample], cfg: &FrameworkConfig) -> Self {
        let tier = TierPredictor::train(samples, &cfg.model);
        let tp_threshold = tier
            .pr_curve(samples)
            .threshold_for_precision(cfg.precision_target);
        let miv = MivPinpointer::train(samples, &cfg.model);
        let classifier = PruneClassifier::train(&tier, samples, tp_threshold, &cfg.model);
        FaultLocalizer {
            tier,
            miv,
            classifier,
            tp_threshold,
        }
    }

    /// Runs the localization models and the pruning/reordering policy on
    /// one diagnosed sample, producing the final report.
    ///
    /// Samples without a sub-graph (empty back-trace) pass through
    /// unchanged. If the Tier-predictor emits a non-finite confidence (a
    /// numerically damaged model), the GNN outputs are discarded and the
    /// report falls back to the structural baseline ranker \[11\], tagged
    /// [`DiagnosisReport::degraded`] — graceful degradation instead of
    /// pruning on garbage or panicking.
    pub fn enhance(
        &self,
        design: &M3dDesign,
        report: &DiagnosisReport,
        sample: &DiagSample,
    ) -> PolicyOutcome {
        let Some(sg) = &sample.subgraph else {
            return PolicyOutcome::pass_through(report.clone());
        };
        let predicted_tier = self.tier.predict(sg);
        if !predicted_tier.1.is_finite() || !self.tp_threshold.is_finite() {
            return PolicyOutcome::degraded(report);
        }
        let predicted_mivs = self.miv.predict_faulty_mivs(sg);
        let approves = self.classifier.as_ref().is_some_and(|c| c.should_prune(sg));
        prune_and_reorder(
            design,
            report,
            predicted_tier,
            &predicted_mivs,
            self.tp_threshold,
            approves,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::TestEnv;
    use crate::sample::{generate_samples, InjectionKind};
    use m3d_dft::ObsMode;
    use m3d_gnn::TrainConfig;
    use m3d_netlist::generate::Benchmark;
    use m3d_part::DesignConfig;

    #[test]
    fn framework_trains_and_enhances() {
        let env = TestEnv::build(Benchmark::Aes, DesignConfig::Syn1, Some(300));
        let fsim = env.fault_sim();
        let samples = generate_samples(&env, &fsim, ObsMode::Bypass, InjectionKind::Single, 60, 1);
        let refs: Vec<&DiagSample> = samples.iter().collect();
        let cfg = FrameworkConfig {
            model: ModelConfig {
                train: TrainConfig {
                    epochs: 20,
                    ..TrainConfig::default()
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let fw = FaultLocalizer::train(&refs, &cfg);
        assert!((0.0..=1.0).contains(&fw.tp_threshold));

        // Enhance a trivial report: must not panic and must keep shape.
        let report = DiagnosisReport::default();
        let out = fw.enhance(&env.design, &report, &samples[0]);
        assert_eq!(out.report.resolution(), 0);
    }

    #[test]
    fn damaged_models_degrade_to_the_structural_baseline() {
        use crate::policy::PolicyAction;

        let env = TestEnv::build(Benchmark::Aes, DesignConfig::Syn1, Some(300));
        let fsim = env.fault_sim();
        let samples = generate_samples(&env, &fsim, ObsMode::Bypass, InjectionKind::Single, 30, 2);
        let refs: Vec<&DiagSample> = samples.iter().collect();
        let cfg = FrameworkConfig {
            model: ModelConfig {
                train: TrainConfig {
                    epochs: 5,
                    ..TrainConfig::default()
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let mut fw = FaultLocalizer::train(&refs, &cfg);

        // Diagnose one sample so the report is non-trivial.
        let diag = m3d_diagnosis::Diagnoser::new(
            &fsim,
            &env.scan,
            ObsMode::Bypass,
            m3d_diagnosis::DiagnosisConfig::default(),
        );
        let report = diag.diagnose(&samples[0].log);

        // Healthy framework: not degraded.
        let healthy = fw.enhance(&env.design, &report, &samples[0]);
        assert_ne!(healthy.action, PolicyAction::Degraded);
        assert!(!healthy.report.degraded());

        // Fault 1: NaN weights in the tier predictor → non-finite
        // confidence → structural-baseline fallback, tagged degraded.
        for p in fw.tier.model_mut().params_mut() {
            p.value.data_mut()[0] = f32::NAN;
        }
        let out = fw.enhance(&env.design, &report, &samples[0]);
        assert_eq!(out.action, PolicyAction::Degraded);
        assert!(out.report.degraded());
        assert!(out.backup.is_empty(), "degraded path prunes nothing");

        // Fault 2: a NaN confidence threshold degrades the same way.
        let mut fw2 = FaultLocalizer::train(&refs, &cfg);
        fw2.tp_threshold = f64::NAN;
        let out2 = fw2.enhance(&env.design, &report, &samples[0]);
        assert_eq!(out2.action, PolicyAction::Degraded);
        assert!(out2.report.degraded());
    }
}
