//! The candidate pruning and reordering policy (Section V, Figs. 7–8).

use m3d_diagnosis::{miv_equivalent, Candidate, DiagnosisReport};
use m3d_part::{M3dDesign, Tier};

/// What the policy did to the ATPG report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyAction {
    /// Tier prediction had low confidence (`p ≤ T_p`): reorder only.
    Reorder,
    /// High confidence and Classifier approval: fault-free tier pruned.
    Prune,
    /// No sub-graph / no prediction available: report passed through.
    PassThrough,
    /// Classifier output was unusable (non-finite confidence): the
    /// structural baseline filter \[11\] ranked the report instead and it
    /// was tagged degraded.
    Degraded,
}

/// The policy's result: the final report, the action taken, and the backup
/// dictionary entry (pruned candidates, recoverable by a diagnosis
/// engineer if the root cause is missing from the pruned report).
#[derive(Clone, Debug)]
pub struct PolicyOutcome {
    /// The final (reordered / pruned) report.
    pub report: DiagnosisReport,
    /// The action taken.
    pub action: PolicyAction,
    /// Candidates removed by pruning (the backup dictionary entry).
    pub backup: Vec<Candidate>,
    /// The Tier-predictor output `(tier, confidence)`, if available.
    pub predicted_tier: Option<(Tier, f64)>,
    /// MIVs the MIV-pinpointer flagged as faulty.
    pub predicted_mivs: Vec<u32>,
}

impl PolicyOutcome {
    /// A pass-through outcome (no predictions available).
    pub fn pass_through(report: DiagnosisReport) -> Self {
        PolicyOutcome {
            report,
            action: PolicyAction::PassThrough,
            backup: Vec::new(),
            predicted_tier: None,
            predicted_mivs: Vec::new(),
        }
    }

    /// A degraded outcome: the classifier's confidence was unusable, so the
    /// report was ranked by the structural baseline instead and tagged
    /// [`DiagnosisReport::degraded`].
    pub fn degraded(report: &DiagnosisReport) -> Self {
        let mut report = m3d_diagnosis::baseline_filter(report);
        report.mark_degraded();
        PolicyOutcome {
            report,
            action: PolicyAction::Degraded,
            backup: Vec::new(),
            predicted_tier: None,
            predicted_mivs: Vec::new(),
        }
    }
}

/// Applies the pruning/reordering policy to an ATPG report.
///
/// 1. Candidates equivalent to MIVs predicted faulty move to the top
///    (prioritizing MIV faults for PFA). Such candidates are *protected*:
///    the subsequent pruning step may not remove them.
/// 2. If the tier confidence exceeds `tp_threshold` and the Classifier (if
///    any) approves, candidates in the tier predicted fault-free are
///    pruned into the backup dictionary; unprotected no-tier (MIV)
///    candidates are pruned too — recovering them is exactly the
///    MIV-pinpointer's job (Section VII-B).
/// 3. Otherwise all candidates in the predicted faulty tier move ahead of
///    the rest (stable reorder).
pub fn prune_and_reorder(
    design: &M3dDesign,
    report: &DiagnosisReport,
    predicted_tier: (Tier, f64),
    predicted_mivs: &[u32],
    tp_threshold: f64,
    classifier_approves: bool,
) -> PolicyOutcome {
    let (faulty_tier, confidence) = predicted_tier;
    let protected = |c: &Candidate| -> bool {
        miv_equivalent(design, c.fault.site).is_some_and(|m| predicted_mivs.contains(&m))
    };

    // Step 1: stable partition — protected MIV candidates first.
    let mut ordered: Vec<Candidate> = Vec::with_capacity(report.resolution());
    ordered.extend(report.candidates().iter().filter(|c| protected(c)).copied());
    let rest: Vec<Candidate> = report
        .candidates()
        .iter()
        .filter(|c| !protected(c))
        .copied()
        .collect();

    let high_confidence = confidence > tp_threshold;
    if high_confidence && classifier_approves {
        // Step 2: prune the fault-free tier (and unprotected MIVs).
        let mut backup = Vec::new();
        for c in rest {
            let keep = c.tier == Some(faulty_tier);
            if keep {
                ordered.push(c);
            } else {
                backup.push(c);
            }
        }
        PolicyOutcome {
            report: report.with_candidates(ordered),
            action: PolicyAction::Prune,
            backup,
            predicted_tier: Some((faulty_tier, confidence)),
            predicted_mivs: predicted_mivs.to_vec(),
        }
    } else {
        // Step 3: stable reorder — faulty-tier candidates ahead.
        ordered.extend(rest.iter().filter(|c| c.tier == Some(faulty_tier)).copied());
        ordered.extend(rest.iter().filter(|c| c.tier != Some(faulty_tier)).copied());
        PolicyOutcome {
            report: report.with_candidates(ordered),
            action: PolicyAction::Reorder,
            backup: Vec::new(),
            predicted_tier: Some((faulty_tier, confidence)),
            predicted_mivs: predicted_mivs.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_diagnosis::MatchScore;
    use m3d_netlist::generate::Benchmark;
    use m3d_netlist::SitePos;
    use m3d_part::DesignConfig;
    use m3d_tdf::{Fault, Polarity};

    fn design() -> M3dDesign {
        DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300))
    }

    fn site_in_tier(d: &M3dDesign, tier: Tier, skip: usize) -> m3d_netlist::SiteId {
        d.sites()
            .iter()
            .filter(|&(s, p)| !matches!(p, SitePos::Miv(_)) && d.tier_of_site(s) == Some(tier))
            .map(|(s, _)| s)
            .nth(skip)
            .expect("tier has sites")
    }

    fn cand(d: &M3dDesign, site: m3d_netlist::SiteId) -> Candidate {
        Candidate {
            fault: Fault::new(site, Polarity::SlowToRise),
            score: MatchScore {
                tfsf: 3,
                tfsp: 0,
                tpsf: 0,
            },
            tier: d.tier_of_site(site),
        }
    }

    #[test]
    fn pruning_keeps_only_the_faulty_tier() {
        let d = design();
        let top = cand(&d, site_in_tier(&d, Tier::Top, 0));
        let bottom = cand(&d, site_in_tier(&d, Tier::Bottom, 0));
        let report = DiagnosisReport::new(vec![bottom, top]);
        let out = prune_and_reorder(&d, &report, (Tier::Top, 0.97), &[], 0.9, true);
        assert_eq!(out.action, PolicyAction::Prune);
        assert_eq!(out.report.resolution(), 1);
        assert_eq!(out.report.candidates()[0].tier, Some(Tier::Top));
        assert_eq!(out.backup.len(), 1, "pruned candidate lands in backup");
    }

    #[test]
    fn low_confidence_reorders_without_pruning() {
        let d = design();
        let top = cand(&d, site_in_tier(&d, Tier::Top, 1));
        let bottom = cand(&d, site_in_tier(&d, Tier::Bottom, 1));
        let report = DiagnosisReport::new(vec![bottom, top]);
        let out = prune_and_reorder(&d, &report, (Tier::Top, 0.6), &[], 0.9, true);
        assert_eq!(out.action, PolicyAction::Reorder);
        assert_eq!(out.report.resolution(), 2);
        assert_eq!(out.report.candidates()[0].tier, Some(Tier::Top));
        assert!(out.backup.is_empty());
    }

    #[test]
    fn predicted_mivs_are_promoted_and_protected() {
        let d = design();
        assert!(d.miv_count() > 0);
        let miv_site = d.miv_site(0);
        let miv_cand = Candidate {
            fault: Fault::new(miv_site, Polarity::SlowToFall),
            score: MatchScore {
                tfsf: 1,
                tfsp: 0,
                tpsf: 0,
            },
            tier: None,
        };
        let top = cand(&d, site_in_tier(&d, Tier::Top, 2));
        let report = DiagnosisReport::new(vec![top, miv_cand]);
        // Prune with tier=Top: MIV candidate is protected by prediction.
        let out = prune_and_reorder(&d, &report, (Tier::Top, 0.99), &[0], 0.9, true);
        assert_eq!(out.report.candidates()[0].fault.site, miv_site);
        assert_eq!(out.report.resolution(), 2);
        // Without the MIV prediction the MIV candidate is pruned.
        let out2 = prune_and_reorder(&d, &report, (Tier::Top, 0.99), &[], 0.9, true);
        assert!(out2
            .report
            .candidates()
            .iter()
            .all(|c| c.fault.site != miv_site));
        assert_eq!(out2.backup.len(), 1);
    }

    #[test]
    fn classifier_veto_downgrades_to_reorder() {
        let d = design();
        let top = cand(&d, site_in_tier(&d, Tier::Top, 3));
        let bottom = cand(&d, site_in_tier(&d, Tier::Bottom, 3));
        let report = DiagnosisReport::new(vec![bottom, top]);
        let out = prune_and_reorder(&d, &report, (Tier::Top, 0.99), &[], 0.9, false);
        assert_eq!(out.action, PolicyAction::Reorder);
        assert_eq!(out.report.resolution(), 2);
    }
}

impl PolicyOutcome {
    /// Estimated size in bytes of this chip's backup-dictionary entry
    /// (site id + polarity + score counts per pruned candidate). The paper
    /// argues the dictionary stays small — e.g. 246 kB for its worst case —
    /// because only the resolution *difference* is stored.
    pub fn backup_bytes(&self) -> usize {
        // 4B site + 1B polarity + 3×4B score + 1B tier tag
        self.backup.len() * 18
    }
}

#[cfg(test)]
mod backup_tests {
    use super::*;
    use m3d_diagnosis::MatchScore;
    use m3d_tdf::{Fault, Polarity};

    #[test]
    fn backup_size_scales_with_pruned_candidates() {
        let mk = |n: usize| PolicyOutcome {
            report: DiagnosisReport::default(),
            action: PolicyAction::Prune,
            backup: (0..n)
                .map(|i| Candidate {
                    fault: Fault::new(m3d_netlist::SiteId::new(i), Polarity::SlowToRise),
                    score: MatchScore::default(),
                    tier: None,
                })
                .collect(),
            predicted_tier: None,
            predicted_mivs: Vec::new(),
        };
        assert_eq!(mk(0).backup_bytes(), 0);
        assert!(mk(10).backup_bytes() > mk(3).backup_bytes());
    }
}
