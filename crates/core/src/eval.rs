//! Evaluation harness: diagnoses sample sets with every method and
//! aggregates the paper's table metrics.

use m3d_dft::ObsMode;
use m3d_diagnosis::{
    baseline_filter, Diagnoser, DiagnosisConfig, DiagnosisReport, QualityAccumulator, ReportQuality,
};
use m3d_tdf::FaultSim;

use crate::env::TestEnv;
use crate::framework::FaultLocalizer;
use crate::sample::DiagSample;

/// Per-method aggregate quality for one (benchmark, config, mode) cell of
/// Tables V–VIII.
#[derive(Clone, Debug, Default)]
pub struct MethodEval {
    /// Raw ATPG diagnosis reports (Tables V / VII).
    pub atpg: ReportQuality,
    /// The 2D baseline \[11\] applied to the ATPG reports.
    pub baseline: ReportQuality,
    /// The proposed framework standalone (GNN pruning/reordering).
    pub gnn: ReportQuality,
    /// The framework followed by the baseline (GNN + \[11\]).
    pub combined: ReportQuality,
}

/// Diagnoses every sample with the four methods.
///
/// Tier-localization rates follow the paper's rule: reports already
/// localized by ATPG (all candidates in one tier) are excluded; the
/// baseline's rate checks the filtered report's candidate tiers against
/// the ground truth, the GNN's rate checks the Tier-predictor output.
pub fn evaluate_methods(
    env: &TestEnv,
    fsim: &FaultSim<'_>,
    framework: &FaultLocalizer,
    mode: ObsMode,
    samples: &[DiagSample],
) -> MethodEval {
    let diagnoser = Diagnoser::new(fsim, &env.scan, mode, DiagnosisConfig::default());

    // Per-sample work is independent; fan out across threads.
    let results = parallel_map(samples, |sample| {
        let atpg = diagnoser.diagnose(&sample.log);
        let base = baseline_filter(&atpg);
        let outcome = framework.enhance(&env.design, &atpg, sample);
        let combined = baseline_filter(&outcome.report);
        (atpg, base, outcome, combined)
    });

    let mut acc_atpg = QualityAccumulator::new();
    let mut acc_base = QualityAccumulator::new();
    let mut acc_gnn = QualityAccumulator::new();
    let mut acc_comb = QualityAccumulator::new();
    for (sample, (atpg, base, outcome, combined)) in samples.iter().zip(&results) {
        let gt = &sample.injected;
        acc_atpg.add(atpg, gt);
        acc_base.add(base, gt);
        acc_gnn.add(&outcome.report, gt);
        acc_comb.add(combined, gt);

        // Tier localization: skip reports ATPG already localized and
        // samples without a tier ground truth.
        if let Some(truth) = sample.faulty_tier {
            if !atpg.is_tier_localized() {
                acc_base.add_tier_outcome(base.candidate_tiers() == vec![truth]);
                if let Some((pred, _)) = outcome.predicted_tier {
                    acc_gnn.add_tier_outcome(pred == truth);
                    acc_comb.add_tier_outcome(pred == truth);
                }
            }
        }
    }
    MethodEval {
        atpg: acc_atpg.finish(),
        baseline: acc_base.finish(),
        gnn: acc_gnn.finish(),
        combined: acc_comb.finish(),
    }
}

/// Diagnoses samples with ATPG only (for Tables V / VII and the runtime
/// analysis).
pub fn diagnose_all(
    env: &TestEnv,
    fsim: &FaultSim<'_>,
    mode: ObsMode,
    samples: &[DiagSample],
) -> Vec<DiagnosisReport> {
    let diagnoser = Diagnoser::new(fsim, &env.scan, mode, DiagnosisConfig::default());
    parallel_map(samples, |s| diagnoser.diagnose(&s.log))
}

/// Order-preserving parallel map over a slice.
///
/// Re-exported wrapper over [`m3d_par::par_map`]: the pool honours
/// `M3D_THREADS` and `m3d_par::with_threads`, balances load by chunk
/// stealing, and reassembles results in input order.
pub fn parallel_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    m3d_par::par_map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkConfig;
    use crate::sample::{generate_samples, InjectionKind};
    use m3d_gnn::TrainConfig;
    use m3d_netlist::generate::Benchmark;
    use m3d_part::DesignConfig;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = parallel_map(&items, |&x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn evaluation_produces_consistent_metrics() {
        let env = TestEnv::build(Benchmark::Aes, DesignConfig::Syn1, Some(300));
        let fsim = env.fault_sim();
        let train = generate_samples(&env, &fsim, ObsMode::Bypass, InjectionKind::Single, 40, 1);
        let test = generate_samples(&env, &fsim, ObsMode::Bypass, InjectionKind::Single, 15, 99);
        let refs: Vec<&DiagSample> = train.iter().collect();
        let cfg = FrameworkConfig {
            model: crate::models::ModelConfig {
                train: TrainConfig {
                    epochs: 15,
                    ..TrainConfig::default()
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let fw = FaultLocalizer::train(&refs, &cfg);
        let eval = evaluate_methods(&env, &fsim, &fw, ObsMode::Bypass, &test);
        assert_eq!(eval.atpg.samples, test.len());
        // ATPG single-fault diagnosis should be near-perfectly accurate.
        assert!(eval.atpg.accuracy > 0.85, "ATPG acc {}", eval.atpg.accuracy);
        // Filters can only shrink reports.
        assert!(eval.baseline.mean_resolution <= eval.atpg.mean_resolution);
        assert!(eval.combined.mean_resolution <= eval.gnn.mean_resolution + 1e-9);
        // Accuracy can drop only boundedly.
        assert!(eval.gnn.accuracy >= eval.atpg.accuracy - 0.25);
    }
}
