//! Dataset generation: the paper's Fig. 4 flow.
//!
//! Each sample injects fault(s) into the design, runs logic simulation
//! against the TDF patterns to obtain a failure log, back-traces the log to
//! a sub-graph, and labels the sample with the ground truth (faulty tier
//! and/or MIV).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use m3d_dft::ObsMode;
use m3d_hetgraph::{back_trace, SubGraph};
use m3d_netlist::SitePos;
use m3d_part::Tier;
use m3d_tdf::{FailureLog, Fault, FaultSim};

use crate::env::TestEnv;

/// What to inject per sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectionKind {
    /// One TDF at a random detected site (gate pin or MIV).
    Single,
    /// One TDF at a random detected MIV site.
    MivOnly,
    /// 2–5 TDFs clustered in one tier (the systematic-defect scenario of
    /// Section VII-A).
    MultiSameTier,
}

/// One labelled diagnosis sample.
#[derive(Clone, Debug)]
pub struct DiagSample {
    /// The injected ground-truth fault(s).
    pub injected: Vec<Fault>,
    /// The tester failure log.
    pub log: FailureLog,
    /// The back-traced sub-graph (absent when back-tracing is empty).
    pub subgraph: Option<SubGraph>,
    /// Ground-truth faulty tier (`None` for pure-MIV injections).
    pub faulty_tier: Option<Tier>,
    /// Ground-truth faulty MIV indices.
    pub miv_truth: Vec<u32>,
}

impl DiagSample {
    /// Whether the sample has a usable sub-graph and tier label (the
    /// Tier-predictor training criterion).
    pub fn tier_trainable(&self) -> bool {
        self.subgraph.is_some() && self.faulty_tier.is_some()
    }
}

/// Generates `n` samples under the given observation mode. Deterministic in
/// `seed`; samples whose failure log is empty (aliased away by the
/// compactor) are skipped and regenerated.
///
/// # Panics
///
/// Re-raises a worker panic from the parallel fault-simulation stage; use
/// [`try_generate_samples`] to receive it as a typed error instead.
pub fn generate_samples(
    env: &TestEnv,
    fsim: &FaultSim<'_>,
    mode: ObsMode,
    kind: InjectionKind,
    n: usize,
    seed: u64,
) -> Vec<DiagSample> {
    try_generate_samples(env, fsim, mode, kind, n, seed).unwrap_or_else(|e| panic!("{e}"))
}

/// Panic-containing [`generate_samples`]: a panic in any fault-simulation
/// or back-trace worker is caught per chunk and returned as a typed
/// [`m3d_par::WorkerPanic`] naming the chunk, deterministically at any
/// thread count, while sibling chunks complete.
///
/// # Errors
///
/// The first (lowest-chunk-index) worker panic.
pub fn try_generate_samples(
    env: &TestEnv,
    fsim: &FaultSim<'_>,
    mode: ObsMode,
    kind: InjectionKind,
    n: usize,
    seed: u64,
) -> Result<Vec<DiagSample>, m3d_par::WorkerPanic> {
    let mut span = m3d_obs::span("sample_generation");
    let detected = env.detected_faults();
    assert!(!detected.is_empty(), "no detectable faults to inject");
    let miv_faults: Vec<Fault> = detected
        .iter()
        .copied()
        .filter(|f| matches!(env.design.sites().pos(f.site), SitePos::Miv(_)))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut attempts = 0usize;
    // Wave-based generation: RNG draws stay serial (the stream of candidate
    // injections is byte-for-byte the one the serial implementation drew),
    // while the expensive per-candidate fault simulation and back-trace fan
    // across the `m3d_par` pool with one detector scratch per worker.
    // Candidates are accepted in draw order, so the output is identical to
    // the serial flow at any thread count.
    while out.len() < n && attempts < n * 20 {
        span.add("waves", 1);
        let want = n - out.len();
        let mut wave: Vec<Vec<Fault>> = Vec::with_capacity(want);
        while wave.len() < want && attempts < n * 20 {
            attempts += 1;
            if let Some(injected) = draw_injection(kind, &detected, &miv_faults, env, &mut rng) {
                wave.push(injected);
            }
        }
        let results = m3d_par::try_par_map_init(
            &wave,
            || fsim.detector(),
            |detector, injected| {
                let dets = fsim.detections(detector, injected);
                let log = FailureLog::from_detections(&dets, &env.scan, mode);
                if log.is_empty() {
                    return None;
                }
                let subgraph = back_trace(&env.het, fsim, &env.scan, &log);
                Some((log, subgraph))
            },
        )?;
        for (injected, result) in wave.into_iter().zip(results) {
            if out.len() >= n {
                break;
            }
            let Some((log, subgraph)) = result else {
                continue;
            };
            let faulty_tier = injected_tier(env, &injected);
            let miv_truth = injected
                .iter()
                .filter_map(|f| match env.design.sites().pos(f.site) {
                    SitePos::Miv(m) => Some(m),
                    _ => None,
                })
                .collect();
            out.push(DiagSample {
                injected,
                log,
                subgraph,
                faulty_tier,
                miv_truth,
            });
        }
    }
    span.add("samples", out.len() as u64);
    span.add("attempts", attempts as u64);
    m3d_obs::counter("core.samples.generated", out.len() as u64);
    m3d_obs::counter("core.samples.attempts", attempts as u64);
    Ok(out)
}

/// Draws one candidate injection; `None` when the draw is structurally
/// impossible (fewer than two same-tier faults). Consumes RNG state exactly
/// as the serial sample loop did.
fn draw_injection(
    kind: InjectionKind,
    detected: &[Fault],
    miv_faults: &[Fault],
    env: &TestEnv,
    rng: &mut StdRng,
) -> Option<Vec<Fault>> {
    match kind {
        InjectionKind::Single => Some(vec![detected[rng.gen_range(0..detected.len())]]),
        InjectionKind::MivOnly => {
            if miv_faults.is_empty() {
                Some(vec![detected[rng.gen_range(0..detected.len())]])
            } else {
                Some(vec![miv_faults[rng.gen_range(0..miv_faults.len())]])
            }
        }
        InjectionKind::MultiSameTier => {
            let tier = if rng.gen_bool(0.5) {
                Tier::Top
            } else {
                Tier::Bottom
            };
            let pool: Vec<Fault> = detected
                .iter()
                .copied()
                .filter(|f| env.design.tier_of_site(f.site) == Some(tier))
                .collect();
            if pool.len() < 2 {
                return None;
            }
            let k = rng.gen_range(2..=5usize).min(pool.len());
            Some(pool.choose_multiple(rng, k).copied().collect())
        }
    }
}

/// The common tier of the injected faults, if they share one.
fn injected_tier(env: &TestEnv, injected: &[Fault]) -> Option<Tier> {
    let mut tier = None;
    for f in injected {
        match env.design.tier_of_site(f.site) {
            None => return None, // MIV faults belong to no tier
            Some(t) => match tier {
                None => tier = Some(t),
                Some(prev) if prev != t => return None,
                _ => {}
            },
        }
    }
    tier
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::generate::Benchmark;
    use m3d_part::DesignConfig;

    fn env() -> TestEnv {
        TestEnv::build(Benchmark::Aes, DesignConfig::Syn1, Some(300))
    }

    #[test]
    fn single_fault_samples_are_labelled() {
        let e = env();
        let fsim = e.fault_sim();
        let samples = generate_samples(&e, &fsim, ObsMode::Bypass, InjectionKind::Single, 12, 3);
        assert_eq!(samples.len(), 12);
        for s in &samples {
            assert_eq!(s.injected.len(), 1);
            assert!(!s.log.is_empty());
            let sg = s.subgraph.as_ref().expect("single faults back-trace");
            assert!(sg.node_of(s.injected[0].site).is_some());
            // Tier label XOR MIV label.
            assert!(s.faulty_tier.is_some() ^ !s.miv_truth.is_empty());
        }
    }

    #[test]
    fn miv_samples_target_mivs() {
        let e = env();
        let fsim = e.fault_sim();
        let samples = generate_samples(&e, &fsim, ObsMode::Bypass, InjectionKind::MivOnly, 6, 5);
        assert!(samples.iter().filter(|s| !s.miv_truth.is_empty()).count() >= 5);
    }

    #[test]
    fn multi_fault_samples_share_a_tier() {
        let e = env();
        let fsim = e.fault_sim();
        let samples = generate_samples(
            &e,
            &fsim,
            ObsMode::Bypass,
            InjectionKind::MultiSameTier,
            8,
            7,
        );
        assert_eq!(samples.len(), 8);
        for s in &samples {
            assert!(s.injected.len() >= 2 && s.injected.len() <= 5);
            assert!(s.faulty_tier.is_some(), "same-tier injection has a tier");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let e = env();
        let fsim = e.fault_sim();
        let a = generate_samples(&e, &fsim, ObsMode::Compacted, InjectionKind::Single, 5, 11);
        let b = generate_samples(&e, &fsim, ObsMode::Compacted, InjectionKind::Single, 5, 11);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.injected, y.injected);
            assert_eq!(x.log, y.log);
        }
    }
}
