//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `rand` 0.8 API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], and the [`seq::SliceRandom`] helpers. Everything is
//! deterministic by construction — there is no entropy source, only
//! explicitly seeded generators — which is exactly what a reproducibility
//! workspace wants.
//!
//! [`rngs::StdRng`] is a SplitMix64 generator: 64 bits of state, full
//! period, passes the statistical smoke tests below. It is *not*
//! stream-compatible with upstream `rand`'s ChaCha-based `StdRng`; nothing
//! in this workspace depends on the exact stream, only on determinism and
//! uniformity.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible directly from one word of the stream (the subset of
/// `rand`'s `Standard` distribution this workspace samples).
pub trait Standard: Sized {
    /// Derives a value from a raw word.
    fn from_word(word: u64) -> Self;
}

impl Standard for u64 {
    fn from_word(word: u64) -> Self {
        word
    }
}
impl Standard for u32 {
    fn from_word(word: u64) -> Self {
        (word >> 32) as u32
    }
}
impl Standard for bool {
    fn from_word(word: u64) -> Self {
        word >> 63 == 1
    }
}
impl Standard for f64 {
    fn from_word(word: u64) -> Self {
        // 53 high bits -> [0, 1)
        (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn from_word(word: u64) -> Self {
        (word >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform sampler over an interval, mirroring
/// `rand::distributions::uniform::SampleUniform`. Implemented for the
/// primitive integers and floats; the [`SampleRange`] impls below are
/// *blanket* impls over this trait so that integer-literal inference flows
/// through `gen_range` exactly as with upstream `rand` (a `gen_range(0..4)`
/// used as a slice index infers `usize`, not the `i32` fallback).
pub trait SampleUniform: Copy {
    /// Draws one value from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Draws one value from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )+};
}
int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let unit = <$t as Standard>::from_word(rng.next_u64());
                lo + unit * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                Self::sample_half_open(lo, hi, rng)
            }
        }
    )+};
}
float_sample_uniform!(f32, f64);

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of `T` from one stream word.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_word(self.next_u64())
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        f64::from_word(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-scramble so that small consecutive seeds (0, 1, 2, …)
            // land in well-separated regions of the state space.
            StdRng {
                state: state.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }
    }

    impl StdRng {
        /// Returns the raw 64-bit internal state.
        ///
        /// Together with [`StdRng::from_state`] this lets a long-running
        /// job checkpoint its generator and later resume the *exact*
        /// stream: `StdRng::from_state(rng.state())` continues where `rng`
        /// left off, bit for bit.
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Reconstructs a generator from a state captured by
        /// [`StdRng::state`]. Unlike [`SeedableRng::seed_from_u64`], the
        /// value is installed verbatim (no pre-scramble), so the resumed
        /// stream continues the original one.
        pub fn from_state(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait over slices: shuffling and random choice.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks one element uniformly, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Picks `amount` distinct elements (all of them if `amount`
        /// exceeds the length), in random order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, T> {
            let k = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: only the first `k` slots are drawn.
            for i in 0..k {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            indices.truncate(k);
            SliceChooseIter {
                slice: self,
                indices,
                next: 0,
            }
        }
    }

    /// Iterator over elements selected by
    /// [`choose_multiple`](SliceRandom::choose_multiple).
    pub struct SliceChooseIter<'a, T> {
        slice: &'a [T],
        indices: Vec<usize>,
        next: usize,
    }

    impl<'a, T> Iterator for SliceChooseIter<'a, T> {
        type Item = &'a T;

        fn next(&mut self) -> Option<&'a T> {
            let idx = *self.indices.get(self.next)?;
            self.next += 1;
            Some(&self.slice[idx])
        }

        fn size_hint(&self) -> (usize, Option<usize>) {
            let left = self.indices.len() - self.next;
            (left, Some(left))
        }
    }

    impl<T> ExactSizeIterator for SliceChooseIter<'_, T> {}
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..5 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys, "restored generator continues the exact stream");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-0.25..0.25f32);
            assert!((-0.25..0.25).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never stay in place");
    }

    #[test]
    fn choose_multiple_is_distinct_and_complete() {
        let mut rng = StdRng::seed_from_u64(5);
        let pool: Vec<u32> = (0..10).collect();
        let picked: Vec<u32> = pool.choose_multiple(&mut rng, 4).copied().collect();
        assert_eq!(picked.len(), 4);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4, "choices are distinct");
        // Asking for more than the pool yields the whole pool.
        let all: Vec<u32> = pool.choose_multiple(&mut rng, 99).copied().collect();
        assert_eq!(all.len(), pool.len());
        assert!(pool.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
