//! The load generator and chaos client: thousands of concurrent synthetic
//! tester sessions with seeded fault injection.
//!
//! Each client thread owns a [`ChaosSchedule`] seeded from its index, so a
//! run is reproducible: the same seed yields the same interleaving of
//! clean exchanges, garbled and truncated frames, slow writers, mid-stream
//! disconnects, duplicated requests, and retry storms (exponential backoff
//! with deterministic jitter after every `Overloaded`).
//!
//! Before any client starts, the harness computes the *offline* expected
//! report for every synthetic failure log — plain, shed-degraded, and
//! enhanced variants — straight from [`Diagnoser`] and
//! [`FaultLocalizer::enhance`]. Every served report is compared
//! bit-for-bit (display text, candidate list, degraded tag) against those
//! expectations; a `mismatch` is the harness's strongest failure signal.
//! `crashed_connections` counts unexpected EOFs during *clean* exchanges
//! only — chaos-injected disconnects are the client's own doing and are
//! not crashes.
//!
//! [`FaultLocalizer::enhance`]: m3d_fault_localization::FaultLocalizer::enhance

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use m3d_diagnosis::Diagnoser;
use m3d_fault_localization::{try_generate_samples, InjectionKind, PolicyAction};
use m3d_resilient::chaos::{ChaosAction, ChaosSchedule};
use m3d_tdf::write_failure_log;

use crate::admission::AdmissionConfig;
use crate::artifacts::{ArtifactBundle, BundleSpec};
use crate::proto::{
    encode_frame, read_frame, wire_candidates, write_frame, Decoder, ProtoError, Request, Response,
    WireCandidate,
};
use crate::server::{spawn_server, RunningServer, ServeConfig};

/// Load-harness configuration.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Artifact spec (must match the server's when `addr` targets an
    /// external one, or the expected reports will not line up).
    pub spec: BundleSpec,
    /// Concurrent client threads per width phase.
    pub clients: usize,
    /// Clean diagnosis exchanges each client must complete.
    pub requests_per_client: usize,
    /// Pool widths to phase through (one in-process server per width).
    pub widths: Vec<usize>,
    /// Chaos seed (client `i` uses `chaos_seed + i`).
    pub chaos_seed: u64,
    /// Per-request chaos probability in `[0, 1]`; `0.0` is a pure load
    /// run.
    pub chaos_rate: f64,
    /// Per-request deadline sent to the server (`None` = server default).
    pub deadline_ms: Option<u64>,
    /// Distinct synthetic failure logs to cycle through.
    pub log_pool: usize,
    /// Forwarded to [`ServeConfig::chaos_panic_every`] on in-process
    /// servers.
    pub server_panic_every: Option<u64>,
    /// Admission knobs for in-process servers.
    pub admission: AdmissionConfig,
    /// Frame timeout for in-process servers; the slow-writer chaos action
    /// sleeps past it on purpose.
    pub frame_timeout_ms: u64,
    /// Target an already-running server instead of spawning one per
    /// width (the width then only labels the phase).
    pub addr: Option<String>,
    /// Run a telemetry exporter on each in-process server and scrape it
    /// continuously while the clients storm (mid-load snapshots feed the
    /// exporter-overhead and bit-neutrality checks).
    pub telemetry: bool,
    /// Flight-dump directory for in-process servers (each width phase
    /// uses a `w<width>` subdirectory). After the phase the harness
    /// verifies every `flight-panic-*.jsonl` artifact parses and renders
    /// and that each contained worker panic left one.
    pub flight_dir: Option<PathBuf>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            spec: BundleSpec::default(),
            clients: 1000,
            requests_per_client: 2,
            widths: vec![1, 4],
            chaos_seed: 1,
            chaos_rate: 0.0,
            deadline_ms: None,
            log_pool: 32,
            server_panic_every: None,
            admission: AdmissionConfig::default(),
            frame_timeout_ms: 400,
            addr: None,
            telemetry: false,
            flight_dir: None,
        }
    }
}

/// Aggregated outcome of one pool-width phase.
#[derive(Clone, Debug, Default)]
pub struct WidthResult {
    /// The pool width this phase ran at.
    pub width: usize,
    /// Wall-clock seconds of the client phase.
    pub wall_secs: f64,
    /// Clean exchanges completed and verified.
    pub completed: u64,
    /// Median clean-exchange latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile clean-exchange latency in milliseconds.
    pub p99_ms: f64,
    /// Unexpected EOFs during clean exchanges — must be zero.
    pub crashed_connections: u64,
    /// Served reports differing from the offline expectation — must be
    /// zero.
    pub mismatches: u64,
    /// Typed `Overloaded` rejections observed (retried with backoff).
    pub overloaded: u64,
    /// Typed `DeadlineExceeded` outcomes observed.
    pub deadline_exceeded: u64,
    /// Degraded reports served (shed ladder engaged).
    pub degraded: u64,
    /// Chaos frames the server rejected with a typed protocol error.
    pub protocol_rejections: u64,
    /// Typed `internal` errors from contained worker panics.
    pub panics_contained: u64,
    /// Requests abandoned after exhausting retries (never silent: each
    /// received only typed Overloaded/DeadlineExceeded answers).
    pub gave_up: u64,
    /// Telemetry snapshots scraped mid-load (0 when telemetry is off).
    pub telemetry_scrapes: u64,
    /// Scrapes that failed to parse, plus flight-dump verification
    /// failures (missing, unparsable, or unrenderable artifacts) — must
    /// be zero.
    pub telemetry_errors: u64,
    /// `flight-panic-*.jsonl` artifacts found and verified after the
    /// phase.
    pub flight_dumps: u64,
    /// The exporter's self-reported busy percentage from the last scrape.
    pub exporter_overhead_pct: f64,
    /// First mismatch description, for diagnosis.
    pub first_mismatch: Option<String>,
}

/// The full harness outcome.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// One entry per width phase.
    pub widths: Vec<WidthResult>,
    /// Clients per phase.
    pub clients: usize,
    /// Clean exchanges demanded of each client.
    pub requests_per_client: usize,
}

impl LoadReport {
    /// Whether every phase upheld the chaos invariant (no crashed clean
    /// connections, no report mismatches).
    pub fn clean(&self) -> bool {
        self.widths
            .iter()
            .all(|w| w.crashed_connections == 0 && w.mismatches == 0)
    }
}

/// One synthetic log with its precomputed offline expectations.
struct Expected {
    log_text: String,
    plain_text: String,
    plain_cands: Vec<WireCandidate>,
    plain_degraded: bool,
    shed_text: String,
    shed_cands: Vec<WireCandidate>,
    enhanced: Option<ExpectedEnhanced>,
}

struct ExpectedEnhanced {
    text: String,
    cands: Vec<WireCandidate>,
    degraded: bool,
    action: String,
}

/// Runs the harness: precompute expectations, then one phase per width.
///
/// # Errors
///
/// Setup failures (artifact load, sample generation, bind, a server that
/// never becomes ready). Chaos-invariant violations are *not* errors —
/// they are reported in the [`LoadReport`] so the caller can both write
/// the bench file and fail the run.
pub fn run_load(cfg: &LoadConfig) -> Result<LoadReport, String> {
    let mut sp = m3d_obs::span("serve_load");
    sp.add("clients", cfg.clients as u64);
    let expected = Arc::new(compute_expected(cfg)?);
    let mut report = LoadReport {
        widths: Vec::new(),
        clients: cfg.clients,
        requests_per_client: cfg.requests_per_client,
    };
    for &width in &cfg.widths {
        report.widths.push(run_width(cfg, width, &expected)?);
    }
    Ok(report)
}

/// Builds the synthetic log pool and its offline expected reports.
fn compute_expected(cfg: &LoadConfig) -> Result<Vec<Expected>, String> {
    let bundle = ArtifactBundle::load(&cfg.spec)?;
    let fsim = bundle.env.fault_sim();
    let diagnoser = Diagnoser::new(&fsim, &bundle.env.scan, bundle.mode, bundle.diag_cfg);
    let samples = try_generate_samples(
        &bundle.env,
        &fsim,
        bundle.mode,
        InjectionKind::Single,
        cfg.log_pool.max(1),
        cfg.spec.sample_seed ^ 0x5eed_10ad,
    )
    .map_err(|e| format!("log-pool generation: {e}"))?;
    Ok(samples
        .iter()
        .map(|s| {
            let plain = diagnoser.diagnose(&s.log);
            let mut shed = plain.clone();
            shed.mark_degraded();
            let enhanced = bundle.localizer.as_ref().map(|loc| {
                let sample = bundle.sample_for(&fsim, &s.log);
                let outcome = loc.enhance(&bundle.env.design, &plain, &sample);
                ExpectedEnhanced {
                    text: outcome.report.to_string(),
                    cands: wire_candidates(&outcome.report),
                    degraded: outcome.report.degraded(),
                    action: match outcome.action {
                        PolicyAction::Reorder => "reorder",
                        PolicyAction::Prune => "prune",
                        PolicyAction::PassThrough => "pass_through",
                        PolicyAction::Degraded => "degraded",
                    }
                    .to_string(),
                }
            });
            Expected {
                log_text: write_failure_log(&s.log),
                plain_text: plain.to_string(),
                plain_cands: wire_candidates(&plain),
                plain_degraded: plain.degraded(),
                shed_text: shed.to_string(),
                shed_cands: wire_candidates(&shed),
                enhanced,
            }
        })
        .collect())
}

/// One width phase: spawn (or target) a server, storm it, aggregate.
fn run_width(
    cfg: &LoadConfig,
    width: usize,
    expected: &Arc<Vec<Expected>>,
) -> Result<WidthResult, String> {
    let phase_flight_dir = cfg.flight_dir.as_ref().map(|d| d.join(format!("w{width}")));
    let (addr, server): (SocketAddr, Option<RunningServer>) = match &cfg.addr {
        Some(a) => (
            a.parse().map_err(|e| format!("bad --addr `{a}`: {e}"))?,
            None,
        ),
        None => {
            let scfg = ServeConfig {
                pool_width: width,
                admission: cfg.admission,
                frame_timeout_ms: cfg.frame_timeout_ms,
                chaos_panic_every: cfg.server_panic_every,
                telemetry_addr: cfg.telemetry.then(|| "127.0.0.1:0".into()),
                flight_dir: phase_flight_dir.clone(),
                ..ServeConfig::default()
            };
            let rs = spawn_server(&cfg.spec, &scfg)?;
            (rs.addr(), Some(rs))
        }
    };
    let telemetry_addr = server.as_ref().and_then(RunningServer::telemetry_addr);
    wait_ready(addr, Duration::from_secs(600))?;

    // Scrape the exporter continuously while the clients storm: the
    // snapshots must parse, and serving must stay bit-identical under
    // concurrent snapshotting.
    let scrape_stop = Arc::new(AtomicBool::new(false));
    let scraper = telemetry_addr.map(|taddr| {
        let stop = Arc::clone(&scrape_stop);
        thread::spawn(move || {
            let (mut scrapes, mut errors, mut overhead) = (0u64, 0u64, 0.0f64);
            let mut req_rate = 0.0f64;
            while !stop.load(Ordering::Relaxed) {
                match crate::telemetry::scrape(taddr) {
                    Ok(snap) => {
                        // A reply that is not a well-formed snapshot is a
                        // plane violation, not a scrape.
                        let shaped = snap.get("type").and_then(m3d_obs::Json::as_str)
                            == Some("telemetry")
                            && ["stats", "counters", "rates", "quantiles", "slo"]
                                .iter()
                                .all(|k| snap.get(k).is_some());
                        if !shaped {
                            errors += 1;
                        } else {
                            scrapes += 1;
                            if let Some(pct) = snap
                                .get("exporter")
                                .and_then(|e| e.get("overhead_pct"))
                                .and_then(m3d_obs::Json::as_f64)
                            {
                                overhead = pct;
                            }
                            if let Some(r) = snap
                                .get("rates")
                                .and_then(|r| r.get("serve.completed"))
                                .and_then(|w| w.get("10s"))
                                .and_then(m3d_obs::Json::as_f64)
                            {
                                req_rate = req_rate.max(r);
                            }
                        }
                    }
                    Err(_) => errors += 1,
                }
                thread::sleep(Duration::from_millis(50));
            }
            (scrapes, errors, overhead, req_rate)
        })
    });

    let t0 = Instant::now();
    let mut handles = Vec::with_capacity(cfg.clients);
    for i in 0..cfg.clients {
        let expected = Arc::clone(expected);
        let cfg = cfg.clone();
        let handle = thread::Builder::new()
            .name(format!("m3d-load-{i}"))
            .stack_size(256 * 1024)
            .spawn(move || run_client(i, addr, &cfg, &expected))
            .map_err(|e| format!("spawning client {i}: {e}"))?;
        handles.push(handle);
    }
    let mut stats = ClientStats::default();
    for h in handles {
        match h.join() {
            Ok(s) => stats.merge(s),
            Err(_) => stats.crashed += 1, // a panicking client is a crash
        }
    }
    let wall_secs = t0.elapsed().as_secs_f64();

    scrape_stop.store(true, Ordering::Relaxed);
    let scraping = telemetry_addr.is_some();
    let (telemetry_scrapes, mut telemetry_errors, exporter_overhead_pct, req_rate) = scraper
        .and_then(|h| h.join().ok())
        .unwrap_or((0, 0, 0.0, 0.0));
    // Liveness, not just well-formedness: a scraped run must land at
    // least one snapshot, and — once anything completed — at least one
    // snapshot must have shown a nonzero completion rate.
    if scraping && (telemetry_scrapes == 0 || (stats.completed > 0 && req_rate <= 0.0)) {
        telemetry_errors += 1;
    }

    let mut panics_contained = 0;
    if let Some(rs) = server {
        shutdown_server(addr);
        let summary = rs.join()?;
        panics_contained = summary.stats.panics_contained;
    }

    // Post-mortem: every contained worker panic must have left one
    // parsable, renderable `flight-panic-*.jsonl` artifact naming the
    // poisoned request.
    let mut flight_dumps = 0u64;
    if let Some(dir) = &phase_flight_dir {
        let (verified, failures) = verify_flight_dumps(dir, panics_contained);
        flight_dumps = verified;
        telemetry_errors += failures;
    }

    stats.latencies_us.sort_unstable();
    let pct = |p: f64| -> f64 {
        if stats.latencies_us.is_empty() {
            return 0.0;
        }
        let idx = ((stats.latencies_us.len() as f64 - 1.0) * p).round() as usize;
        stats.latencies_us[idx.min(stats.latencies_us.len() - 1)] as f64 / 1e3
    };
    Ok(WidthResult {
        width,
        wall_secs,
        completed: stats.completed,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        crashed_connections: stats.crashed,
        mismatches: stats.mismatches,
        overloaded: stats.overloaded,
        deadline_exceeded: stats.deadline_exceeded,
        degraded: stats.degraded_seen,
        protocol_rejections: stats.protocol_rejections,
        panics_contained: panics_contained + stats.panic_errors,
        gave_up: stats.gave_up,
        telemetry_scrapes,
        telemetry_errors,
        flight_dumps,
        exporter_overhead_pct,
        first_mismatch: stats.first_mismatch,
    })
}

/// Counts and verifies `flight-panic-*.jsonl` artifacts in `dir`: each
/// must parse as flight events, render as a timeline, and contain the
/// `panic_contained` event naming the poisoned request. Returns
/// `(verified, failures)`, where `failures` includes a shortfall against
/// the server's contained-panic count.
fn verify_flight_dumps(dir: &std::path::Path, panics_contained: u64) -> (u64, u64) {
    let mut verified = 0u64;
    let mut failures = 0u64;
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        // No directory means no dumps were written: a failure only if
        // panics were actually contained.
        Err(_) => return (0, u64::from(panics_contained > 0)),
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !(name.starts_with("flight-panic-") && name.ends_with(".jsonl")) {
            continue;
        }
        let ok = std::fs::read_to_string(entry.path())
            .ok()
            .and_then(|text| m3d_obs::report::parse_jsonl(&text).ok())
            .is_some_and(|events| {
                let named = events.iter().any(|e| {
                    matches!(e, m3d_obs::Event::Flight { kind, .. } if kind == "panic_contained")
                });
                named && !m3d_obs::report::render_flight_timeline(&events).is_empty()
            });
        if ok {
            verified += 1;
        } else {
            failures += 1;
        }
    }
    if verified < panics_contained {
        failures += panics_contained - verified;
    }
    (verified, failures)
}

/// Renders the bench file in the line-oriented layout `bench_guard`
/// parses (one stage object per line; serve-specific keys ride along and
/// old guards ignore them).
pub fn render_bench_json(report: &LoadReport) -> String {
    let max_width = report.widths.iter().map(|w| w.width).max().unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str("  \"tier\": \"serve\",\n");
    out.push_str(&format!("  \"configured_threads\": {max_width},\n"));
    out.push_str(&format!("  \"clients\": {},\n", report.clients));
    out.push_str(&format!(
        "  \"requests_per_client\": {},\n",
        report.requests_per_client
    ));
    out.push_str("  \"stages\": [\n");
    for (i, w) in report.widths.iter().enumerate() {
        let throughput = if w.wall_secs > 0.0 {
            w.completed as f64 / w.wall_secs
        } else {
            0.0
        };
        let deterministic = w.crashed_connections == 0 && w.mismatches == 0;
        out.push_str(&format!(
            "    {{\"name\": \"serve_w{}\", \"effective_threads\": {}, \"throughput_nt\": {:.3}, \
             \"unit\": \"diagnoses/s\", \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"crashed_connections\": {}, \"mismatches\": {}, \"overloaded\": {}, \
             \"deadline_exceeded\": {}, \"degraded\": {}, \"protocol_rejections\": {}, \
             \"panics_contained\": {}, \"gave_up\": {}, \"completed\": {}, \"wall_secs\": {:.3}, \
             \"telemetry_scrapes\": {}, \"telemetry_errors\": {}, \"flight_dumps\": {}, \
             \"exporter_overhead_pct\": {:.3}, \"deterministic\": {}}}{}\n",
            w.width,
            w.width,
            throughput,
            w.p50_ms,
            w.p99_ms,
            w.crashed_connections,
            w.mismatches,
            w.overloaded,
            w.deadline_exceeded,
            w.degraded,
            w.protocol_rejections,
            w.panics_contained,
            w.gave_up,
            w.completed,
            w.wall_secs,
            w.telemetry_scrapes,
            w.telemetry_errors,
            w.flight_dumps,
            w.exporter_overhead_pct,
            deterministic,
            if i + 1 < report.widths.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"all_deterministic\": {}\n", report.clean()));
    out.push_str("}\n");
    out
}

/// Per-client tallies, merged across the fleet after the phase.
#[derive(Debug, Default)]
struct ClientStats {
    latencies_us: Vec<u64>,
    completed: u64,
    crashed: u64,
    mismatches: u64,
    overloaded: u64,
    deadline_exceeded: u64,
    degraded_seen: u64,
    protocol_rejections: u64,
    panic_errors: u64,
    gave_up: u64,
    first_mismatch: Option<String>,
}

impl ClientStats {
    fn merge(&mut self, other: ClientStats) {
        self.latencies_us.extend(other.latencies_us);
        self.completed += other.completed;
        self.crashed += other.crashed;
        self.mismatches += other.mismatches;
        self.overloaded += other.overloaded;
        self.deadline_exceeded += other.deadline_exceeded;
        self.degraded_seen += other.degraded_seen;
        self.protocol_rejections += other.protocol_rejections;
        self.panic_errors += other.panic_errors;
        self.gave_up += other.gave_up;
        if self.first_mismatch.is_none() {
            self.first_mismatch = other.first_mismatch;
        }
    }

    fn note_mismatch(&mut self, why: String) {
        self.mismatches += 1;
        if self.first_mismatch.is_none() {
            self.first_mismatch = Some(why);
        }
    }
}

/// A framed client connection.
struct Wire {
    stream: TcpStream,
    dec: Decoder,
}

impl Wire {
    fn connect(addr: SocketAddr) -> std::io::Result<Wire> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(Wire {
            stream,
            dec: Decoder::new(),
        })
    }

    /// Connects with retries (the kernel may drop SYNs under a 1000-client
    /// storm; a listener mid-generation-swap answers late).
    fn connect_retry(addr: SocketAddr, budget: Duration) -> std::io::Result<Wire> {
        let t0 = Instant::now();
        loop {
            match Wire::connect(addr) {
                Ok(w) => return Ok(w),
                Err(e) if t0.elapsed() >= budget => return Err(e),
                Err(_) => thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    fn send(&mut self, line: &str) -> std::io::Result<()> {
        write_frame(&mut self.stream, line)
    }

    fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    fn recv(&mut self) -> Result<Response, ProtoError> {
        match read_frame(&mut self.stream, &mut self.dec)? {
            Some(line) => Response::parse(&line),
            None => Err(ProtoError::Io("connection closed".into())),
        }
    }

    /// Reads and discards whatever the server still says (bounded), used
    /// after a chaos action whose aftermath we do not care about.
    fn drain(&mut self) {
        self.stream
            .set_read_timeout(Some(Duration::from_millis(250)))
            .ok();
        for _ in 0..10 {
            if self.recv().is_err() {
                break;
            }
        }
    }
}

/// Pings until the server answers (it may still be training models).
fn wait_ready(addr: SocketAddr, budget: Duration) -> Result<(), String> {
    let t0 = Instant::now();
    loop {
        if let Ok(mut wire) = Wire::connect(addr) {
            if wire.send(&Request::Ping { id: 0 }.encode()).is_ok()
                && matches!(wire.recv(), Ok(Response::Pong { .. }))
            {
                return Ok(());
            }
        }
        if t0.elapsed() >= budget {
            return Err(format!("server at {addr} never became ready"));
        }
        thread::sleep(Duration::from_millis(100));
    }
}

/// Asks an in-process server to drain and stop (best-effort).
fn shutdown_server(addr: SocketAddr) {
    if let Ok(mut wire) = Wire::connect(addr) {
        let _ = wire.send(&Request::Shutdown { id: 0 }.encode());
        let _ = wire.recv();
    }
}

/// One client session: `requests_per_client` clean exchanges, each
/// optionally preceded by a chaos action.
fn run_client(
    index: usize,
    addr: SocketAddr,
    cfg: &LoadConfig,
    expected: &[Expected],
) -> ClientStats {
    let mut stats = ClientStats::default();
    let mut schedule =
        ChaosSchedule::with_rate(cfg.chaos_seed.wrapping_add(index as u64), cfg.chaos_rate);
    let mut next_id = (index as u64) * 1_000_000;
    let mut alloc_id = move || {
        next_id += 1;
        next_id
    };
    let Ok(mut wire) = Wire::connect_retry(addr, Duration::from_secs(30)) else {
        stats.crashed += 1;
        return stats;
    };
    for r in 0..cfg.requests_per_client {
        let exp = &expected[(index.wrapping_mul(31) + r.wrapping_mul(7)) % expected.len()];
        let action = schedule.next_action();
        let duplicate = matches!(action, ChaosAction::Duplicate);
        if !matches!(
            action,
            ChaosAction::Clean | ChaosAction::PanicWorker | ChaosAction::Duplicate
        ) {
            wire = inject_chaos(action, wire, addr, exp, &mut schedule, &mut stats, cfg);
        }
        clean_exchange(
            &mut wire,
            addr,
            cfg,
            exp,
            duplicate,
            &mut schedule,
            &mut alloc_id,
            &mut stats,
        );
    }
    stats
}

/// Performs one protocol-hostile action and returns a fresh connection.
fn inject_chaos(
    action: ChaosAction,
    mut wire: Wire,
    addr: SocketAddr,
    exp: &Expected,
    schedule: &mut ChaosSchedule,
    stats: &mut ClientStats,
    cfg: &LoadConfig,
) -> Wire {
    let frame = encode_frame(
        &Request::Diagnose {
            id: 0,
            log: exp.log_text.clone(),
            deadline_ms: cfg.deadline_ms,
            no_enhance: false,
        }
        .encode(),
    );
    match action {
        ChaosAction::GarbleFrame => {
            let mut bytes = frame;
            schedule.garble(&mut bytes);
            let _ = wire.send_raw(&bytes);
            stats.protocol_rejections += 1;
            wire.drain();
        }
        ChaosAction::TruncateFrame => {
            let keep = schedule.truncate_at(frame.len());
            let _ = wire.send_raw(&frame[..keep]);
            stats.protocol_rejections += 1;
            // Drop mid-frame: the server sees a truncated frame.
        }
        ChaosAction::SlowWrite => {
            // A slowloris writer: stall inside a frame for longer than the
            // server's frame timeout, then try to finish it.
            let split = schedule.split_at(frame.len());
            let _ = wire.send_raw(&frame[..split]);
            thread::sleep(Duration::from_millis(cfg.frame_timeout_ms + 100));
            let _ = wire.send_raw(&frame[split..]);
            stats.protocol_rejections += 1;
            wire.drain();
        }
        ChaosAction::Disconnect => {
            // Send a complete request, vanish before the answer.
            let _ = wire.send_raw(&frame);
        }
        ChaosAction::Clean | ChaosAction::Duplicate | ChaosAction::PanicWorker => {}
    }
    drop(wire);
    Wire::connect_retry(addr, Duration::from_secs(30)).unwrap_or_else(|_| {
        stats.crashed += 1;
        // One more attempt without a budget so the session can go on; a
        // server that truly died will fail every subsequent exchange too.
        Wire::connect_retry(addr, Duration::from_secs(5)).expect("server unreachable")
    })
}

/// Awaits the response for `id`, skipping stale replies (duplicates from
/// earlier chaos, protocol notices) up to a bound.
fn await_id(wire: &mut Wire, id: u64) -> Result<Response, ProtoError> {
    for _ in 0..64 {
        let resp = wire.recv()?;
        let rid = match &resp {
            Response::Report { id, .. }
            | Response::Pong { id, .. }
            | Response::Overloaded { id, .. }
            | Response::DeadlineExceeded { id, .. }
            | Response::Stats { id, .. }
            | Response::Reloaded { id, .. }
            | Response::ShuttingDown { id } => Some(*id),
            Response::Error { id, .. } => *id,
        };
        match rid {
            Some(r) if r == id => return Ok(resp),
            // An un-attributed error means the server is about to close
            // this connection (protocol violation we caused earlier).
            None => return Ok(resp),
            _ => {} // stale reply to an older id — skip
        }
    }
    Err(ProtoError::BadMessage("no reply within 64 frames".into()))
}

/// Checks a served report against the offline expectation, bit for bit.
fn verify_report(
    exp: &Expected,
    degraded: bool,
    enhanced: bool,
    action: Option<&str>,
    text: &str,
    candidates: &[WireCandidate],
) -> Result<(), String> {
    let (want_text, want_cands, want_degraded, want_action): (
        &str,
        &[WireCandidate],
        bool,
        Option<&str>,
    ) = if enhanced {
        match &exp.enhanced {
            Some(e) => (&e.text, &e.cands, e.degraded, Some(e.action.as_str())),
            None => return Err("server enhanced but no model was configured".into()),
        }
    } else if degraded && !exp.plain_degraded {
        (&exp.shed_text, &exp.shed_cands, true, None)
    } else {
        (&exp.plain_text, &exp.plain_cands, exp.plain_degraded, None)
    };
    if text != want_text {
        return Err(format!(
            "report text mismatch:\n--- served\n{text}\n--- expected\n{want_text}"
        ));
    }
    if candidates != want_cands {
        return Err("candidate list mismatch".into());
    }
    if degraded != want_degraded {
        return Err(format!(
            "degraded tag mismatch: served {degraded}, expected {want_degraded}"
        ));
    }
    if action != want_action {
        return Err(format!(
            "action mismatch: served {action:?}, expected {want_action:?}"
        ));
    }
    Ok(())
}

/// One clean exchange with retry-storm semantics: resend with seeded
/// exponential backoff after typed Overloaded/DeadlineExceeded/internal
/// answers; count a crash only on an unexpected EOF.
#[allow(clippy::too_many_arguments)]
fn clean_exchange(
    wire: &mut Wire,
    addr: SocketAddr,
    cfg: &LoadConfig,
    exp: &Expected,
    duplicate: bool,
    schedule: &mut ChaosSchedule,
    alloc_id: &mut impl FnMut() -> u64,
    stats: &mut ClientStats,
) {
    let mut attempt = 0u32;
    loop {
        let id = alloc_id();
        let line = Request::Diagnose {
            id,
            log: exp.log_text.clone(),
            deadline_ms: cfg.deadline_ms,
            no_enhance: false,
        }
        .encode();
        wire.stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .ok();
        let t0 = Instant::now();
        let sent = if duplicate {
            wire.send(&line).and_then(|()| wire.send(&line))
        } else {
            wire.send(&line)
        };
        if sent.is_err() {
            attempt += 1;
            if attempt > 12 {
                stats.crashed += 1;
                return;
            }
            if let Ok(fresh) = Wire::connect_retry(addr, Duration::from_secs(10)) {
                *wire = fresh;
            }
            continue;
        }
        match await_id(wire, id) {
            Ok(Response::Report {
                degraded,
                enhanced,
                action,
                text,
                candidates,
                ..
            }) => {
                stats
                    .latencies_us
                    .push(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                if degraded {
                    stats.degraded_seen += 1;
                }
                match verify_report(
                    exp,
                    degraded,
                    enhanced,
                    action.as_deref(),
                    &text,
                    &candidates,
                ) {
                    Ok(()) => stats.completed += 1,
                    Err(why) => stats.note_mismatch(why),
                }
                if duplicate {
                    // The duplicated request is a distinct admission with
                    // the same id; its answer must verify identically
                    // (allowing a different shed/typed outcome under
                    // load).
                    wire.stream
                        .set_read_timeout(Some(Duration::from_millis(2_000)))
                        .ok();
                    // Any other typed outcome (or a slow reply) is fine;
                    // only a Report that diverges counts against us.
                    if let Ok(Response::Report {
                        degraded,
                        enhanced,
                        action,
                        text,
                        candidates,
                        ..
                    }) = await_id(wire, id)
                    {
                        if let Err(why) = verify_report(
                            exp,
                            degraded,
                            enhanced,
                            action.as_deref(),
                            &text,
                            &candidates,
                        ) {
                            stats.note_mismatch(why);
                        }
                    }
                }
                return;
            }
            Ok(Response::Overloaded { retry_after_ms, .. }) => {
                stats.overloaded += 1;
                attempt += 1;
                if attempt > 10 {
                    stats.gave_up += 1;
                    return;
                }
                let ms = schedule.backoff_ms(attempt, retry_after_ms.max(1), 500);
                thread::sleep(Duration::from_millis(ms));
            }
            Ok(Response::DeadlineExceeded { .. }) => {
                stats.deadline_exceeded += 1;
                attempt += 1;
                if attempt > 10 {
                    stats.gave_up += 1;
                    return;
                }
            }
            Ok(Response::Error { kind, .. }) if kind == "internal" => {
                stats.panic_errors += 1;
                attempt += 1;
                if attempt > 10 {
                    stats.gave_up += 1;
                    return;
                }
            }
            Ok(other) => {
                stats.note_mismatch(format!("unexpected response to a clean request: {other:?}"));
                return;
            }
            Err(_) => {
                stats.crashed += 1;
                attempt += 1;
                if attempt > 3 {
                    return;
                }
                if let Ok(fresh) = Wire::connect_retry(addr, Duration::from_secs(10)) {
                    *wire = fresh;
                }
            }
        }
    }
}
