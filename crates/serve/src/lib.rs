//! `m3d-serve`: a long-running, crash-tolerant diagnosis service.
//!
//! The volume-diagnosis flow this workspace reproduces is batch-shaped:
//! load a design, run the pipeline, exit. Production test floors do not
//! work that way — testers stream failure logs continuously, and the
//! diagnosis backend must stay up for weeks, absorb malformed input,
//! survive its own bugs, and degrade predictably under load. This crate
//! is that backend, built on `std` only:
//!
//! * [`proto`] — a hand-rolled length-prefixed JSONL wire protocol over
//!   TCP, reusing the deterministic `m3d_obs` JSON codec. Every
//!   malformation is a typed [`proto::ProtoError`]; the incremental
//!   [`proto::Decoder`] is pure and directly fuzzable.
//! * [`artifacts`] — the artifact cache: netlists, pattern sets, and
//!   trained model weights loaded once per generation, CRC-verified
//!   through the `m3d_resilient` checkpoint codec, atomically
//!   hot-reloadable while the old generation keeps serving.
//! * [`admission`] — bounded queues with typed
//!   [`Overloaded`](proto::Response::Overloaded) backpressure, per-request
//!   deadlines, and a load-shedding watermark past which requests are
//!   served the baseline ranking tagged `degraded` (the GNN enhancement
//!   stage is shed first).
//! * [`server`] — the generation loop: an acceptor, per-connection
//!   handler threads, a deadline reaper, and a batcher that scores
//!   requests across connections on the `m3d_par` pool with per-request
//!   spans and panic isolation (`try_par_map`).
//! * [`loadgen`] — a deterministic load generator and chaos client:
//!   thousands of concurrent synthetic tester sessions with seeded fault
//!   injection, verifying every served report bit-for-bit against an
//!   offline [`m3d_diagnosis::Diagnoser`] run.
//! * [`telemetry`] — the live telemetry plane (DESIGN.md §17): a
//!   streaming exporter serving lock-bounded registry snapshots with
//!   rolling rates and sliding quantiles over the same wire framing,
//!   continuous SLO burn-rate evaluation, and flight-recorder dumps on
//!   panic, frame poison, deadline storms, and shutdown.
//!
//! The invariant everything above defends (DESIGN.md §16): **for every
//! well-formed request, the served report is bit-identical to the offline
//! diagnosis** — at any pool width, under any chaos schedule. Failures of
//! infrastructure (overload, deadlines, panics, hostile clients) surface
//! as typed protocol outcomes, never as silently wrong reports.

pub mod admission;
pub mod artifacts;
pub mod loadgen;
pub mod proto;
pub mod server;
pub mod telemetry;

pub use admission::AdmissionConfig;
pub use artifacts::{ArtifactBundle, BundleSource, BundleSpec, ModelProvenance};
pub use loadgen::{render_bench_json, run_load, LoadConfig, LoadReport, WidthResult};
pub use proto::{ProtoError, Request, Response};
pub use server::{serve, spawn_server, RunningServer, ServeConfig, ServeSummary};
pub use telemetry::{dump_flight, scrape, TelemetryConfig};
