//! The server: a generation loop around an acceptor, per-connection
//! handlers, a cross-connection batcher, and a deadline reaper.
//!
//! # Ownership: the generation loop
//!
//! [`m3d_diagnosis::Diagnoser`] borrows a `FaultSim`, which borrows the
//! design — a deliberately borrow-heavy design that this workspace cannot
//! paper over with self-referential tricks (`unsafe` is denied). The
//! server therefore runs *generations*: each iteration owns one
//! [`ArtifactBundle`], builds the simulator and diagnoser on the stack,
//! and opens a [`std::thread::scope`] in which every worker borrows them.
//! Hot reload is a generation swap: the reloading connection loads and
//! validates the **new** bundle first (the old generation keeps serving
//! throughout), parks it, and asks the scope to wind down; the loop then
//! swaps bundles and re-enters. A failed load is a typed error to the
//! requesting client and nothing else changes — reload is atomic.
//!
//! # Failure containment
//!
//! * A malformed frame is a typed [`ProtoError`] response and a closed
//!   connection — never a panic (`tests/proto_fuzz.rs`).
//! * A panicking connection handler is caught, counted, and closes only
//!   its own socket.
//! * A panicking diagnosis worker is caught by the `m3d_par` `try_*`
//!   containment; the batch re-runs its jobs individually so the poisoned
//!   request gets a typed `internal` error while every sibling completes.
//! * A request past its budget is cancelled cooperatively (the reaper
//!   sets its flag; the scoring loops poll it) and answered with
//!   `DeadlineExceeded`.
//!
//! The invariant the service tests pin down: for every well-formed
//! request, the served report is bit-identical to an offline
//! [`Diagnoser::diagnose`] run — at any pool width, under any chaos
//! schedule.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use m3d_diagnosis::{Cancelled, Diagnoser};
use m3d_fault_localization::PolicyAction;
use m3d_obs::SloSpec;
use m3d_tdf::{read_failure_log, FailureLog, FaultSim};

use crate::admission::{admission_queue, Admission, AdmissionConfig, Job};
use crate::artifacts::{ArtifactBundle, BundleSpec};
use crate::proto::{
    wire_candidates, write_frame, Decoder, ProtoError, Request, Response, StatsSnapshot,
};
use crate::telemetry::{self, TelemetryConfig};

/// Server configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// `m3d_par` pool width for batched diagnosis scoring.
    pub pool_width: usize,
    /// Admission / scheduling knobs.
    pub admission: AdmissionConfig,
    /// Socket poll tick in milliseconds (read timeout granularity).
    pub poll_ms: u64,
    /// A *partial* frame older than this is a slow-writer attack: the
    /// connection gets a typed protocol error and is closed. Idle
    /// connections at a frame boundary are unaffected.
    pub frame_timeout_ms: u64,
    /// Chaos hook: every Nth admitted job panics inside its diagnosis
    /// worker (`None` in production). Drives the panic-containment tests.
    pub chaos_panic_every: Option<u64>,
    /// Bind address for the telemetry exporter (`None` disables it;
    /// `127.0.0.1:0` picks a free port). See [`crate::telemetry`].
    pub telemetry_addr: Option<String>,
    /// Directory for flight-recorder dumps (`None` disables dumping).
    /// Panics, frame poison, deadline storms, and shutdown each leave a
    /// `flight-*.jsonl` artifact here via the atomic-write path.
    pub flight_dir: Option<PathBuf>,
    /// SLO spec evaluated by the exporter, e.g.
    /// `availability>=0.99,p99_ms<=250,degraded_frac<=0.1`.
    pub slo: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            pool_width: 1,
            admission: AdmissionConfig::default(),
            poll_ms: 5,
            frame_timeout_ms: 2_000,
            chaos_panic_every: None,
            telemetry_addr: None,
            flight_dir: None,
            slo: None,
        }
    }
}

/// Monotonic service counters, shared across generations.
#[derive(Debug, Default)]
struct Counters {
    generation: AtomicU64,
    completed: AtomicU64,
    degraded: AtomicU64,
    overloaded: AtomicU64,
    deadline_exceeded: AtomicU64,
    protocol_errors: AtomicU64,
    panics_contained: AtomicU64,
    connections: AtomicU64,
}

impl Counters {
    fn bump(&self, field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self, queue_depth: u64) -> StatsSnapshot {
        StatsSnapshot {
            generation: self.generation.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            panics_contained: self.panics_contained.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            queue_depth,
        }
    }
}

/// What a server run amounted to, returned after shutdown.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeSummary {
    /// Artifact generations served (1 + reloads).
    pub generations: u64,
    /// Final counter values.
    pub stats: StatsSnapshot,
}

/// A server running on a background thread (the in-process mode the load
/// harness and the service tests use).
pub struct RunningServer {
    addr: SocketAddr,
    telemetry_addr: Option<SocketAddr>,
    join: thread::JoinHandle<Result<ServeSummary, String>>,
}

impl RunningServer {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The telemetry exporter's bound address, when one was configured.
    pub fn telemetry_addr(&self) -> Option<SocketAddr> {
        self.telemetry_addr
    }

    /// Waits for the server to shut down (send it a `shutdown` request).
    ///
    /// # Errors
    ///
    /// The server's fatal error, if it died instead of draining.
    pub fn join(self) -> Result<ServeSummary, String> {
        self.join
            .join()
            .map_err(|_| "server thread panicked".to_string())?
    }
}

/// Binds and serves on the calling thread until a `shutdown` request.
///
/// # Errors
///
/// Bind or initial artifact-load failure.
pub fn serve(spec: &BundleSpec, cfg: &ServeConfig) -> Result<ServeSummary, String> {
    let listener = bind(cfg)?;
    let telemetry_listener = bind_telemetry_opt(cfg)?;
    serve_on(listener, telemetry_listener, spec, cfg)
}

/// Spawns a server on a background thread, returning once it is bound and
/// accepting.
///
/// # Errors
///
/// Bind failure (artifact-load failures surface through
/// [`RunningServer::join`]).
pub fn spawn_server(spec: &BundleSpec, cfg: &ServeConfig) -> Result<RunningServer, String> {
    let listener = bind(cfg)?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let telemetry_listener = bind_telemetry_opt(cfg)?;
    let telemetry_addr = match &telemetry_listener {
        Some(l) => Some(l.local_addr().map_err(|e| e.to_string())?),
        None => None,
    };
    let spec = spec.clone();
    let cfg = cfg.clone();
    let join = thread::Builder::new()
        .name("m3d-serve".into())
        .spawn(move || serve_on(listener, telemetry_listener, &spec, &cfg))
        .map_err(|e| e.to_string())?;
    Ok(RunningServer {
        addr,
        telemetry_addr,
        join,
    })
}

fn bind(cfg: &ServeConfig) -> Result<TcpListener, String> {
    let listener =
        TcpListener::bind(&cfg.addr).map_err(|e| format!("binding {}: {e}", cfg.addr))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("nonblocking listener: {e}"))?;
    Ok(listener)
}

fn bind_telemetry_opt(cfg: &ServeConfig) -> Result<Option<TcpListener>, String> {
    cfg.telemetry_addr
        .as_deref()
        .map(telemetry::bind_telemetry)
        .transpose()
}

fn serve_on(
    listener: TcpListener,
    telemetry_listener: Option<TcpListener>,
    spec: &BundleSpec,
    cfg: &ServeConfig,
) -> Result<ServeSummary, String> {
    let slo = match &cfg.slo {
        Some(text) => SloSpec::parse(text).map_err(|e| format!("bad --slo spec: {e}"))?,
        None => SloSpec::default(),
    };
    let mut bundle = ArtifactBundle::load(spec)?;
    let counters = Arc::new(Counters::default());
    let shutdown = Arc::new(AtomicBool::new(false));

    // The telemetry plane needs metrics; a plain server run should not
    // start accumulating an unbounded trace. Leave everything alone when
    // the operator already enabled recording (e.g. `--trace`).
    if telemetry_listener.is_some() || cfg.flight_dir.is_some() {
        if !m3d_obs::enabled() {
            m3d_obs::set_enabled(true);
            m3d_obs::set_trace_enabled(false);
        }
        m3d_obs::set_flight_enabled(true);
    }
    let telemetry_join = telemetry_listener.map(|tl| {
        let c = Arc::clone(&counters);
        telemetry::spawn_telemetry(
            tl,
            Arc::new(move || c.snapshot(0)),
            TelemetryConfig {
                slo,
                flight_dir: cfg.flight_dir.clone(),
                storm_per_s: telemetry::STORM_PER_S,
            },
            Arc::clone(&shutdown),
        )
    });

    let mut generations = 0u64;
    loop {
        generations += 1;
        counters.generation.store(generations, Ordering::Relaxed);
        let next = run_generation(&listener, &bundle, spec, cfg, &counters, &shutdown);
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        match next {
            Some(fresh) => bundle = fresh,
            // Generation ended without a successor or a shutdown — only
            // reachable if every exit path raced; treat as shutdown.
            None => break,
        }
    }
    shutdown.store(true, Ordering::Relaxed);
    if let Some(j) = telemetry_join {
        let _ = j.join();
    }
    // The drain-path stand-in for a SIGTERM handler (std offers no signal
    // API): a protocol `shutdown` lands here and leaves a final dump.
    if let Some(dir) = &cfg.flight_dir {
        let _ = telemetry::dump_flight(dir, "shutdown");
    }
    Ok(ServeSummary {
        generations,
        stats: counters.snapshot(0),
    })
}

/// Everything a connection handler borrows from its generation.
struct GenCtx<'g> {
    spec: &'g BundleSpec,
    cfg: &'g ServeConfig,
    counters: &'g Counters,
    shutdown: &'g AtomicBool,
    gen_exit: &'g AtomicBool,
    pending_bundle: &'g Mutex<Option<ArtifactBundle>>,
    admission: &'g Admission,
    reaper: &'g Mutex<Vec<(Instant, Arc<AtomicBool>)>>,
    active_conns: &'g AtomicUsize,
}

/// Runs one generation to completion; returns the next bundle on reload.
fn run_generation(
    listener: &TcpListener,
    bundle: &ArtifactBundle,
    spec: &BundleSpec,
    cfg: &ServeConfig,
    counters: &Counters,
    shutdown: &AtomicBool,
) -> Option<ArtifactBundle> {
    let fsim = bundle.env.fault_sim();
    let diagnoser = Diagnoser::new(&fsim, &bundle.env.scan, bundle.mode, bundle.diag_cfg);
    let (admission, jobs_rx) = admission_queue(cfg.admission);
    let gen_exit = AtomicBool::new(false);
    let pending_bundle = Mutex::new(None);
    let reaper = Mutex::new(Vec::new());
    let active_conns = AtomicUsize::new(0);
    let ctx = GenCtx {
        spec,
        cfg,
        counters,
        shutdown,
        gen_exit: &gen_exit,
        pending_bundle: &pending_bundle,
        admission: &admission,
        reaper: &reaper,
        active_conns: &active_conns,
    };

    thread::scope(|s| {
        // Deadline reaper: sets cancellation flags the instant a budget
        // expires, so jobs mid-batch stop scoring cooperatively.
        s.spawn(|| {
            while !gen_exit.load(Ordering::Relaxed) || active_conns.load(Ordering::Relaxed) > 0 {
                let now = Instant::now();
                {
                    let mut reg = reaper.lock().expect("reaper registry");
                    reg.retain(|(deadline, flag)| {
                        if *deadline <= now {
                            flag.store(true, Ordering::Relaxed);
                            false
                        } else {
                            true
                        }
                    });
                }
                thread::sleep(Duration::from_millis(2));
            }
        });

        // Batcher: drains admitted jobs across all connections and scores
        // them together over the worker pool. It owns the receiver
        // (`Receiver` is `Send` but not `Sync`).
        let batcher_ctx = &ctx;
        let batcher_diag = &diagnoser;
        let batcher_fsim = &fsim;
        s.spawn(move || {
            run_batcher(&jobs_rx, batcher_ctx, batcher_diag, bundle, batcher_fsim);
        });

        // Acceptor: polls the nonblocking listener so it can observe the
        // exit flags (std offers no unblockable accept).
        loop {
            if gen_exit.load(Ordering::Relaxed) || shutdown.load(Ordering::Relaxed) {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let conn_id = counters.connections.fetch_add(1, Ordering::Relaxed) + 1;
                    m3d_obs::counter("serve.connections", 1);
                    active_conns.fetch_add(1, Ordering::Relaxed);
                    let ctx = &ctx;
                    let spawned = thread::Builder::new()
                        .name("m3d-serve-conn".into())
                        .stack_size(256 * 1024)
                        .spawn_scoped(s, move || {
                            let result = catch_unwind(AssertUnwindSafe(|| {
                                handle_conn(stream, ctx, conn_id)
                            }));
                            if result.is_err() {
                                // The handler panicked: contained here, so
                                // one poisoned connection cannot take the
                                // process (or its siblings) down.
                                ctx.counters.bump(&ctx.counters.panics_contained);
                                m3d_obs::counter("serve.panics_contained", 1);
                            }
                            ctx.active_conns.fetch_sub(1, Ordering::Relaxed);
                        });
                    if spawned.is_err() {
                        active_conns.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(_) => thread::sleep(Duration::from_millis(5)),
            }
        }
        // The scope now joins the reaper, the batcher, and every live
        // connection handler before the borrows of `bundle` end.
    });

    let next = pending_bundle.lock().expect("pending bundle").take();
    next
}

/// The batcher loop: deadline-checks, batches, scores, replies.
fn run_batcher(
    jobs_rx: &Receiver<Job>,
    ctx: &GenCtx<'_>,
    diagnoser: &Diagnoser<'_>,
    bundle: &ArtifactBundle,
    fsim: &FaultSim<'_>,
) {
    let batch_max = ctx.admission.config().batch_max.max(1);
    loop {
        let first = match jobs_rx.recv_timeout(Duration::from_millis(10)) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => {
                // Exit only once no handler can admit another job.
                if ctx.gen_exit.load(Ordering::Relaxed)
                    && ctx.active_conns.load(Ordering::Relaxed) == 0
                {
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        ctx.admission.note_dequeued();
        let mut batch = vec![first];
        while batch.len() < batch_max {
            match jobs_rx.try_recv() {
                Ok(job) => {
                    ctx.admission.note_dequeued();
                    batch.push(job);
                }
                Err(_) => break,
            }
        }
        process_batch(batch, ctx, diagnoser, bundle, fsim);
    }
}

fn process_batch(
    batch: Vec<Job>,
    ctx: &GenCtx<'_>,
    diagnoser: &Diagnoser<'_>,
    bundle: &ArtifactBundle,
    fsim: &FaultSim<'_>,
) {
    // Jobs that expired while queued are answered without scoring.
    let now = Instant::now();
    let (live, expired): (Vec<Job>, Vec<Job>) = batch
        .into_iter()
        .partition(|j| j.deadline > now && !j.cancel.load(Ordering::Relaxed));
    for job in expired {
        ctx.counters.bump(&ctx.counters.deadline_exceeded);
        m3d_obs::counter("serve.deadline_exceeded", 1);
        let _ = job.reply.send(Response::DeadlineExceeded {
            id: job.id,
            budget_ms: job.budget_ms,
        });
    }
    if live.is_empty() {
        return;
    }

    let mut sp = m3d_obs::span("serve_batch");
    sp.add("jobs", live.len() as u64);
    let width = ctx.cfg.pool_width.max(1);
    // `with_threads` is a thread-local override, so the batcher must apply
    // the pool width itself — connection threads never score.
    let scored = m3d_par::with_threads(width, || {
        m3d_par::try_par_map(&live, |job| run_job(job, ctx, diagnoser, bundle, fsim))
    });
    match scored {
        Ok(responses) => {
            for (job, resp) in live.iter().zip(responses) {
                finish_job(job, resp, ctx);
            }
        }
        Err(_first_panic) => {
            // A worker panicked. Every sibling's result is discarded with
            // the batch, so re-run each job alone: the poisoned one (the
            // chaos hook keys on the stable admission sequence number)
            // earns a typed internal error, the rest complete normally.
            for job in &live {
                let one = std::slice::from_ref(job);
                let retried = m3d_par::with_threads(width, || {
                    m3d_par::try_par_map(one, |job| run_job(job, ctx, diagnoser, bundle, fsim))
                });
                match retried {
                    Ok(mut responses) => {
                        let resp = responses.pop().expect("one job in, one response out");
                        finish_job(job, resp, ctx);
                    }
                    Err(p) => {
                        ctx.counters.bump(&ctx.counters.panics_contained);
                        m3d_obs::counter("serve.panics_contained", 1);
                        m3d_obs::counter("serve.internal_errors", 1);
                        m3d_obs::flight_record(
                            "serve",
                            "panic_contained",
                            format!("id={} seq={}: {}", job.id, job.seq, p.message),
                        );
                        // A contained worker panic is exactly what the
                        // flight recorder exists for: dump unconditionally,
                        // one artifact per poisoned sequence number.
                        if let Some(dir) = &ctx.cfg.flight_dir {
                            let _ = telemetry::dump_flight(dir, &format!("panic-seq{}", job.seq));
                        }
                        finish_job(
                            job,
                            Response::Error {
                                id: Some(job.id),
                                kind: "internal".into(),
                                message: format!("diagnosis worker panicked: {}", p.message),
                            },
                            ctx,
                        );
                    }
                }
            }
        }
    }
}

/// Scores one job inside a pool worker. Runs under `try_par_map`, so a
/// panic here (chaos hook included) is contained per job.
fn run_job(
    job: &Job,
    ctx: &GenCtx<'_>,
    diagnoser: &Diagnoser<'_>,
    bundle: &ArtifactBundle,
    fsim: &FaultSim<'_>,
) -> Response {
    let mut sp = m3d_obs::span("serve_request");
    sp.add("entries", job.log.len() as u64);
    // Recorded *before* the chaos panic point, so a worker that dies here
    // leaves the identity of the request that killed it in the ring.
    m3d_obs::flight_record(
        "pool",
        "job",
        format!("id={} seq={} entries={}", job.id, job.seq, job.log.len()),
    );
    if let Some(every) = ctx.cfg.chaos_panic_every {
        if every > 0 && job.seq.is_multiple_of(every) {
            panic!("chaos: injected worker panic (seq {})", job.seq);
        }
    }
    let report = match diagnoser.try_diagnose(&job.log, &job.cancel) {
        Ok(report) => report,
        Err(Cancelled) => {
            return Response::DeadlineExceeded {
                id: job.id,
                budget_ms: job.budget_ms,
            }
        }
    };
    // The budget covers enhancement too.
    if job.cancel.load(Ordering::Relaxed) {
        return Response::DeadlineExceeded {
            id: job.id,
            budget_ms: job.budget_ms,
        };
    }
    let (report, enhanced, action) = if job.degrade {
        // Shedding rung two: admitted past the watermark, so the optional
        // enhancement stage is skipped and the baseline ranking is served,
        // tagged so the client knows it may retry later for the full path.
        let mut r = report;
        r.mark_degraded();
        sp.add("shed_degraded", 1);
        (r, false, None)
    } else {
        match (&bundle.localizer, job.no_enhance) {
            (Some(loc), false) => {
                let sample = bundle.sample_for(fsim, &job.log);
                let outcome = loc.enhance(&bundle.env.design, &report, &sample);
                let action = match outcome.action {
                    PolicyAction::Reorder => "reorder",
                    PolicyAction::Prune => "prune",
                    PolicyAction::PassThrough => "pass_through",
                    PolicyAction::Degraded => "degraded",
                };
                (outcome.report, true, Some(action.to_string()))
            }
            _ => (report, false, None),
        }
    };
    Response::Report {
        id: job.id,
        degraded: report.degraded(),
        enhanced,
        action,
        text: report.to_string(),
        candidates: wire_candidates(&report),
    }
}

/// Accounts for a finished job and hands its response to the connection.
fn finish_job(job: &Job, resp: Response, ctx: &GenCtx<'_>) {
    match &resp {
        Response::Report { degraded, .. } => {
            ctx.counters.bump(&ctx.counters.completed);
            m3d_obs::counter("serve.completed", 1);
            if *degraded {
                ctx.counters.bump(&ctx.counters.degraded);
                m3d_obs::counter("serve.degraded", 1);
            }
        }
        Response::DeadlineExceeded { .. } => {
            ctx.counters.bump(&ctx.counters.deadline_exceeded);
            m3d_obs::counter("serve.deadline_exceeded", 1);
        }
        _ => {}
    }
    m3d_obs::observe_with(
        "serve.latency_ms",
        &m3d_obs::LATENCY_MS_BOUNDS,
        job.enqueued.elapsed().as_secs_f64() * 1e3,
    );
    // The handler (and its client) may already be gone — that is its
    // problem, not the batcher's.
    let _ = job.reply.send(resp);
}

/// One connection: a poll loop multiplexing socket reads, batcher
/// replies, and the generation exit flags.
fn handle_conn(mut stream: TcpStream, ctx: &GenCtx<'_>, conn_id: u64) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(ctx.cfg.poll_ms.max(1))));
    let (reply_tx, reply_rx) = channel::<Response>();
    let mut dec = Decoder::new();
    let mut chunk = [0u8; 4096];
    let mut pending = 0usize; // outstanding diagnose jobs
    let mut partial_since: Option<Instant> = None;
    let mut closing = false; // stop reading, drain replies, then close

    loop {
        while let Ok(resp) = reply_rx.try_recv() {
            pending -= 1;
            if write_frame(&mut stream, &resp.encode()).is_err() {
                return; // client went away; remaining replies are moot
            }
        }
        if closing || ctx.gen_exit.load(Ordering::Relaxed) {
            if pending == 0 {
                return;
            }
            thread::sleep(Duration::from_millis(1));
            continue;
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if dec.has_partial() {
                    // Mid-frame disconnect: a truncated frame.
                    ctx.counters.bump(&ctx.counters.protocol_errors);
                    m3d_obs::counter("serve.protocol_errors", 1);
                    m3d_obs::flight_record(
                        &format!("conn-{conn_id}"),
                        "reject",
                        "mid-frame disconnect",
                    );
                }
                closing = true;
            }
            Ok(n) => {
                dec.push(&chunk[..n]);
                loop {
                    match dec.next_frame() {
                        Ok(Some(frame)) => {
                            partial_since = None;
                            if !handle_frame(
                                &frame,
                                &mut stream,
                                ctx,
                                &reply_tx,
                                &mut pending,
                                conn_id,
                            ) {
                                closing = true;
                                break;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            protocol_reject(&mut stream, ctx, &e, conn_id);
                            closing = true;
                            break;
                        }
                    }
                }
                if !closing {
                    if dec.has_partial() {
                        partial_since.get_or_insert_with(Instant::now);
                    } else {
                        partial_since = None;
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle tick. A *partial* frame that has stopped making
                // progress for longer than the frame timeout is a
                // slow-writer (slowloris) attack: reject and close.
                if let Some(since) = partial_since {
                    if since.elapsed() >= Duration::from_millis(ctx.cfg.frame_timeout_ms) {
                        protocol_reject(&mut stream, ctx, &ProtoError::Timeout, conn_id);
                        closing = true;
                    }
                }
            }
            Err(_) => closing = true,
        }
    }
}

/// Counts and reports a protocol violation (best-effort) before the
/// caller closes the connection.
fn protocol_reject(stream: &mut TcpStream, ctx: &GenCtx<'_>, err: &ProtoError, conn_id: u64) {
    ctx.counters.bump(&ctx.counters.protocol_errors);
    m3d_obs::counter("serve.protocol_errors", 1);
    m3d_obs::flight_record(&format!("conn-{conn_id}"), "reject", err.to_string());
    // Frame poison is a dump trigger, rate-limited so a hostile client
    // spraying garbage cannot turn the recorder into a disk-filler.
    if let Some(dir) = &ctx.cfg.flight_dir {
        let _ = telemetry::dump_flight_limited(dir, "poison", Duration::from_millis(500));
    }
    let resp = Response::Error {
        id: None,
        kind: "protocol".into(),
        message: err.to_string(),
    };
    let _ = write_frame(stream, &resp.encode());
}

/// Dispatches one parsed frame; returns `false` when the connection must
/// close (protocol violation or server wind-down).
fn handle_frame(
    frame: &str,
    stream: &mut TcpStream,
    ctx: &GenCtx<'_>,
    reply_tx: &Sender<Response>,
    pending: &mut usize,
    conn_id: u64,
) -> bool {
    let req = match Request::parse(frame) {
        Ok(req) => req,
        Err(e) => {
            protocol_reject(stream, ctx, &e, conn_id);
            return false;
        }
    };
    match req {
        Request::Ping { id } => send_now(
            stream,
            &Response::Pong {
                id,
                generation: ctx.counters.generation.load(Ordering::Relaxed),
            },
        ),
        Request::Stats { id } => {
            let snapshot = ctx.counters.snapshot(ctx.admission.depth() as u64);
            send_now(stream, &Response::Stats { id, snapshot })
        }
        Request::Shutdown { id } => {
            m3d_obs::flight_record(
                "serve",
                "shutdown",
                format!("drain requested by conn-{conn_id}"),
            );
            ctx.shutdown.store(true, Ordering::Relaxed);
            ctx.gen_exit.store(true, Ordering::Relaxed);
            send_now(stream, &Response::ShuttingDown { id });
            false
        }
        Request::Reload { id } => {
            // Load and validate the *new* bundle before anything changes;
            // the current generation keeps serving while this runs.
            match ArtifactBundle::load(ctx.spec) {
                Ok(fresh) => {
                    *ctx.pending_bundle.lock().expect("pending bundle") = Some(fresh);
                    ctx.gen_exit.store(true, Ordering::Relaxed);
                    send_now(
                        stream,
                        &Response::Reloaded {
                            id,
                            generation: ctx.counters.generation.load(Ordering::Relaxed) + 1,
                        },
                    );
                    false
                }
                Err(message) => send_now(
                    stream,
                    &Response::Error {
                        id: Some(id),
                        kind: "reload_failed".into(),
                        message,
                    },
                ),
            }
        }
        Request::Diagnose {
            id,
            log,
            deadline_ms,
            no_enhance,
        } => {
            let log: FailureLog = match read_failure_log(&log) {
                Ok(log) => log,
                Err(e) => {
                    // A well-framed request with an unreadable log is a
                    // client data error, not a protocol violation: answer
                    // typed and keep the connection.
                    return send_now(
                        stream,
                        &Response::Error {
                            id: Some(id),
                            kind: "bad_log".into(),
                            message: e.to_string(),
                        },
                    );
                }
            };
            match ctx
                .admission
                .admit(id, log, deadline_ms, no_enhance, reply_tx.clone())
            {
                Ok((deadline, cancel)) => {
                    m3d_obs::flight_record(
                        &format!("conn-{conn_id}"),
                        "admit",
                        format!("id={id} deadline_ms={}", deadline_ms.unwrap_or(0)),
                    );
                    ctx.reaper
                        .lock()
                        .expect("reaper registry")
                        .push((deadline, cancel));
                    *pending += 1;
                    true
                }
                Err(resp) => {
                    if matches!(resp, Response::Overloaded { .. }) {
                        ctx.counters.bump(&ctx.counters.overloaded);
                        m3d_obs::counter("serve.overloaded", 1);
                    }
                    send_now(stream, &resp)
                }
            }
        }
    }
}

/// Writes a response inline; `false` (close) on a dead socket.
fn send_now(stream: &mut TcpStream, resp: &Response) -> bool {
    write_frame(stream, &resp.encode()).is_ok()
}
