//! The live telemetry plane: a streaming exporter, continuous SLO
//! evaluation, and flight-recorder dumps (DESIGN.md §17).
//!
//! # Snapshot consistency model
//!
//! The sampler thread calls [`m3d_obs::registry_snapshot`] at a fixed
//! cadence: the whole registry is cloned under **one** registry lock
//! (swap-out), and every aggregate — windowed rates, sliding quantiles,
//! SLO burn — is computed and serialized *outside* that lock. Hot paths
//! therefore only ever contend on the same single short-lived lock they
//! already take to record, and a scrape can never observe a torn
//! registry. Snapshotting is a pure read: it cannot change chunk
//! boundaries, merge order, or any served byte (the PR 4 determinism
//! contract extends to the exporter).
//!
//! # Wire format
//!
//! The exporter reuses the `crates/serve` length-prefixed JSONL framing
//! ([`crate::proto`]). Any complete frame a scraper sends is answered
//! with one `{"type":"telemetry",...}` frame; malformed framing closes
//! the scraper's connection without touching the serving plane.

use std::collections::BTreeMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use m3d_obs::slo::{evaluate, SloInputs, SloSpec, SloStatus};
use m3d_obs::{Event, Json, SnapshotRing};

use crate::proto::{write_frame, Decoder, StatsSnapshot};

/// Sampler cadence: one registry snapshot per tick.
pub const SAMPLE_INTERVAL_MS: u64 = 100;

/// Rolling-window horizon retained by the sampler (the longest window).
pub const HORIZON_MS: u64 = 60_000;

/// The exported rate/quantile windows, milliseconds.
pub const WINDOWS_MS: [u64; 3] = [1_000, 10_000, 60_000];

/// Default deadline-storm threshold: this many `DeadlineExceeded`
/// responses per second sustained over 10 s triggers a flight dump.
pub const STORM_PER_S: f64 = 25.0;

/// Telemetry-plane knobs, derived from [`crate::ServeConfig`].
#[derive(Clone, Debug, Default)]
pub struct TelemetryConfig {
    /// SLO objectives evaluated each tick (empty spec = no objectives).
    pub slo: SloSpec,
    /// Where flight dumps land; `None` disables storm dumps.
    pub flight_dir: Option<PathBuf>,
    /// Deadline-storm threshold: a 10 s `serve.deadline_exceeded` rate at
    /// or above this many per second triggers a (rate-limited) dump.
    pub storm_per_s: f64,
}

/// Binds the telemetry listener (nonblocking, `:0` picks a free port).
///
/// # Errors
///
/// Bind failure.
pub fn bind_telemetry(addr: &str) -> Result<TcpListener, String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("binding telemetry {addr}: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("nonblocking telemetry listener: {e}"))?;
    Ok(listener)
}

/// Spawns the sampler/exporter thread. It runs until `shutdown` is set,
/// then drops its listener and exits. `stats_fn` supplies the server's
/// wire-level counter snapshot (queue depth is filled in from the
/// registry gauge).
pub fn spawn_telemetry(
    listener: TcpListener,
    stats_fn: Arc<dyn Fn() -> StatsSnapshot + Send + Sync>,
    cfg: TelemetryConfig,
    shutdown: Arc<AtomicBool>,
) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name("m3d-telemetry".into())
        .spawn(move || sampler_loop(&listener, &stats_fn, &cfg, &shutdown))
        .expect("spawning telemetry thread")
}

/// One connected scraper.
struct Scraper {
    stream: TcpStream,
    dec: Decoder,
}

fn sampler_loop(
    listener: &TcpListener,
    stats_fn: &Arc<dyn Fn() -> StatsSnapshot + Send + Sync>,
    cfg: &TelemetryConfig,
    shutdown: &AtomicBool,
) {
    let epoch = Instant::now();
    let mut ring = SnapshotRing::new(HORIZON_MS);
    let mut scrapers: Vec<Scraper> = Vec::new();
    let mut busy = Duration::ZERO;
    let mut last_storm_dump: Option<Instant> = None;
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        let tick = Instant::now();

        // Sample: one clone under one registry lock; everything below
        // works on the private copy.
        let t_ms = epoch.elapsed().as_millis() as u64;
        ring.push(t_ms, m3d_obs::registry_snapshot());

        // Continuous SLO evaluation, exported as burn-rate gauges.
        let status = slo_over_window(&ring, &cfg.slo, 10_000);
        export_burn_gauges(&status, "10s");
        let status_60 = slo_over_window(&ring, &cfg.slo, 60_000);
        export_burn_gauges(&status_60, "60s");

        // Deadline-storm detection: sustained expiry rate → flight dump.
        if let (Some(dir), Some(rate)) = (
            cfg.flight_dir.as_deref(),
            ring.rate("serve.deadline_exceeded", 10_000),
        ) {
            let cooled = last_storm_dump.is_none_or(|t| t.elapsed() >= Duration::from_secs(10));
            if cfg.storm_per_s > 0.0 && rate >= cfg.storm_per_s && cooled {
                last_storm_dump = Some(Instant::now());
                m3d_obs::flight_record(
                    "telemetry",
                    "storm",
                    format!("deadline_exceeded at {rate:.1}/s over 10s"),
                );
                let _ = dump_flight(dir, "storm");
            }
        }

        // Exporter self-accounting: busy fraction of wall time. This is
        // the honest overhead number `bench_guard slo` checks.
        let wall = epoch.elapsed();
        let overhead_pct = if wall.is_zero() {
            0.0
        } else {
            100.0 * busy.as_secs_f64() / wall.as_secs_f64()
        };

        // Accept new scrapers (nonblocking).
        while let Ok((stream, _peer)) = listener.accept() {
            let _ = stream.set_nodelay(true);
            if stream.set_nonblocking(true).is_ok() {
                scrapers.push(Scraper {
                    stream,
                    dec: Decoder::new(),
                });
            }
        }

        // Answer every complete frame with one snapshot frame. The reply
        // is rendered at most once per tick, lazily.
        let mut rendered: Option<String> = None;
        scrapers.retain_mut(|s| {
            let mut chunk = [0u8; 1024];
            loop {
                match s.stream.read(&mut chunk) {
                    Ok(0) => return false,
                    Ok(n) => s.dec.push(&chunk[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => return false,
                }
            }
            loop {
                match s.dec.next_frame() {
                    Ok(Some(_request)) => {
                        let line = rendered.get_or_insert_with(|| {
                            snapshot_json(&ring, &stats_fn(), &status, overhead_pct).render()
                        });
                        if write_frame(&mut s.stream, line).is_err() {
                            return false;
                        }
                    }
                    Ok(None) => return true,
                    Err(_) => return false, // desynchronized scraper
                }
            }
        });

        busy += tick.elapsed();
        let spent = tick.elapsed().as_millis() as u64;
        thread::sleep(Duration::from_millis(
            SAMPLE_INTERVAL_MS.saturating_sub(spent).max(1),
        ));
    }
}

/// Evaluates the SLO spec over one rolling window of the ring.
fn slo_over_window(ring: &SnapshotRing, spec: &SloSpec, window_ms: u64) -> SloStatus {
    if spec.is_empty() {
        return SloStatus::default();
    }
    let delta = |name: &str| -> u64 {
        ring.rate(name, window_ms)
            .map_or(0.0, |r| r * (window_ms as f64 / 1e3))
            .round() as u64
    };
    let inputs = SloInputs {
        completed: delta("serve.completed"),
        failed: delta("serve.deadline_exceeded") + delta("serve.internal_errors"),
        degraded: delta("serve.degraded"),
        p99_ms: ring.quantile("serve.latency_ms", window_ms, 0.99),
    };
    evaluate(spec, &inputs)
}

fn export_burn_gauges(status: &SloStatus, suffix: &str) {
    if let Some(b) = status.burn_availability {
        m3d_obs::gauge(&format!("slo.burn_availability_{suffix}"), b);
    }
    if let Some(b) = status.burn_p99 {
        m3d_obs::gauge(&format!("slo.burn_p99_{suffix}"), b);
    }
    if let Some(b) = status.burn_degraded {
        m3d_obs::gauge(&format!("slo.burn_degraded_{suffix}"), b);
    }
}

/// Assembles the `{"type":"telemetry",...}` snapshot object: raw
/// counters and gauges, windowed per-second rates for every counter,
/// sliding p50/p95/p99 for every histogram, the server's wire stats,
/// SLO burn, pool utilization, and exporter overhead.
pub fn snapshot_json(
    ring: &SnapshotRing,
    stats: &StatsSnapshot,
    slo: &SloStatus,
    overhead_pct: f64,
) -> Json {
    let latest = ring.latest();
    let t_ms = latest.map_or(0, |s| s.t_ms);
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut hist_names = Vec::new();
    if let Some(s) = latest {
        for e in s.registry.events() {
            match e {
                Event::Counter { name, value } => counters.push((name, Json::Num(value as f64))),
                Event::Gauge { name, value } => gauges.push((name, Json::Num(value))),
                Event::Hist { name, .. } => hist_names.push(name),
                _ => {}
            }
        }
    }

    let mut rates = Vec::new();
    for (name, _) in &counters {
        let mut per_window = Vec::new();
        for w in WINDOWS_MS {
            if let Some(r) = ring.rate(name, w) {
                per_window.push((format!("{}s", w / 1_000), Json::Num(r)));
            }
        }
        if !per_window.is_empty() {
            rates.push((name.clone(), Json::Obj(per_window)));
        }
    }

    let mut quantiles = Vec::new();
    for name in &hist_names {
        if let Some(win) = ring.hist_window(name, 10_000) {
            let mut o = vec![("count".to_string(), Json::Num(win.count() as f64))];
            for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
                if let Some(v) = win.quantile(q) {
                    o.push((label.to_string(), Json::Num(v)));
                }
            }
            quantiles.push((name.clone(), Json::Obj(o)));
        }
    }

    // Windowed pool utilization: busy time vs capacity (threads × wall)
    // over the last 10 s, both recorded as cumulative counters by
    // `m3d_par::record_dispatch`.
    let utilization = match (
        ring.rate("par.busy_us", 10_000),
        ring.rate("par.capacity_us", 10_000),
    ) {
        (Some(busy), Some(cap)) if cap > 0.0 => Some(100.0 * busy / cap),
        _ => None,
    };

    let mut queue_depth = stats.queue_depth;
    if let Some(s) = latest {
        if let Some(d) = s.registry.gauge_value("serve.queue_depth") {
            queue_depth = d.max(0.0) as u64;
        }
    }

    let stats_obj = Json::Obj(vec![
        ("generation".into(), Json::Num(stats.generation as f64)),
        ("completed".into(), Json::Num(stats.completed as f64)),
        ("degraded".into(), Json::Num(stats.degraded as f64)),
        ("overloaded".into(), Json::Num(stats.overloaded as f64)),
        (
            "deadline_exceeded".into(),
            Json::Num(stats.deadline_exceeded as f64),
        ),
        (
            "protocol_errors".into(),
            Json::Num(stats.protocol_errors as f64),
        ),
        (
            "panics_contained".into(),
            Json::Num(stats.panics_contained as f64),
        ),
        ("connections".into(), Json::Num(stats.connections as f64)),
        ("queue_depth".into(), Json::Num(queue_depth as f64)),
    ]);

    let mut slo_obj = Vec::new();
    if let Some(b) = slo.burn_availability {
        slo_obj.push(("burn_availability".to_string(), Json::Num(b)));
    }
    if let Some(b) = slo.burn_p99 {
        slo_obj.push(("burn_p99".to_string(), Json::Num(b)));
    }
    if let Some(b) = slo.burn_degraded {
        slo_obj.push(("burn_degraded".to_string(), Json::Num(b)));
    }
    slo_obj.push(("breached".to_string(), Json::Bool(slo.breached())));

    let mut pool = Vec::new();
    if let Some(u) = utilization {
        pool.push(("utilization_10s_pct".to_string(), Json::Num(u)));
    }

    Json::Obj(vec![
        ("type".into(), Json::Str("telemetry".into())),
        ("t_ms".into(), Json::Num(t_ms as f64)),
        ("stats".into(), stats_obj),
        ("counters".into(), Json::Obj(counters)),
        ("gauges".into(), Json::Obj(gauges)),
        ("rates".into(), Json::Obj(rates)),
        ("quantiles".into(), Json::Obj(quantiles)),
        ("slo".into(), Json::Obj(slo_obj)),
        ("pool".into(), Json::Obj(pool)),
        (
            "exporter".into(),
            Json::Obj(vec![("overhead_pct".into(), Json::Num(overhead_pct))]),
        ),
    ])
}

/// Scrapes one telemetry snapshot from a running exporter.
///
/// # Errors
///
/// Connect, framing, or parse failure.
pub fn scrape(addr: SocketAddr) -> Result<Json, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    write_frame(&mut stream, "{\"type\":\"snapshot\"}").map_err(|e| e.to_string())?;
    let mut dec = Decoder::new();
    let line = crate::proto::read_frame(&mut stream, &mut dec)
        .map_err(|e| format!("scrape {addr}: {e}"))?
        .ok_or_else(|| format!("scrape {addr}: connection closed"))?;
    m3d_obs::json::parse(&line).map_err(|e| format!("scrape {addr}: bad snapshot: {e}"))
}

// ---------------------------------------------------------------------------
// Flight dumps
// ---------------------------------------------------------------------------

static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);
static DUMP_LAST: Mutex<BTreeMap<String, Instant>> = Mutex::new(BTreeMap::new());

/// Dumps the flight recorder to `dir/flight-<trigger>-<n>.jsonl` through
/// the `m3d-resilient` atomic-write path (tmp + fsync + rename), so a
/// crash mid-dump never leaves a torn artifact.
///
/// # Errors
///
/// Directory creation or write failure.
pub fn dump_flight(dir: &Path, trigger: &str) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let n = DUMP_SEQ.fetch_add(1, Ordering::Relaxed) + 1;
    let path = dir.join(format!("flight-{trigger}-{n:04}.jsonl"));
    m3d_resilient::save_text_atomic(&path, &m3d_obs::flight_render())?;
    m3d_obs::counter("serve.flight_dumps", 1);
    Ok(path)
}

/// Rate-limited [`dump_flight`]: at most one dump per `min_gap` for each
/// distinct `trigger` (poison storms must not flood the disk). Returns
/// `None` when suppressed.
pub fn dump_flight_limited(dir: &Path, trigger: &str, min_gap: Duration) -> Option<PathBuf> {
    {
        let mut last = DUMP_LAST
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(t) = last.get(trigger) {
            if t.elapsed() < min_gap {
                return None;
            }
        }
        last.insert(trigger.to_string(), Instant::now());
    }
    dump_flight(dir, trigger).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_obs::Registry;

    fn ring_with(completed: u64, lat_ms: &[f64]) -> SnapshotRing {
        let mut ring = SnapshotRing::new(HORIZON_MS);
        ring.push(0, Registry::new());
        let mut r = Registry::new();
        r.counter("serve.completed", completed);
        for &v in lat_ms {
            r.observe_with("serve.latency_ms", &m3d_obs::LATENCY_MS_BOUNDS, v);
        }
        ring.push(10_000, r);
        ring
    }

    #[test]
    fn snapshot_renders_rates_quantiles_and_parses_back() {
        let ring = ring_with(100, &[1.0, 1.0, 200.0]);
        let json = snapshot_json(&ring, &StatsSnapshot::default(), &SloStatus::default(), 0.5);
        let line = json.render();
        let back = m3d_obs::json::parse(&line).expect("snapshot parses");
        assert_eq!(back.get("type").and_then(Json::as_str), Some("telemetry"));
        // 100 completions over 10 s.
        let rate = back
            .get("rates")
            .and_then(|r| r.get("serve.completed"))
            .and_then(|w| w.get("10s"))
            .and_then(Json::as_f64)
            .expect("completed 10s rate");
        assert!((rate - 10.0).abs() < 1e-9, "rate {rate}");
        let p99 = back
            .get("quantiles")
            .and_then(|q| q.get("serve.latency_ms"))
            .and_then(|q| q.get("p99"))
            .and_then(Json::as_f64)
            .expect("latency p99");
        assert!(p99 >= 200.0, "p99 {p99}");
        let overhead = back
            .get("exporter")
            .and_then(|e| e.get("overhead_pct"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!((overhead - 0.5).abs() < 1e-9);
    }

    #[test]
    fn slo_window_burns_from_windowed_counters() {
        let mut ring = SnapshotRing::new(HORIZON_MS);
        ring.push(0, Registry::new());
        let mut r = Registry::new();
        r.counter("serve.completed", 99);
        r.counter("serve.deadline_exceeded", 1);
        ring.push(10_000, r);
        let spec = SloSpec::parse("availability>=0.99").unwrap();
        let status = slo_over_window(&ring, &spec, 10_000);
        // 1% errors against a 1% budget: burn = 1.0, not breached.
        let burn = status.burn_availability.unwrap();
        assert!((burn - 1.0).abs() < 1e-9, "burn {burn}");
        assert!(!status.breached());
    }

    #[test]
    fn flight_dumps_are_atomic_files_and_rate_limited() {
        let dir = std::env::temp_dir().join(format!("m3d_flight_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        m3d_obs::set_flight_enabled(true);
        m3d_obs::flight_record("conn-1", "frame", "diagnose id=1");
        m3d_obs::set_flight_enabled(false);
        let p1 = dump_flight(&dir, "panic-seq8").expect("dump");
        assert!(p1
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with("flight-panic-seq8-"));
        let text = std::fs::read_to_string(&p1).expect("dump readable");
        m3d_obs::report::parse_jsonl(&text).expect("dump parses as events");
        // Rate limiting: the second poison dump inside the gap is
        // suppressed, panic-style unique triggers are not.
        assert!(dump_flight_limited(&dir, "poison", Duration::from_secs(60)).is_some());
        assert!(dump_flight_limited(&dir, "poison", Duration::from_secs(60)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
