//! The wire protocol: length-prefixed JSONL frames and typed messages.
//!
//! A frame is an ASCII decimal byte length, a newline, exactly that many
//! bytes of single-line JSON, and a trailing newline:
//!
//! ```text
//! 23\n{"type":"ping","id":1}\n
//! ```
//!
//! The length prefix lets the reader allocate exactly once and reject
//! oversized frames ([`MAX_FRAME_LEN`]) before buffering them; the JSON
//! payload reuses the `m3d_obs` codec (the same deterministic renderer and
//! recursive-descent parser the trace files use), so every message
//! round-trips byte-exactly through the observability tooling.
//!
//! Frames arrive from *untrusted* testers over TCP. Every malformation —
//! non-digit length prefixes, oversized declarations, truncated payloads,
//! invalid UTF-8, garbage JSON, well-formed JSON with a bad shape — maps
//! to a typed [`ProtoError`], never a panic. The [`Decoder`] is a pure
//! incremental state machine over pushed bytes, so the fuzz suite drives
//! it directly, byte by byte, without sockets.

use std::fmt;
use std::io::{self, Read, Write};

use m3d_diagnosis::DiagnosisReport;
use m3d_obs::Json;
use m3d_tdf::Polarity;

/// Hard ceiling on a frame's declared payload length (1 MiB). A tester
/// failure log is a few KiB; anything larger is hostile or corrupt.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Maximum digits a length prefix may span before it is rejected (covers
/// [`MAX_FRAME_LEN`] with room; prevents unbounded buffering of a prefix
/// that never terminates).
pub const MAX_PREFIX_DIGITS: usize = 8;

/// Why a frame or message could not be decoded. Every variant is a typed,
/// recoverable verdict on untrusted input — the protocol layer never
/// panics and never buffers unboundedly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// The length prefix was not a short ASCII decimal line.
    BadLengthPrefix {
        /// The offending prefix bytes (lossy, truncated for display).
        found: String,
    },
    /// The declared payload length exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The declared length.
        len: usize,
    },
    /// The byte after the payload was not the terminating newline.
    BadTerminator,
    /// The connection ended mid-frame (a truncated frame).
    Truncated,
    /// The payload was not valid UTF-8.
    InvalidUtf8,
    /// The payload was not valid JSON.
    BadJson(String),
    /// The JSON was well-formed but not a valid message shape.
    BadMessage(String),
    /// The read timed out (the caller decides whether that is idle
    /// keep-alive or a slow-writer attack).
    Timeout,
    /// Underlying socket failure.
    Io(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::BadLengthPrefix { found } => {
                write!(f, "bad frame length prefix `{found}`")
            }
            ProtoError::Oversized { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            ProtoError::BadTerminator => f.write_str("frame payload not newline-terminated"),
            ProtoError::Truncated => f.write_str("connection closed mid-frame"),
            ProtoError::InvalidUtf8 => f.write_str("frame payload is not valid UTF-8"),
            ProtoError::BadJson(e) => write!(f, "frame payload is not valid JSON: {e}"),
            ProtoError::BadMessage(e) => write!(f, "bad message: {e}"),
            ProtoError::Timeout => f.write_str("read timed out"),
            ProtoError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ProtoError::Timeout,
            _ => ProtoError::Io(e.to_string()),
        }
    }
}

/// Encodes one frame: `len\n<payload>\n`.
pub fn encode_frame(line: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(line.len() + 12);
    out.extend_from_slice(line.len().to_string().as_bytes());
    out.push(b'\n');
    out.extend_from_slice(line.as_bytes());
    out.push(b'\n');
    out
}

/// Writes one frame to a stream.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_frame(w: &mut impl Write, line: &str) -> io::Result<()> {
    w.write_all(&encode_frame(line))?;
    w.flush()
}

/// Incremental frame decoder: push bytes in, pop complete payloads out.
///
/// The decoder is a pure function of the pushed byte sequence — no I/O,
/// no clocks — which is what makes it directly fuzzable. Interleaved
/// partial writes (any split of the byte stream) decode identically to a
/// single write. After a decode error the decoder is *poisoned*: framing
/// has desynchronized, so the caller must drop the connection; further
/// [`Decoder::next_frame`] calls repeat the error.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
    pos: usize,
    poisoned: Option<ProtoError>,
}

impl Decoder {
    /// A fresh decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether a partial frame is buffered (used by the slow-writer
    /// defense: a partial frame that stops making progress is an attack,
    /// an empty buffer is just an idle connection).
    pub fn has_partial(&self) -> bool {
        self.pos < self.buf.len()
    }

    /// Pops the next complete frame payload, `Ok(None)` when more bytes
    /// are needed.
    ///
    /// # Errors
    ///
    /// A typed [`ProtoError`] on any framing malformation; the decoder
    /// stays poisoned with that error afterwards.
    pub fn next_frame(&mut self) -> Result<Option<String>, ProtoError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        match self.scan() {
            Ok(v) => Ok(v),
            Err(e) => {
                self.poisoned = Some(e.clone());
                Err(e)
            }
        }
    }

    fn scan(&mut self) -> Result<Option<String>, ProtoError> {
        let avail = &self.buf[self.pos..];
        // Locate the length line.
        let Some(nl) = avail
            .iter()
            .take(MAX_PREFIX_DIGITS + 1)
            .position(|&b| b == b'\n')
        else {
            if avail.len() > MAX_PREFIX_DIGITS {
                return Err(ProtoError::BadLengthPrefix {
                    found: String::from_utf8_lossy(&avail[..MAX_PREFIX_DIGITS]).into_owned(),
                });
            }
            return Ok(None); // prefix still arriving
        };
        let prefix = &avail[..nl];
        if prefix.is_empty() || !prefix.iter().all(u8::is_ascii_digit) {
            return Err(ProtoError::BadLengthPrefix {
                found: String::from_utf8_lossy(prefix).into_owned(),
            });
        }
        // ≤ 8 digits always fits in usize.
        let len: usize = std::str::from_utf8(prefix)
            .expect("ascii digits")
            .parse()
            .map_err(|_| ProtoError::BadLengthPrefix {
                found: String::from_utf8_lossy(prefix).into_owned(),
            })?;
        if len > MAX_FRAME_LEN {
            return Err(ProtoError::Oversized { len });
        }
        let body_start = nl + 1;
        // Payload plus its terminating newline.
        if avail.len() < body_start + len + 1 {
            return Ok(None);
        }
        if avail[body_start + len] != b'\n' {
            return Err(ProtoError::BadTerminator);
        }
        let payload = std::str::from_utf8(&avail[body_start..body_start + len])
            .map_err(|_| ProtoError::InvalidUtf8)?
            .to_owned();
        self.pos += body_start + len + 1;
        // Reclaim consumed space once it dominates the buffer.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(Some(payload))
    }
}

/// Reads one frame from a blocking stream, `Ok(None)` on clean EOF at a
/// frame boundary.
///
/// # Errors
///
/// [`ProtoError::Truncated`] on EOF mid-frame, [`ProtoError::Timeout`]
/// when the stream's read timeout elapses, or any decode error.
pub fn read_frame(stream: &mut impl Read, dec: &mut Decoder) -> Result<Option<String>, ProtoError> {
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(frame) = dec.next_frame()? {
            return Ok(Some(frame));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return if dec.has_partial() {
                Err(ProtoError::Truncated)
            } else {
                Ok(None)
            };
        }
        dec.push(&chunk[..n]);
    }
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// A client request. Every request carries a client-chosen `id` echoed in
/// the response, so duplicated or reordered requests stay attributable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping {
        /// Echoed request id.
        id: u64,
    },
    /// Diagnose one tester failure log.
    Diagnose {
        /// Echoed request id.
        id: u64,
        /// The failure log in `m3d-faillog v1` text form.
        log: String,
        /// Per-request budget in milliseconds (`None` = server default).
        deadline_ms: Option<u64>,
        /// Skip GNN enhancement even when a model is loaded.
        no_enhance: bool,
    },
    /// Server statistics snapshot.
    Stats {
        /// Echoed request id.
        id: u64,
    },
    /// Atomically reload the artifact bundle (new generation).
    Reload {
        /// Echoed request id.
        id: u64,
    },
    /// Drain and stop the server (the shutdown signal — std has no
    /// portable signal API, so shutdown is a protocol message).
    Shutdown {
        /// Echoed request id.
        id: u64,
    },
}

impl Request {
    /// Renders the request as a single JSON line.
    pub fn encode(&self) -> String {
        let obj = match self {
            Request::Ping { id } => vec![type_kv("ping"), id_kv(*id)],
            Request::Diagnose {
                id,
                log,
                deadline_ms,
                no_enhance,
            } => {
                let mut o = vec![
                    type_kv("diagnose"),
                    id_kv(*id),
                    ("log".into(), Json::Str(log.clone())),
                ];
                if let Some(ms) = deadline_ms {
                    o.push(("deadline_ms".into(), Json::Num(*ms as f64)));
                }
                if *no_enhance {
                    o.push(("no_enhance".into(), Json::Bool(true)));
                }
                o
            }
            Request::Stats { id } => vec![type_kv("stats"), id_kv(*id)],
            Request::Reload { id } => vec![type_kv("reload"), id_kv(*id)],
            Request::Shutdown { id } => vec![type_kv("shutdown"), id_kv(*id)],
        };
        Json::Obj(obj).render()
    }

    /// Parses one JSON line into a request.
    ///
    /// # Errors
    ///
    /// [`ProtoError::BadJson`] / [`ProtoError::BadMessage`] for malformed
    /// payloads.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let v = m3d_obs::json::parse(line).map_err(ProtoError::BadJson)?;
        let ty = req_str(&v, "type")?;
        let id = req_u64(&v, "id")?;
        match ty.as_str() {
            "ping" => Ok(Request::Ping { id }),
            "diagnose" => Ok(Request::Diagnose {
                id,
                log: req_str(&v, "log")?,
                deadline_ms: opt_u64(&v, "deadline_ms")?,
                no_enhance: matches!(v.get("no_enhance"), Some(Json::Bool(true))),
            }),
            "stats" => Ok(Request::Stats { id }),
            "reload" => Ok(Request::Reload { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            other => Err(ProtoError::BadMessage(format!(
                "unknown request type `{other}`"
            ))),
        }
    }
}

/// One ranked candidate on the wire. Fields mirror
/// [`m3d_diagnosis::Candidate`] exactly, so two reports are bit-identical
/// iff their wire candidates (and degraded tags) are equal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireCandidate {
    /// Fault-site index.
    pub site: u64,
    /// `"rise"` or `"fall"`.
    pub polarity: String,
    /// `"top"`, `"bottom"`, or `"miv"`.
    pub tier: String,
    /// Explained failures.
    pub tfsf: u64,
    /// Unexplained failures.
    pub tfsp: u64,
    /// Mispredicted failures.
    pub tpsf: u64,
}

impl WireCandidate {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("site".into(), Json::Num(self.site as f64)),
            ("polarity".into(), Json::Str(self.polarity.clone())),
            ("tier".into(), Json::Str(self.tier.clone())),
            ("tfsf".into(), Json::Num(self.tfsf as f64)),
            ("tfsp".into(), Json::Num(self.tfsp as f64)),
            ("tpsf".into(), Json::Num(self.tpsf as f64)),
        ])
    }

    fn from_json(v: &Json) -> Result<WireCandidate, ProtoError> {
        Ok(WireCandidate {
            site: req_u64(v, "site")?,
            polarity: req_str(v, "polarity")?,
            tier: req_str(v, "tier")?,
            tfsf: req_u64(v, "tfsf")?,
            tfsp: req_u64(v, "tfsp")?,
            tpsf: req_u64(v, "tpsf")?,
        })
    }
}

/// Converts an in-process report into its wire candidates.
pub fn wire_candidates(report: &DiagnosisReport) -> Vec<WireCandidate> {
    report
        .candidates()
        .iter()
        .map(|c| WireCandidate {
            site: c.fault.site.index() as u64,
            polarity: match c.fault.polarity {
                Polarity::SlowToRise => "rise".into(),
                Polarity::SlowToFall => "fall".into(),
            },
            tier: c.tier.map_or_else(|| "miv".into(), |t| t.to_string()),
            tfsf: u64::from(c.score.tfsf),
            tfsp: u64::from(c.score.tfsp),
            tpsf: u64::from(c.score.tpsf),
        })
        .collect()
}

/// A server statistics snapshot (the `stats` response body).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Current artifact-bundle generation.
    pub generation: u64,
    /// Requests answered with a report.
    pub completed: u64,
    /// Reports served through a degraded path (shed, sanitized, or
    /// model-fallback).
    pub degraded: u64,
    /// Requests rejected with `Overloaded`.
    pub overloaded: u64,
    /// Requests cancelled past their deadline.
    pub deadline_exceeded: u64,
    /// Connections dropped for protocol violations.
    pub protocol_errors: u64,
    /// Worker panics contained by the pool.
    pub panics_contained: u64,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Jobs currently queued.
    pub queue_depth: u64,
}

impl StatsSnapshot {
    const FIELDS: [&'static str; 9] = [
        "generation",
        "completed",
        "degraded",
        "overloaded",
        "deadline_exceeded",
        "protocol_errors",
        "panics_contained",
        "connections",
        "queue_depth",
    ];

    fn values(&self) -> [u64; 9] {
        [
            self.generation,
            self.completed,
            self.degraded,
            self.overloaded,
            self.deadline_exceeded,
            self.protocol_errors,
            self.panics_contained,
            self.connections,
            self.queue_depth,
        ]
    }
}

/// A server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Liveness answer.
    Pong {
        /// Echoed request id.
        id: u64,
        /// Current bundle generation.
        generation: u64,
    },
    /// A completed diagnosis.
    Report {
        /// Echoed request id.
        id: u64,
        /// The report (or the serve path) fell back to a degraded mode.
        degraded: bool,
        /// GNN enhancement ran.
        enhanced: bool,
        /// Policy action (`reorder`/`prune`/`pass_through`/`degraded`)
        /// when enhancement ran.
        action: Option<String>,
        /// The exact `Display` rendering of the report (bitwise comparable
        /// with offline `m3d-diag diagnose` output).
        text: String,
        /// Structured candidates.
        candidates: Vec<WireCandidate>,
    },
    /// Typed backpressure: the admission queue is full.
    Overloaded {
        /// Echoed request id.
        id: u64,
        /// Suggested client backoff before retrying.
        retry_after_ms: u64,
    },
    /// The request's budget expired before its diagnosis completed.
    DeadlineExceeded {
        /// Echoed request id.
        id: u64,
        /// The budget that expired, in milliseconds.
        budget_ms: u64,
    },
    /// Statistics snapshot.
    Stats {
        /// Echoed request id.
        id: u64,
        /// The counters.
        snapshot: StatsSnapshot,
    },
    /// The bundle reloaded into a new generation.
    Reloaded {
        /// Echoed request id.
        id: u64,
        /// The new generation.
        generation: u64,
    },
    /// The server acknowledged shutdown and is draining.
    ShuttingDown {
        /// Echoed request id.
        id: u64,
    },
    /// A typed failure (protocol violation, unreadable log, contained
    /// worker panic, failed reload).
    Error {
        /// Echoed request id when the request parsed far enough to have one.
        id: Option<u64>,
        /// Stable machine-readable kind (`protocol`, `bad_log`,
        /// `internal`, `reload_failed`).
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Renders the response as a single JSON line.
    pub fn encode(&self) -> String {
        let obj = match self {
            Response::Pong { id, generation } => vec![
                type_kv("pong"),
                id_kv(*id),
                ("generation".into(), Json::Num(*generation as f64)),
            ],
            Response::Report {
                id,
                degraded,
                enhanced,
                action,
                text,
                candidates,
            } => {
                let mut o = vec![
                    type_kv("report"),
                    id_kv(*id),
                    (
                        "status".into(),
                        Json::Str(if *degraded { "degraded" } else { "ok" }.into()),
                    ),
                    ("enhanced".into(), Json::Bool(*enhanced)),
                ];
                if let Some(a) = action {
                    o.push(("action".into(), Json::Str(a.clone())));
                }
                o.push(("text".into(), Json::Str(text.clone())));
                o.push((
                    "candidates".into(),
                    Json::Arr(candidates.iter().map(WireCandidate::to_json).collect()),
                ));
                o
            }
            Response::Overloaded { id, retry_after_ms } => vec![
                type_kv("overloaded"),
                id_kv(*id),
                ("retry_after_ms".into(), Json::Num(*retry_after_ms as f64)),
            ],
            Response::DeadlineExceeded { id, budget_ms } => vec![
                type_kv("deadline_exceeded"),
                id_kv(*id),
                ("budget_ms".into(), Json::Num(*budget_ms as f64)),
            ],
            Response::Stats { id, snapshot } => {
                let mut o = vec![type_kv("stats"), id_kv(*id)];
                for (k, v) in StatsSnapshot::FIELDS.iter().zip(snapshot.values()) {
                    o.push(((*k).into(), Json::Num(v as f64)));
                }
                o
            }
            Response::Reloaded { id, generation } => vec![
                type_kv("reloaded"),
                id_kv(*id),
                ("generation".into(), Json::Num(*generation as f64)),
            ],
            Response::ShuttingDown { id } => vec![type_kv("shutting_down"), id_kv(*id)],
            Response::Error { id, kind, message } => {
                let mut o = vec![type_kv("error")];
                if let Some(id) = id {
                    o.push(id_kv(*id));
                }
                o.push(("kind".into(), Json::Str(kind.clone())));
                o.push(("message".into(), Json::Str(message.clone())));
                o
            }
        };
        Json::Obj(obj).render()
    }

    /// Parses one JSON line into a response (the client side).
    ///
    /// # Errors
    ///
    /// [`ProtoError::BadJson`] / [`ProtoError::BadMessage`] for malformed
    /// payloads.
    pub fn parse(line: &str) -> Result<Response, ProtoError> {
        let v = m3d_obs::json::parse(line).map_err(ProtoError::BadJson)?;
        let ty = req_str(&v, "type")?;
        match ty.as_str() {
            "pong" => Ok(Response::Pong {
                id: req_u64(&v, "id")?,
                generation: req_u64(&v, "generation")?,
            }),
            "report" => {
                let status = req_str(&v, "status")?;
                let degraded = match status.as_str() {
                    "ok" => false,
                    "degraded" => true,
                    other => {
                        return Err(ProtoError::BadMessage(format!("unknown status `{other}`")))
                    }
                };
                let cands = v
                    .get("candidates")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ProtoError::BadMessage("missing `candidates`".into()))?
                    .iter()
                    .map(WireCandidate::from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Response::Report {
                    id: req_u64(&v, "id")?,
                    degraded,
                    enhanced: matches!(v.get("enhanced"), Some(Json::Bool(true))),
                    action: v.get("action").and_then(Json::as_str).map(str::to_owned),
                    text: req_str(&v, "text")?,
                    candidates: cands,
                })
            }
            "overloaded" => Ok(Response::Overloaded {
                id: req_u64(&v, "id")?,
                retry_after_ms: req_u64(&v, "retry_after_ms")?,
            }),
            "deadline_exceeded" => Ok(Response::DeadlineExceeded {
                id: req_u64(&v, "id")?,
                budget_ms: req_u64(&v, "budget_ms")?,
            }),
            "stats" => {
                let mut snapshot = StatsSnapshot::default();
                let slots: [&mut u64; 9] = [
                    &mut snapshot.generation,
                    &mut snapshot.completed,
                    &mut snapshot.degraded,
                    &mut snapshot.overloaded,
                    &mut snapshot.deadline_exceeded,
                    &mut snapshot.protocol_errors,
                    &mut snapshot.panics_contained,
                    &mut snapshot.connections,
                    &mut snapshot.queue_depth,
                ];
                for (k, slot) in StatsSnapshot::FIELDS.iter().zip(slots) {
                    *slot = req_u64(&v, k)?;
                }
                Ok(Response::Stats {
                    id: req_u64(&v, "id")?,
                    snapshot,
                })
            }
            "reloaded" => Ok(Response::Reloaded {
                id: req_u64(&v, "id")?,
                generation: req_u64(&v, "generation")?,
            }),
            "shutting_down" => Ok(Response::ShuttingDown {
                id: req_u64(&v, "id")?,
            }),
            "error" => Ok(Response::Error {
                id: opt_u64(&v, "id")?,
                kind: req_str(&v, "kind")?,
                message: req_str(&v, "message")?,
            }),
            other => Err(ProtoError::BadMessage(format!(
                "unknown response type `{other}`"
            ))),
        }
    }
}

fn type_kv(t: &str) -> (String, Json) {
    ("type".into(), Json::Str(t.into()))
}

fn id_kv(id: u64) -> (String, Json) {
    ("id".into(), Json::Num(id as f64))
}

fn req_str(v: &Json, key: &str) -> Result<String, ProtoError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| ProtoError::BadMessage(format!("missing string `{key}`")))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, ProtoError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtoError::BadMessage(format!("missing integer `{key}`")))
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, ProtoError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| ProtoError::BadMessage(format!("`{key}` must be an integer"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(bytes: &[u8]) -> (Vec<String>, Option<ProtoError>) {
        let mut dec = Decoder::new();
        dec.push(bytes);
        let mut out = Vec::new();
        loop {
            match dec.next_frame() {
                Ok(Some(f)) => out.push(f),
                Ok(None) => return (out, None),
                Err(e) => return (out, Some(e)),
            }
        }
    }

    #[test]
    fn frames_roundtrip_any_split() {
        let msgs = ["{}", "{\"type\":\"ping\",\"id\":1}", ""];
        let mut stream = Vec::new();
        for m in msgs {
            stream.extend_from_slice(&encode_frame(m));
        }
        // Whole-stream decode.
        let (out, err) = decode_all(&stream);
        assert_eq!(out, msgs);
        assert!(err.is_none());
        // Byte-by-byte decode (worst-case interleaved partial writes).
        let mut dec = Decoder::new();
        let mut out = Vec::new();
        for &b in &stream {
            dec.push(&[b]);
            while let Some(f) = dec.next_frame().expect("clean stream") {
                out.push(f);
            }
        }
        assert_eq!(out, msgs);
        assert!(!dec.has_partial());
    }

    #[test]
    fn framing_malformations_are_typed() {
        let (_, e) = decode_all(b"nope\n{}\n");
        assert!(matches!(e, Some(ProtoError::BadLengthPrefix { .. })));
        let (_, e) = decode_all(b"999999999\n");
        assert!(matches!(e, Some(ProtoError::BadLengthPrefix { .. })));
        let (_, e) = decode_all(b"9999999\n");
        assert!(matches!(e, Some(ProtoError::Oversized { len: 9999999 })));
        let (_, e) = decode_all(b"2\n{}X");
        assert_eq!(e, Some(ProtoError::BadTerminator));
        let (_, e) = decode_all(b"2\n\xff\xfe\n");
        assert_eq!(e, Some(ProtoError::InvalidUtf8));
        // A poisoned decoder repeats its error instead of resyncing.
        let mut dec = Decoder::new();
        dec.push(b"bad\n");
        assert!(dec.next_frame().is_err());
        dec.push(&encode_frame("{}"));
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn requests_roundtrip_through_the_obs_parser() {
        let reqs = [
            Request::Ping { id: 7 },
            Request::Diagnose {
                id: 8,
                log: "# m3d-faillog v1\nfail pattern 3 flop 2\n".into(),
                deadline_ms: Some(250),
                no_enhance: true,
            },
            Request::Stats { id: 9 },
            Request::Reload { id: 10 },
            Request::Shutdown { id: 11 },
        ];
        for r in reqs {
            assert_eq!(Request::parse(&r.encode()).expect("roundtrip"), r);
        }
    }

    #[test]
    fn responses_roundtrip_through_the_obs_parser() {
        let resps = [
            Response::Pong {
                id: 1,
                generation: 2,
            },
            Response::Report {
                id: 3,
                degraded: true,
                enhanced: false,
                action: Some("reorder".into()),
                text: "diagnosis report: 0 candidate(s)\n".into(),
                candidates: vec![WireCandidate {
                    site: 42,
                    polarity: "rise".into(),
                    tier: "top".into(),
                    tfsf: 5,
                    tfsp: 0,
                    tpsf: 1,
                }],
            },
            Response::Overloaded {
                id: 4,
                retry_after_ms: 30,
            },
            Response::DeadlineExceeded {
                id: 5,
                budget_ms: 100,
            },
            Response::Stats {
                id: 6,
                snapshot: StatsSnapshot {
                    generation: 1,
                    completed: 2,
                    degraded: 3,
                    overloaded: 4,
                    deadline_exceeded: 5,
                    protocol_errors: 6,
                    panics_contained: 7,
                    connections: 8,
                    queue_depth: 9,
                },
            },
            Response::Reloaded {
                id: 7,
                generation: 3,
            },
            Response::ShuttingDown { id: 8 },
            Response::Error {
                id: None,
                kind: "protocol".into(),
                message: "bad frame".into(),
            },
        ];
        for r in resps {
            assert_eq!(Response::parse(&r.encode()).expect("roundtrip"), r);
        }
    }

    #[test]
    fn bad_message_shapes_are_typed() {
        for line in [
            "[]",
            "{\"type\":\"warp\",\"id\":1}",
            "{\"type\":\"diagnose\",\"id\":1}",
            "{\"type\":\"ping\"}",
            "{\"type\":\"ping\",\"id\":-3}",
        ] {
            assert!(
                matches!(Request::parse(line), Err(ProtoError::BadMessage(_))),
                "{line}"
            );
        }
        assert!(matches!(
            Request::parse("{nope"),
            Err(ProtoError::BadJson(_))
        ));
    }
}
