//! The artifact cache: netlist, pattern set, and model weights loaded once
//! per server generation.
//!
//! Building a [`TestEnv`] (ATPG, scan stitching, the heterogeneous graph)
//! and training the localization models are orders of magnitude more
//! expensive than diagnosing one failure log — the entire point of a
//! long-running service is to pay that cost once and amortize it over
//! thousands of requests. The cache has two sources:
//!
//! * **Generated** — a synthetic benchmark (`--bench`/`--target`), fully
//!   deterministic in its seeds; nothing touches disk.
//! * **Directory** — a bundle directory with a `bundle.json` manifest
//!   naming netlist and partition files plus their mandatory CRC-32
//!   digests. File bytes are digest-checked with [`m3d_resilient::crc32`]
//!   *before* parsing, so a corrupt artifact is a typed load failure, not
//!   a garbage netlist silently serving wrong diagnoses.
//!
//! Trained model weights are cached in the `resilient` checkpoint format
//! (CRC-trailered, [`checkpoint::save_atomic`] write). On load the cache
//! first tries the checkpoint; any
//! [`CheckpointError`](m3d_resilient::CheckpointError) — missing file,
//! truncation, bad CRC, shape drift — falls back to a deterministic
//! retrain, after which the fresh weights are re-saved. A restored
//! localizer is bit-identical to a freshly trained one (same tensors, same
//! thresholds), which the service tests assert across generations.

use std::fmt;
use std::path::{Path, PathBuf};

use m3d_dft::ObsMode;
use m3d_diagnosis::DiagnosisConfig;
use m3d_fault_localization::{
    try_generate_samples, DiagSample, FaultLocalizer, FrameworkConfig, InjectionKind,
    MivPinpointer, ModelConfig, TestEnv, TierPredictor,
};
use m3d_gnn::{GcnClassifier, NodeClassifier, Param, TrainConfig, TrainCursor};
use m3d_hetgraph::{back_trace, FEATURE_DIM};
use m3d_netlist::generate::Benchmark;
use m3d_netlist::io::read_netlist;
use m3d_obs::Json;
use m3d_part::{read_partition, DesignConfig, M3dDesign};
use m3d_resilient::checkpoint::{self, TrainCheckpoint};
use m3d_resilient::crc32;
use m3d_tdf::{FailureLog, FaultSim};

/// Where the design and pattern set come from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BundleSource {
    /// A synthetic benchmark, generated in memory.
    Generated {
        /// The benchmark family.
        bench: Benchmark,
        /// Gate-count target override (`None` = benchmark default).
        target: Option<usize>,
    },
    /// A directory holding `bundle.json` plus the files it names.
    Directory(PathBuf),
}

/// Everything that pins down one artifact generation. Two equal specs load
/// bit-identical bundles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BundleSpec {
    /// Design / pattern source.
    pub source: BundleSource,
    /// Compacted (MISR channel) observation instead of bypass.
    pub compacted: bool,
    /// Training-set size for the localization models; `0` disables
    /// enhancement entirely (baseline diagnoser only).
    pub enhance_samples: usize,
    /// Training epochs for the localization models.
    pub epochs: usize,
    /// Seed for training-sample generation.
    pub sample_seed: u64,
    /// Seed for model initialization.
    pub model_seed: u64,
    /// Checkpoint cache for the trained weights (`None` = always retrain).
    pub model_path: Option<PathBuf>,
}

impl Default for BundleSpec {
    fn default() -> Self {
        BundleSpec {
            source: BundleSource::Generated {
                bench: Benchmark::Aes,
                target: Some(300),
            },
            compacted: false,
            enhance_samples: 0,
            epochs: 25,
            sample_seed: 1,
            model_seed: 7,
            model_path: None,
        }
    }
}

impl BundleSpec {
    /// Observation mode implied by the spec.
    pub fn mode(&self) -> ObsMode {
        if self.compacted {
            ObsMode::Compacted
        } else {
            ObsMode::Bypass
        }
    }

    /// A 63-bit fingerprint of every field that affects trained weights.
    /// Stored in the checkpoint's `epoch` slot so a cached model trained
    /// under a different spec is rejected instead of silently reused.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        match &self.source {
            BundleSource::Generated { bench, target } => {
                mix(1);
                mix(Benchmark::ALL.iter().position(|b| b == bench).unwrap_or(0) as u64);
                mix(target.map_or(u64::MAX, |t| t as u64));
            }
            BundleSource::Directory(p) => {
                mix(2);
                for b in p.to_string_lossy().bytes() {
                    mix(u64::from(b));
                }
            }
        }
        mix(u64::from(self.compacted));
        mix(self.enhance_samples as u64);
        mix(self.epochs as u64);
        mix(self.sample_seed);
        mix(self.model_seed);
        mix(FEATURE_DIM as u64);
        h >> 1 // keep it positive in the checkpoint's usize epoch slot
    }
}

/// How the localization models in a bundle came to be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelProvenance {
    /// Enhancement disabled (`enhance_samples == 0`).
    Disabled,
    /// Trained in this load (and cached, when a path was given).
    FreshlyTrained,
    /// Restored from a CRC-verified checkpoint.
    Restored,
}

impl fmt::Display for ModelProvenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ModelProvenance::Disabled => "disabled",
            ModelProvenance::FreshlyTrained => "trained",
            ModelProvenance::Restored => "restored",
        })
    }
}

/// One loaded artifact generation: the environment, the observation mode,
/// diagnosis knobs, and (optionally) the trained localizer.
#[derive(Debug)]
pub struct ArtifactBundle {
    /// Design + scan + patterns + heterogeneous graph.
    pub env: TestEnv,
    /// Observation mode requests are diagnosed under.
    pub mode: ObsMode,
    /// Diagnosis engine knobs.
    pub diag_cfg: DiagnosisConfig,
    /// The enhancement models (`None` = baseline-only serving).
    pub localizer: Option<FaultLocalizer>,
    /// Where the models came from.
    pub provenance: ModelProvenance,
}

impl ArtifactBundle {
    /// Loads a bundle per the spec: builds or reads the design, runs ATPG,
    /// and loads-or-trains the localization models.
    ///
    /// # Errors
    ///
    /// A human-readable description of the failing step (unreadable or
    /// CRC-mismatching artifact file, malformed manifest, worker panic
    /// during training-sample generation).
    pub fn load(spec: &BundleSpec) -> Result<ArtifactBundle, String> {
        let mut sp = m3d_obs::span("serve_bundle_load");
        let env = match &spec.source {
            BundleSource::Generated { bench, target } => {
                TestEnv::build(*bench, DesignConfig::Syn1, *target)
            }
            BundleSource::Directory(dir) => TestEnv::from_design(load_design_dir(dir)?),
        };
        sp.add("sites", env.design.sites().len() as u64);
        let (localizer, provenance) = if spec.enhance_samples == 0 {
            (None, ModelProvenance::Disabled)
        } else {
            let (loc, prov) = load_or_train(spec, &env)?;
            (Some(loc), prov)
        };
        Ok(ArtifactBundle {
            env,
            mode: spec.mode(),
            diag_cfg: DiagnosisConfig::default(),
            localizer,
            provenance,
        })
    }

    /// Builds the synthetic [`DiagSample`] enhancement operates on for an
    /// arbitrary (non-generated) failure log: no injection ground truth,
    /// just the back-traced sub-graph.
    pub fn sample_for(&self, fsim: &FaultSim<'_>, log: &FailureLog) -> DiagSample {
        DiagSample {
            injected: Vec::new(),
            log: log.clone(),
            subgraph: back_trace(&self.env.het, fsim, &self.env.scan, log),
            faulty_tier: None,
            miv_truth: Vec::new(),
        }
    }
}

/// Reads and CRC-verifies a directory bundle.
fn load_design_dir(dir: &Path) -> Result<M3dDesign, String> {
    let manifest_path = dir.join("bundle.json");
    let manifest = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("reading {}: {e}", manifest_path.display()))?;
    let m =
        m3d_obs::json::parse(&manifest).map_err(|e| format!("{}: {e}", manifest_path.display()))?;
    let field = |key: &str| -> Result<String, String> {
        m.get(key)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("{}: missing `{key}`", manifest_path.display()))
    };
    let digest = |key: &str| -> Result<u32, String> {
        m.get(key)
            .and_then(Json::as_u64)
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| format!("{}: missing CRC `{key}`", manifest_path.display()))
    };
    let netlist_text = read_verified(&dir.join(field("netlist")?), digest("netlist_crc32")?)?;
    let partition_text = read_verified(&dir.join(field("partition")?), digest("partition_crc32")?)?;
    let nl = read_netlist(&netlist_text).map_err(|e| format!("netlist: {e}"))?;
    let part = read_partition(&nl, &partition_text).map_err(|e| format!("partition: {e}"))?;
    Ok(M3dDesign::new(nl, part))
}

/// Reads a file and checks its CRC-32 before handing the text to a parser.
fn read_verified(path: &Path, expected: u32) -> Result<String, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let got = crc32(&bytes);
    if got != expected {
        return Err(format!(
            "{}: CRC mismatch (manifest {expected:#010x}, file {got:#010x}) — refusing to serve \
             from a corrupt artifact",
            path.display()
        ));
    }
    String::from_utf8(bytes).map_err(|_| format!("{}: not UTF-8", path.display()))
}

/// Tries the checkpoint cache, falls back to a deterministic retrain.
fn load_or_train(
    spec: &BundleSpec,
    env: &TestEnv,
) -> Result<(FaultLocalizer, ModelProvenance), String> {
    let fingerprint = spec.fingerprint();
    if let Some(path) = &spec.model_path {
        match checkpoint::load(path) {
            Ok(ckpt) => match restore_localizer(&ckpt, fingerprint, spec.model_seed) {
                Ok(loc) => {
                    m3d_obs::counter("serve_model_restored", 1);
                    return Ok((loc, ModelProvenance::Restored));
                }
                Err(why) => {
                    // Stale fingerprint or shape drift: the cache is from
                    // another spec. Retrain rather than serve its weights.
                    m3d_obs::counter("serve_model_cache_rejected", 1);
                    let _ = why;
                }
            },
            Err(_) => {
                // Missing, truncated, or CRC-mismatching checkpoint —
                // every CheckpointError funnels into the same recovery.
                m3d_obs::counter("serve_model_cache_miss", 1);
            }
        }
    }
    let loc = train_localizer(spec, env)?;
    if let Some(path) = &spec.model_path {
        // Best-effort cache refresh; a read-only artifact directory must
        // not fail the load.
        if save_localizer(path, &loc, fingerprint).is_err() {
            m3d_obs::counter("serve_model_cache_write_failed", 1);
        }
    }
    Ok((loc, ModelProvenance::FreshlyTrained))
}

/// Trains the localization models deterministically from the spec.
///
/// The prune Classifier is deliberately dropped: its transfer-learned
/// head is not part of the checkpoint layout, and serving must be
/// bit-identical whether the models were restored or retrained. The serve
/// enhancement path is therefore reorder-only (never prunes), which is
/// also the safe choice for a service — pruning on a stale model hides
/// true suspects, reordering only changes their order.
fn train_localizer(spec: &BundleSpec, env: &TestEnv) -> Result<FaultLocalizer, String> {
    let fsim = env.fault_sim();
    let samples = try_generate_samples(
        env,
        &fsim,
        spec.mode(),
        InjectionKind::Single,
        spec.enhance_samples,
        spec.sample_seed,
    )
    .map_err(|e| format!("training-sample generation: {e}"))?;
    let refs: Vec<&DiagSample> = samples.iter().collect();
    let cfg = FrameworkConfig {
        model: ModelConfig {
            train: TrainConfig {
                epochs: spec.epochs,
                ..TrainConfig::default()
            },
            seed: spec.model_seed,
            ..ModelConfig::default()
        },
        ..FrameworkConfig::default()
    };
    let mut loc = FaultLocalizer::train(&refs, &cfg);
    loc.classifier = None;
    Ok(loc)
}

// Checkpoint layout for a serve model cache (documented here because it
// repurposes the training-cursor slots):
//   tensors    = tier GcnClassifier params ++ miv NodeClassifier params
//   epoch      = BundleSpec::fingerprint()
//   lr         = MivPinpointer::threshold
//   rng_state  = FaultLocalizer::tp_threshold.to_bits()
//   t, order   = unused (0, empty)

/// Reconstructs a [`FaultLocalizer`] from a cached checkpoint.
fn restore_localizer(
    ckpt: &TrainCheckpoint,
    fingerprint: u64,
    model_seed: u64,
) -> Result<FaultLocalizer, String> {
    let md = ModelConfig::default();
    let mut tier = GcnClassifier::new(FEATURE_DIM, md.hidden, md.layers, 2, model_seed);
    let mut miv = NodeClassifier::new(
        FEATURE_DIM,
        md.hidden,
        md.layers,
        model_seed.wrapping_add(1000),
    );
    let mut params: Vec<&mut Param> = tier.params_mut();
    params.extend(miv.params_mut());
    let cursor = ckpt.restore_into(&mut params).map_err(|e| e.to_string())?;
    if cursor.epoch as u64 != fingerprint {
        return Err(format!(
            "cached model fingerprint {:#x} does not match spec {fingerprint:#x}",
            cursor.epoch
        ));
    }
    let tp_threshold = f64::from_bits(cursor.rng_state());
    if !tp_threshold.is_finite() {
        return Err("cached T_p threshold is not finite".into());
    }
    Ok(FaultLocalizer {
        tier: TierPredictor::from_model(tier),
        miv: MivPinpointer::from_model(miv, cursor.lr),
        classifier: None,
        tp_threshold,
    })
}

/// Writes the model cache atomically (tmp file + rename, CRC trailer).
fn save_localizer(path: &Path, loc: &FaultLocalizer, fingerprint: u64) -> Result<(), String> {
    let mut params: Vec<&Param> = loc.tier.model().params();
    params.extend(loc.miv.model().params());
    let cursor = TrainCursor::restore(
        fingerprint as usize,
        0,
        loc.miv.threshold,
        loc.tp_threshold.to_bits(),
        Vec::new(),
    );
    let ckpt = TrainCheckpoint::capture(&params, &cursor);
    checkpoint::save_atomic(path, &ckpt).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec(model_path: Option<PathBuf>) -> BundleSpec {
        BundleSpec {
            source: BundleSource::Generated {
                bench: Benchmark::Aes,
                target: Some(300),
            },
            enhance_samples: 12,
            epochs: 5,
            model_path,
            ..BundleSpec::default()
        }
    }

    #[test]
    fn fingerprint_tracks_every_training_knob() {
        let base = quick_spec(None);
        let fp = base.fingerprint();
        for tweak in [
            BundleSpec {
                epochs: 6,
                ..base.clone()
            },
            BundleSpec {
                sample_seed: 2,
                ..base.clone()
            },
            BundleSpec {
                model_seed: 8,
                ..base.clone()
            },
            BundleSpec {
                compacted: true,
                ..base.clone()
            },
            BundleSpec {
                enhance_samples: 13,
                ..base.clone()
            },
        ] {
            assert_ne!(tweak.fingerprint(), fp);
        }
        // model_path does not affect the weights, so it must not affect
        // the fingerprint.
        assert_eq!(quick_spec(Some("x.ckpt".into())).fingerprint(), fp);
    }

    #[test]
    fn model_cache_round_trips_bit_identically() {
        let dir = std::env::temp_dir().join(format!("m3d_serve_cache_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let ckpt_path = dir.join("model.ckpt");
        let spec = quick_spec(Some(ckpt_path.clone()));

        let fresh = ArtifactBundle::load(&spec).expect("fresh load");
        assert_eq!(fresh.provenance, ModelProvenance::FreshlyTrained);
        let restored = ArtifactBundle::load(&spec).expect("cached load");
        assert_eq!(restored.provenance, ModelProvenance::Restored);

        let a = fresh.localizer.expect("models");
        let b = restored.localizer.expect("models");
        assert_eq!(a.tier.model().flat_params(), b.tier.model().flat_params());
        assert_eq!(a.miv.model().flat_params(), b.miv.model().flat_params());
        assert_eq!(a.tp_threshold.to_bits(), b.tp_threshold.to_bits());
        assert_eq!(a.miv.threshold.to_bits(), b.miv.threshold.to_bits());
        assert!(a.classifier.is_none() && b.classifier.is_none());

        // A corrupt checkpoint falls back to retraining, bit-identically.
        m3d_resilient::chaos::flip_bit(&ckpt_path, 40).expect("flip");
        let healed = ArtifactBundle::load(&spec).expect("healed load");
        assert_eq!(healed.provenance, ModelProvenance::FreshlyTrained);
        let c = healed.localizer.expect("models");
        assert_eq!(a.tier.model().flat_params(), c.tier.model().flat_params());

        // A different spec rejects the (now re-saved) cache.
        let other = BundleSpec {
            model_seed: 99,
            ..spec.clone()
        };
        let rebuilt = ArtifactBundle::load(&other).expect("other spec");
        assert_eq!(rebuilt.provenance, ModelProvenance::FreshlyTrained);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn directory_bundles_refuse_corrupt_artifacts() {
        use m3d_netlist::generate::GenParams;
        use m3d_netlist::io::write_netlist;
        use m3d_part::{write_partition, PartitionAlgo};

        let dir = std::env::temp_dir().join(format!("m3d_serve_bundle_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let nl = Benchmark::Aes.generate(&GenParams::new(1).with_target(200));
        let part = PartitionAlgo::MinCut.partition(&nl, 1);
        let nl_text = write_netlist(&nl);
        let part_text = write_partition(&part);
        std::fs::write(dir.join("design.nl"), &nl_text).expect("nl");
        std::fs::write(dir.join("design.part"), &part_text).expect("part");
        let manifest = Json::Obj(vec![
            ("netlist".into(), Json::Str("design.nl".into())),
            ("partition".into(), Json::Str("design.part".into())),
            (
                "netlist_crc32".into(),
                Json::Num(f64::from(crc32(nl_text.as_bytes()))),
            ),
            (
                "partition_crc32".into(),
                Json::Num(f64::from(crc32(part_text.as_bytes()))),
            ),
        ])
        .render();
        std::fs::write(dir.join("bundle.json"), &manifest).expect("manifest");

        let spec = BundleSpec {
            source: BundleSource::Directory(dir.clone()),
            ..BundleSpec::default()
        };
        let bundle = ArtifactBundle::load(&spec).expect("valid bundle");
        assert_eq!(bundle.provenance, ModelProvenance::Disabled);
        assert!(bundle.localizer.is_none());

        // Corrupt the netlist: the CRC gate must refuse before parsing.
        let garbled = m3d_resilient::chaos::garble_text(&nl_text, 99);
        std::fs::write(dir.join("design.nl"), garbled).expect("rewrite");
        let err = ArtifactBundle::load(&spec).expect_err("corrupt bundle");
        assert!(err.contains("CRC mismatch"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }
}
