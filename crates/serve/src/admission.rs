//! Admission control: a bounded queue with explicit backpressure and a
//! load-shedding watermark.
//!
//! The server never buffers unbounded work. A diagnosis request either
//!
//! 1. fits in the bounded queue → it is admitted (possibly flagged for the
//!    degraded fast path when the queue is already deep), or
//! 2. finds the queue full → the client gets a typed
//!    [`Overloaded`](crate::proto::Response::Overloaded) response with a
//!    `retry_after_ms` hint scaled to the backlog, and the server does no
//!    further work for it.
//!
//! Shedding is a *ladder*, not a cliff (DESIGN.md §16): below the
//! watermark requests get the full pipeline (diagnosis + GNN
//! enhancement); between the watermark and capacity they are admitted but
//! served the baseline ranking tagged `degraded` (enhancement skipped —
//! the expensive, optional stage); at capacity they are refused with
//! `Overloaded`. Every rung is a typed, observable outcome.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use m3d_tdf::FailureLog;

use crate::proto::Response;

/// Admission and scheduling knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Bounded queue capacity; a full queue refuses with `Overloaded`.
    pub queue_capacity: usize,
    /// Queue depth at which admitted requests are degraded (enhancement
    /// skipped). Clamped to `queue_capacity`.
    pub shed_watermark: usize,
    /// Deadline applied when the request names none.
    pub default_deadline_ms: u64,
    /// Hard cap on client-requested deadlines (a client cannot pin a slot
    /// for minutes).
    pub max_deadline_ms: u64,
    /// Most jobs drained into one scoring batch.
    pub batch_max: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_capacity: 64,
            shed_watermark: 48,
            default_deadline_ms: 2_000,
            max_deadline_ms: 10_000,
            batch_max: 8,
        }
    }
}

/// One admitted diagnosis request, queued for the batcher.
#[derive(Debug)]
pub struct Job {
    /// Client-chosen request id (echoed in the response).
    pub id: u64,
    /// Server-assigned admission sequence number (1-based). Stable across
    /// a panic-recovery re-run of the same job, which is what makes the
    /// chaos panic injector deterministic.
    pub seq: u64,
    /// The parsed failure log.
    pub log: FailureLog,
    /// Admission timestamp (queue-latency accounting).
    pub enqueued: Instant,
    /// Absolute deadline; past it the job is cancelled.
    pub deadline: Instant,
    /// The budget behind `deadline`, echoed in `DeadlineExceeded`.
    pub budget_ms: u64,
    /// Cooperative cancellation flag, set by the deadline reaper and
    /// polled inside the scoring loops.
    pub cancel: Arc<AtomicBool>,
    /// Serve the baseline (un-enhanced) ranking, tagged degraded.
    pub degrade: bool,
    /// The client opted out of enhancement (not a degradation).
    pub no_enhance: bool,
    /// Where the batcher sends the response (the connection handler owns
    /// the socket).
    pub reply: Sender<Response>,
}

/// The admission gate handed to every connection handler. Cloneable; all
/// clones share one bounded queue and one depth gauge.
#[derive(Clone)]
pub struct Admission {
    tx: SyncSender<Job>,
    depth: Arc<AtomicUsize>,
    seq: Arc<AtomicU64>,
    cfg: AdmissionConfig,
}

/// Builds the gate and the receiving end the batcher drains.
pub fn admission_queue(cfg: AdmissionConfig) -> (Admission, Receiver<Job>) {
    let (tx, rx) = sync_channel(cfg.queue_capacity.max(1));
    (
        Admission {
            tx,
            depth: Arc::new(AtomicUsize::new(0)),
            seq: Arc::new(AtomicU64::new(0)),
            cfg,
        },
        rx,
    )
}

impl Admission {
    /// The shared config.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Current queue depth (gauge for stats).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Resolves a client-requested budget against the server's default
    /// and cap.
    pub fn budget_ms(&self, requested: Option<u64>) -> u64 {
        requested
            .unwrap_or(self.cfg.default_deadline_ms)
            .clamp(1, self.cfg.max_deadline_ms)
    }

    /// Tries to admit a diagnosis request.
    ///
    /// On success the job is queued (its `degrade` flag reflecting the
    /// shed watermark) and its cancellation flag is returned so the caller
    /// can register the deadline with the reaper. On a full queue the
    /// typed `Overloaded` response to send back is returned instead.
    pub fn admit(
        &self,
        id: u64,
        log: FailureLog,
        requested_deadline_ms: Option<u64>,
        no_enhance: bool,
        reply: Sender<Response>,
    ) -> Result<(Instant, Arc<AtomicBool>), Response> {
        let depth = self.depth.load(Ordering::Relaxed);
        let budget_ms = self.budget_ms(requested_deadline_ms);
        let now = Instant::now();
        let deadline = now + Duration::from_millis(budget_ms);
        let cancel = Arc::new(AtomicBool::new(false));
        let job = Job {
            id,
            seq: self.seq.fetch_add(1, Ordering::Relaxed) + 1,
            log,
            enqueued: now,
            deadline,
            budget_ms,
            cancel: Arc::clone(&cancel),
            degrade: depth >= self.cfg.shed_watermark.min(self.cfg.queue_capacity),
            no_enhance,
            reply,
        };
        match self.tx.try_send(job) {
            Ok(()) => {
                let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
                self.sample_depth(depth);
                Ok((deadline, cancel))
            }
            Err(TrySendError::Full(_)) => Err(Response::Overloaded {
                id,
                retry_after_ms: self.retry_after_ms(),
            }),
            Err(TrySendError::Disconnected(_)) => Err(Response::Error {
                id: Some(id),
                kind: "internal".into(),
                message: "diagnosis queue closed".into(),
            }),
        }
    }

    /// Backoff hint for a refused request, scaled to the backlog: a full
    /// queue of slow jobs earns a longer hint than a momentary spike.
    fn retry_after_ms(&self) -> u64 {
        let depth = self.depth.load(Ordering::Relaxed) as u64;
        10 + depth.saturating_mul(5)
    }

    /// Records that the batcher dequeued one job.
    pub fn note_dequeued(&self) {
        // `admit` increments after a successful try_send, so the counter
        // can transiently lag the channel; saturate instead of wrapping.
        let updated = self
            .depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(1))
            });
        if let Ok(prev) = updated {
            self.sample_depth(prev.saturating_sub(1));
        }
    }

    /// Exports the instantaneous queue depth on every enqueue/dequeue: a
    /// depth gauge, the distance to the shed watermark (negative once
    /// shedding has begun), and a depth histogram so the exporter can
    /// serve sliding depth quantiles.
    fn sample_depth(&self, depth: usize) {
        if !m3d_obs::enabled() {
            return;
        }
        let watermark = self.cfg.shed_watermark.min(self.cfg.queue_capacity);
        m3d_obs::gauge("serve.queue_depth", depth as f64);
        m3d_obs::gauge(
            "serve.shed_watermark_distance",
            watermark as f64 - depth as f64,
        );
        m3d_obs::observe_with(
            "serve.queue_depth_hist",
            &m3d_obs::QUEUE_DEPTH_BOUNDS,
            depth as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn tiny() -> AdmissionConfig {
        AdmissionConfig {
            queue_capacity: 2,
            shed_watermark: 1,
            ..AdmissionConfig::default()
        }
    }

    #[test]
    fn full_queue_refuses_with_typed_backpressure() {
        let (adm, rx) = admission_queue(tiny());
        let (reply, _keep) = channel();
        assert!(adm
            .admit(1, FailureLog::default(), None, false, reply.clone())
            .is_ok());
        assert!(adm
            .admit(2, FailureLog::default(), None, false, reply.clone())
            .is_ok());
        match adm.admit(3, FailureLog::default(), None, false, reply) {
            Err(Response::Overloaded { id, retry_after_ms }) => {
                assert_eq!(id, 3);
                assert!(retry_after_ms >= 10);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // Draining reopens admission.
        let job = rx.recv().expect("queued job");
        adm.note_dequeued();
        assert_eq!(job.id, 1);
        assert!(!job.degrade, "first admit saw an empty queue");
        let (reply, _keep) = channel();
        assert!(adm
            .admit(4, FailureLog::default(), None, false, reply)
            .is_ok());
        assert_eq!(adm.depth(), 2);
    }

    #[test]
    fn shed_watermark_degrades_instead_of_refusing() {
        let (adm, _rx) = admission_queue(tiny());
        let (reply, _keep) = channel();
        adm.admit(1, FailureLog::default(), None, false, reply.clone())
            .expect("admit");
        adm.admit(2, FailureLog::default(), None, false, reply)
            .expect("admit");
        let jobs: Vec<Job> = _rx.try_iter().collect();
        assert_eq!(jobs.len(), 2);
        assert!(!jobs[0].degrade);
        assert!(jobs[1].degrade, "above the watermark");
    }

    #[test]
    fn deadlines_are_defaulted_and_capped() {
        let (adm, _rx) = admission_queue(AdmissionConfig::default());
        assert_eq!(adm.budget_ms(None), 2_000);
        assert_eq!(adm.budget_ms(Some(0)), 1);
        assert_eq!(adm.budget_ms(Some(250)), 250);
        assert_eq!(adm.budget_ms(Some(u64::MAX)), 10_000);
    }
}
