//! Service-level tests: the chaos invariant, hot reload, typed overload
//! and deadline outcomes, the shed ladder, and shutdown drain.
//!
//! The invariant everything here defends: for every well-formed request,
//! the served report is **bit-identical** to an offline
//! [`Diagnoser::diagnose`] run — at any pool width, under any chaos
//! schedule. Infrastructure failure is only ever visible as a typed
//! protocol outcome.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use m3d_diagnosis::Diagnoser;
use m3d_fault_localization::{try_generate_samples, InjectionKind};
use m3d_netlist::generate::Benchmark;
use m3d_serve::proto::{read_frame, write_frame, Decoder, Request, Response};
use m3d_serve::{
    run_load, spawn_server, AdmissionConfig, ArtifactBundle, BundleSource, BundleSpec, LoadConfig,
    ServeConfig,
};
use m3d_tdf::write_failure_log;

fn spec(target: usize, enhance_samples: usize) -> BundleSpec {
    BundleSpec {
        source: BundleSource::Generated {
            bench: Benchmark::Aes,
            target: Some(target),
        },
        enhance_samples,
        epochs: 2,
        ..BundleSpec::default()
    }
}

fn cfg_with(admission: AdmissionConfig) -> ServeConfig {
    ServeConfig {
        admission,
        ..ServeConfig::default()
    }
}

/// A minimal framed test client.
struct Client {
    stream: TcpStream,
    dec: Decoder,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        // Generous: the server may still be building artifacts in a debug
        // build when the first request lands.
        stream
            .set_read_timeout(Some(Duration::from_secs(300)))
            .expect("timeout");
        Client {
            stream,
            dec: Decoder::new(),
        }
    }

    fn send(&mut self, req: &Request) {
        write_frame(&mut self.stream, &req.encode()).expect("send");
    }

    fn recv(&mut self) -> Response {
        let line = read_frame(&mut self.stream, &mut self.dec)
            .expect("read frame")
            .expect("response before EOF");
        Response::parse(&line).expect("parse response")
    }

    fn call(&mut self, req: &Request) -> Response {
        self.send(req);
        self.recv()
    }
}

/// One synthetic failure log plus its offline expected reports.
struct Offline {
    log_text: String,
    plain_text: String,
    shed_text: String,
}

/// Computes the offline ground truth the served reports must match.
fn offline_expected(spec: &BundleSpec) -> Offline {
    let bundle = ArtifactBundle::load(spec).expect("offline bundle");
    let fsim = bundle.env.fault_sim();
    let diagnoser = Diagnoser::new(&fsim, &bundle.env.scan, bundle.mode, bundle.diag_cfg);
    let sample = &try_generate_samples(
        &bundle.env,
        &fsim,
        bundle.mode,
        InjectionKind::Single,
        1,
        0xBEEF,
    )
    .expect("sample")[0];
    let plain = diagnoser.diagnose(&sample.log);
    let mut shed = plain.clone();
    shed.mark_degraded();
    Offline {
        log_text: write_failure_log(&sample.log),
        plain_text: plain.to_string(),
        shed_text: shed.to_string(),
    }
}

/// The tentpole invariant, end to end: ≥ 48 chaos-ridden client sessions
/// per pool width, every served report bit-compared against the offline
/// diagnosis, worker panics injected and contained, zero crashed clean
/// connections.
#[test]
fn served_reports_match_offline_at_any_width_under_chaos() {
    let cfg = LoadConfig {
        spec: spec(220, 6),
        clients: 24,
        requests_per_client: 2,
        widths: vec![1, 4],
        chaos_seed: 7,
        chaos_rate: 0.35,
        deadline_ms: None,
        log_pool: 6,
        server_panic_every: Some(5),
        admission: AdmissionConfig::default(),
        frame_timeout_ms: 200,
        ..LoadConfig::default()
    };
    let report = run_load(&cfg).expect("load run");
    for w in &report.widths {
        assert_eq!(
            w.crashed_connections, 0,
            "width {}: clean connections crashed",
            w.width
        );
        assert_eq!(
            w.mismatches, 0,
            "width {}: served report diverged from offline: {:?}",
            w.width, w.first_mismatch
        );
        assert!(w.completed > 0, "width {}: nothing completed", w.width);
    }
    let panics: u64 = report.widths.iter().map(|w| w.panics_contained).sum();
    assert!(panics > 0, "the chaos panic hook never fired");
    assert!(report.clean());
}

/// Hot reload is a generation swap: the reloading client gets a typed ack
/// naming the new generation, fresh connections see it, and diagnoses stay
/// bit-identical across the swap. Shutdown then drains cleanly.
#[test]
fn reload_swaps_generations_and_preserves_reports() {
    let spec = spec(200, 0);
    let offline = offline_expected(&spec);
    let server = spawn_server(&spec, &ServeConfig::default()).expect("spawn");
    let addr = server.addr();

    let mut c = Client::connect(addr);
    match c.call(&Request::Ping { id: 1 }) {
        Response::Pong { generation, .. } => assert_eq!(generation, 1),
        other => panic!("expected pong, got {other:?}"),
    }
    match c.call(&Request::Diagnose {
        id: 2,
        log: offline.log_text.clone(),
        deadline_ms: None,
        no_enhance: false,
    }) {
        Response::Report {
            text,
            degraded,
            enhanced,
            ..
        } => {
            assert_eq!(text, offline.plain_text, "generation 1 diverged");
            assert!(!degraded && !enhanced);
        }
        other => panic!("expected report, got {other:?}"),
    }
    match c.call(&Request::Reload { id: 3 }) {
        Response::Reloaded { generation, .. } => assert_eq!(generation, 2),
        other => panic!("expected reloaded, got {other:?}"),
    }

    // The reloading connection closes; the swapped generation serves new
    // ones, bit-identically (same spec → same bundle).
    let mut c = Client::connect(addr);
    match c.call(&Request::Ping { id: 4 }) {
        Response::Pong { generation, .. } => assert_eq!(generation, 2),
        other => panic!("expected pong, got {other:?}"),
    }
    match c.call(&Request::Diagnose {
        id: 5,
        log: offline.log_text.clone(),
        deadline_ms: None,
        no_enhance: false,
    }) {
        Response::Report { text, .. } => assert_eq!(text, offline.plain_text, "reload diverged"),
        other => panic!("expected report, got {other:?}"),
    }

    let mut c = Client::connect(addr);
    match c.call(&Request::Shutdown { id: 6 }) {
        Response::ShuttingDown { id } => assert_eq!(id, 6),
        other => panic!("expected shutting_down, got {other:?}"),
    }
    let summary = server.join().expect("clean shutdown");
    assert_eq!(summary.generations, 2);
    assert_eq!(summary.stats.completed, 2);
}

/// A burst into a capacity-1 queue: most requests are refused with typed
/// `Overloaded` (with a backoff hint), the rest complete bit-identically —
/// nothing hangs, nothing is silently dropped.
#[test]
fn full_queues_refuse_with_typed_backpressure() {
    let spec = spec(200, 0);
    let offline = offline_expected(&spec);
    let server = spawn_server(
        &spec,
        &cfg_with(AdmissionConfig {
            queue_capacity: 1,
            shed_watermark: 1,
            batch_max: 1,
            ..AdmissionConfig::default()
        }),
    )
    .expect("spawn");

    let mut c = Client::connect(server.addr());
    const BURST: u64 = 30;
    for id in 0..BURST {
        c.send(&Request::Diagnose {
            id,
            log: offline.log_text.clone(),
            deadline_ms: None,
            no_enhance: false,
        });
    }
    let (mut reports, mut overloaded) = (0u64, 0u64);
    for _ in 0..BURST {
        match c.recv() {
            Response::Report { text, .. } => {
                // Above the watermark the report is the shed (degraded)
                // baseline; below it, the plain one. Both must be
                // bit-identical to their offline variant.
                assert!(
                    text == offline.plain_text || text == offline.shed_text,
                    "burst report diverged from offline:\n{text}"
                );
                reports += 1;
            }
            Response::Overloaded { retry_after_ms, .. } => {
                assert!(retry_after_ms >= 10, "hint must scale from the base");
                overloaded += 1;
            }
            Response::DeadlineExceeded { .. } => {}
            other => panic!("untyped outcome in a burst: {other:?}"),
        }
    }
    assert!(
        overloaded > 0,
        "a capacity-1 queue must refuse some of {BURST}"
    );
    assert!(reports > 0, "admitted requests must still complete");

    let mut c = Client::connect(server.addr());
    c.call(&Request::Shutdown { id: 99 });
    server.join().expect("clean shutdown");
}

/// Requests carrying a 1 ms budget against a serial (batch_max = 1) queue:
/// jobs expire while queued or mid-scoring and are answered with typed
/// `DeadlineExceeded` echoing the budget — never a hang, never a stale
/// report after cancellation.
#[test]
fn expired_budgets_are_typed_deadline_exceeded() {
    let spec = spec(200, 0);
    let offline = offline_expected(&spec);
    let server = spawn_server(
        &spec,
        &cfg_with(AdmissionConfig {
            queue_capacity: 64,
            shed_watermark: 64,
            batch_max: 1,
            ..AdmissionConfig::default()
        }),
    )
    .expect("spawn");

    let mut c = Client::connect(server.addr());
    const BURST: u64 = 20;
    for id in 0..BURST {
        c.send(&Request::Diagnose {
            id,
            log: offline.log_text.clone(),
            deadline_ms: Some(1),
            no_enhance: false,
        });
    }
    let mut expired = 0u64;
    for _ in 0..BURST {
        match c.recv() {
            Response::DeadlineExceeded { budget_ms, .. } => {
                assert_eq!(budget_ms, 1, "the response echoes the budget");
                expired += 1;
            }
            Response::Report { text, .. } => {
                assert_eq!(text, offline.plain_text, "pre-deadline report diverged");
            }
            Response::Overloaded { .. } => {}
            other => panic!("untyped outcome: {other:?}"),
        }
    }
    assert!(
        expired > 0,
        "1 ms budgets behind a serial queue must expire some of {BURST}"
    );

    let mut c = Client::connect(server.addr());
    c.call(&Request::Shutdown { id: 99 });
    server.join().expect("clean shutdown");
}

/// The shed ladder's middle rung: with the watermark at zero every
/// admitted request skips enhancement and serves the baseline ranking
/// tagged `degraded` — bit-identical to the offline baseline, never a
/// half-enhanced hybrid.
#[test]
fn shed_requests_serve_the_degraded_baseline() {
    let spec = spec(220, 6);
    let offline = offline_expected(&spec);
    let server = spawn_server(
        &spec,
        &cfg_with(AdmissionConfig {
            shed_watermark: 0,
            ..AdmissionConfig::default()
        }),
    )
    .expect("spawn");

    let mut c = Client::connect(server.addr());
    match c.call(&Request::Diagnose {
        id: 1,
        log: offline.log_text.clone(),
        deadline_ms: None,
        no_enhance: false,
    }) {
        Response::Report {
            degraded,
            enhanced,
            action,
            text,
            ..
        } => {
            assert!(degraded, "shed reports carry the degraded tag");
            assert!(!enhanced, "shedding skips the enhancement stage");
            assert_eq!(action, None);
            assert_eq!(text, offline.shed_text, "shed report diverged from offline");
        }
        other => panic!("expected report, got {other:?}"),
    }

    c.call(&Request::Shutdown { id: 2 });
    let summary = server.join().expect("clean shutdown");
    assert_eq!(summary.stats.degraded, 1);
}
