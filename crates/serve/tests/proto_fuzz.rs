//! Fuzzing the wire protocol: the frame decoder and the message parsers
//! face untrusted testers over TCP, so whatever bytes arrive — truncated
//! frames, invalid UTF-8, oversized length prefixes, interleaved partial
//! writes, chaos-garbled frames — the outcome must be a decoded frame or
//! a typed [`ProtoError`], never a panic and never an unbounded buffer
//! (the style of `crates/tdf/tests/log_fuzz.rs`, one protocol layer up).

use proptest::prelude::*;

use m3d_resilient::chaos::ChaosSchedule;
use m3d_serve::proto::{
    encode_frame, Decoder, ProtoError, Request, Response, MAX_FRAME_LEN, MAX_PREFIX_DIGITS,
};

/// Drains a decoder: frames decoded so far plus the terminal error, if any.
fn drain(dec: &mut Decoder) -> (Vec<String>, Option<ProtoError>) {
    let mut out = Vec::new();
    loop {
        match dec.next_frame() {
            Ok(Some(f)) => out.push(f),
            Ok(None) => return (out, None),
            Err(e) => return (out, Some(e)),
        }
    }
}

/// Maps fuzz bytes into a printable-ASCII payload string (the vendored
/// proptest has no regex string strategies).
fn printable(bytes: &[u8]) -> String {
    bytes.iter().map(|b| (0x20 + b % 0x5f) as char).collect()
}

/// Maps fuzz code points into a hostile string: the full char space,
/// control characters, quotes, and backslashes included.
fn hostile(points: &[u32]) -> String {
    points
        .iter()
        .map(|&p| char::from_u32(p % 0x11_0000).unwrap_or('\u{fffd}'))
        .collect()
}

/// Feeds `bytes` split at the given cut points (any interleaving of
/// partial writes) and drains after every push.
fn decode_split(bytes: &[u8], cuts: &[usize]) -> (Vec<String>, Option<ProtoError>) {
    let mut dec = Decoder::new();
    let mut frames = Vec::new();
    let mut start = 0;
    let mut cut_points: Vec<usize> = cuts.iter().map(|&c| c % (bytes.len() + 1)).collect();
    cut_points.sort_unstable();
    cut_points.push(bytes.len());
    for end in cut_points {
        if end > start {
            dec.push(&bytes[start..end]);
            start = end;
        }
        let (got, err) = drain(&mut dec);
        frames.extend(got);
        if let Some(e) = err {
            return (frames, Some(e));
        }
    }
    (frames, None)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Raw fuzz: arbitrary bytes never panic the decoder; any failure is a
    /// typed error.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut dec = Decoder::new();
        dec.push(&bytes);
        let _ = drain(&mut dec);
    }

    /// Interleaved partial writes decode identically to one contiguous
    /// write — the decoder is a pure function of the byte sequence, not of
    /// the TCP segmentation.
    #[test]
    fn any_split_schedule_decodes_identically(
        raw in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 0..6),
        cuts in prop::collection::vec(any::<usize>(), 0..12),
    ) {
        let payloads: Vec<String> = raw.iter().map(|b| printable(b)).collect();
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&encode_frame(p));
        }
        let whole = decode_split(&stream, &[]);
        let split = decode_split(&stream, &cuts);
        prop_assert_eq!(&whole.0, &payloads);
        prop_assert!(whole.1.is_none());
        prop_assert_eq!(split, whole);
    }

    /// A truncated valid stream never errors mid-prefix spuriously: it
    /// decodes every complete frame and then waits for more bytes.
    #[test]
    fn truncation_is_need_more_bytes_not_an_error(
        raw in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 1..5),
        keep_permille in 0u64..1000,
    ) {
        let payloads: Vec<String> = raw.iter().map(|b| printable(b)).collect();
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&encode_frame(p));
        }
        let keep = (stream.len() as u64 * keep_permille / 1000) as usize;
        let (frames, err) = decode_split(&stream[..keep], &[]);
        prop_assert!(err.is_none(), "valid prefix must not error: {err:?}");
        prop_assert!(frames.len() <= payloads.len());
        for (got, want) in frames.iter().zip(&payloads) {
            prop_assert_eq!(got, want);
        }
    }

    /// Oversized length declarations are rejected as typed errors BEFORE
    /// any payload is buffered, whatever garbage follows.
    #[test]
    fn oversized_prefixes_are_rejected_up_front(
        extra in 1u64..1_000_000,
        tail in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let len = MAX_FRAME_LEN as u64 + extra;
        let mut bytes = format!("{len}\n").into_bytes();
        bytes.extend_from_slice(&tail);
        let (frames, err) = decode_split(&bytes, &[]);
        prop_assert!(frames.is_empty());
        // Longer-than-the-prefix-budget declarations trip the digit cap
        // instead; either way the verdict is typed and immediate.
        prop_assert!(
            matches!(
                err,
                Some(ProtoError::Oversized { .. }) | Some(ProtoError::BadLengthPrefix { .. })
            ),
            "{err:?}"
        );
    }

    /// A prefix that never terminates cannot buffer unboundedly: after
    /// MAX_PREFIX_DIGITS + 1 bytes without a newline the decoder gives a
    /// typed verdict.
    #[test]
    fn runaway_prefixes_are_bounded(digits in prop::collection::vec(0u8..10, 0..64)) {
        let bytes: Vec<u8> = digits.iter().map(|d| b'0' + d).collect();
        let mut dec = Decoder::new();
        dec.push(&bytes);
        let (_, err) = drain(&mut dec);
        if bytes.len() > MAX_PREFIX_DIGITS {
            prop_assert!(matches!(err, Some(ProtoError::BadLengthPrefix { .. })), "{err:?}");
        } else {
            prop_assert!(err.is_none(), "short prefixes just wait: {err:?}");
        }
    }

    /// Invalid UTF-8 payloads are a typed error, not a panic or a lossy
    /// decode.
    #[test]
    fn invalid_utf8_is_typed(payload in prop::collection::vec(any::<u8>(), 1..64)) {
        let mut payload = payload;
        payload[0] = 0xff; // guarantee invalid UTF-8
        let mut bytes = format!("{}\n", payload.len()).into_bytes();
        bytes.extend_from_slice(&payload);
        bytes.push(b'\n');
        let (frames, err) = decode_split(&bytes, &[]);
        prop_assert!(frames.is_empty());
        prop_assert_eq!(err, Some(ProtoError::InvalidUtf8));
    }
}

// Split into a second block: the vendored proptest macro recurses per
// test, and one block with all nine overruns the default recursion limit.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Chaos-garbled well-formed frames (the same injector the load
    /// harness uses) either still decode or fail typed; the decoder stays
    /// poisoned afterwards instead of resyncing on garbage.
    #[test]
    fn garbled_frames_fail_typed_and_poison(seed in 0u64..4096) {
        let mut frame = encode_frame(&Request::Diagnose {
            id: seed,
            log: "# m3d-faillog v1\nfail pattern 3 flop 2\n".into(),
            deadline_ms: Some(100),
            no_enhance: false,
        }.encode());
        let mut schedule = ChaosSchedule::new(seed);
        schedule.garble(&mut frame);
        let mut dec = Decoder::new();
        dec.push(&frame);
        let (frames, err) = drain(&mut dec);
        for f in frames {
            // Framing survived the corruption; the payload may still be
            // JSON-garbled — that too must be a typed verdict.
            let _ = Request::parse(&f);
        }
        if err.is_some() {
            dec.push(&encode_frame("{\"type\":\"ping\",\"id\":1}"));
            let (after, again) = drain(&mut dec);
            prop_assert!(after.is_empty() && again.is_some(), "poisoned decoders must not resync");
        }
    }

    /// Arbitrary JSON-ish text through the message parsers: never a
    /// panic, and every rejection is a typed error.
    #[test]
    fn message_parsers_never_panic(raw in prop::collection::vec(any::<u8>(), 0..120)) {
        let line = printable(&raw);
        let _ = Request::parse(&line);
        let _ = Response::parse(&line);
    }

    /// Well-formed requests round-trip byte-exactly through the obs JSON
    /// codec, whatever the log text contains (quotes, backslashes,
    /// control characters included).
    #[test]
    fn requests_roundtrip_with_hostile_strings(
        id in any::<u32>(),
        points in prop::collection::vec(any::<u32>(), 0..80),
        has_deadline in any::<bool>(),
        deadline_ms in 0u64..100_000,
        no_enhance in any::<bool>(),
    ) {
        let req = Request::Diagnose {
            id: u64::from(id),
            log: hostile(&points),
            deadline_ms: has_deadline.then_some(deadline_ms),
            no_enhance,
        };
        prop_assert_eq!(Request::parse(&req.encode()).expect("own encoding"), req);
    }
}
