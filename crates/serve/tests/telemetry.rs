//! Telemetry-plane tests: the exporter is observable without being
//! influential.
//!
//! Two invariants layered on top of the §16 chaos contract:
//!
//! 1. **Bit-neutrality** — hammering the telemetry exporter with scrapes
//!    mid-load must not perturb a single served byte: the chaos run
//!    still reports zero mismatches and zero crashed clean connections.
//! 2. **Crash forensics** — every chaos-injected worker panic leaves a
//!    `flight-panic-*.jsonl` artifact that parses back into flight
//!    events naming the panicking request and renders as a causal
//!    timeline (the loadgen verifies each artifact; the run fails on
//!    any shortfall).

use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use m3d_netlist::generate::Benchmark;
use m3d_serve::proto::{read_frame, write_frame, Decoder, Request, Response};
use m3d_serve::{
    run_load, scrape, spawn_server, AdmissionConfig, BundleSource, BundleSpec, LoadConfig,
    ServeConfig,
};

fn spec(target: usize, enhance_samples: usize) -> BundleSpec {
    BundleSpec {
        source: BundleSource::Generated {
            bench: Benchmark::Aes,
            target: Some(target),
        },
        enhance_samples,
        epochs: 2,
        ..BundleSpec::default()
    }
}

/// A unique scratch directory under the system temp dir; tests clean up
/// after themselves on success.
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("m3d-telemetry-{tag}-{}-{n}", std::process::id()))
}

/// A live server with `--telemetry-addr` answers scrapes with a parsable
/// snapshot carrying the registry counters, rolling rates, sliding
/// quantiles, SLO burns, and the exporter's own overhead gauge — and the
/// scrape path never disturbs request handling.
#[test]
fn exporter_serves_parsable_snapshots_from_a_live_server() {
    let spec = spec(200, 0);
    let cfg = ServeConfig {
        telemetry_addr: Some("127.0.0.1:0".into()),
        slo: Some("availability>=0.5,p99_ms<=60000,degraded_frac<=1.0".into()),
        ..ServeConfig::default()
    };
    let server = spawn_server(&spec, &cfg).expect("spawn");
    let taddr = server.telemetry_addr().expect("telemetry bound");

    // Drive a little traffic so the counters move.
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(300)))
        .expect("timeout");
    let mut stream = stream;
    let mut dec = Decoder::new();
    for id in 0..3u64 {
        write_frame(&mut stream, &Request::Ping { id }.encode()).expect("send");
        let line = read_frame(&mut stream, &mut dec)
            .expect("read")
            .expect("pong");
        assert!(matches!(
            Response::parse(&line).expect("parse"),
            Response::Pong { .. }
        ));
    }

    // Give the 100 ms sampler a couple of ticks, then scrape repeatedly:
    // every answer must be a well-formed snapshot.
    std::thread::sleep(Duration::from_millis(350));
    let mut last = None;
    for _ in 0..5 {
        let snap = scrape(taddr).expect("scrape");
        assert_eq!(snap.get("type").and_then(|t| t.as_str()), Some("telemetry"));
        for key in ["stats", "counters", "gauges", "rates", "quantiles", "slo"] {
            assert!(snap.get(key).is_some(), "snapshot missing {key:?}");
        }
        let overhead = snap
            .get("exporter")
            .and_then(|e| e.get("overhead_pct"))
            .and_then(|v| v.as_f64())
            .expect("exporter overhead gauge");
        assert!((0.0..=100.0).contains(&overhead), "overhead {overhead}");
        last = Some(snap);
    }
    let snap = last.expect("at least one scrape");
    let conns = snap
        .get("counters")
        .and_then(|c| c.get("serve.connections"))
        .and_then(|v| v.as_u64())
        .expect("connections counter");
    assert!(conns >= 1, "the driven connection must be counted");
    assert!(
        snap.get("slo")
            .and_then(|s| s.get("breached"))
            .is_some_and(|b| b == &m3d_obs::Json::Bool(false)),
        "a wide-open SLO must not read as breached"
    );

    // The scraped server still serves and drains cleanly.
    write_frame(&mut stream, &Request::Shutdown { id: 9 }.encode()).expect("send");
    let _ = read_frame(&mut stream, &mut dec);
    server.join().expect("clean shutdown");
}

/// The acceptance gate: a chaos run at widths {1, 4} with the exporter
/// scraped mid-load and the flight recorder armed. Zero mismatches and
/// zero crashed connections prove bit-neutrality; the loadgen's artifact
/// verification proves every injected panic produced a renderable dump.
#[test]
fn chaos_run_stays_bit_neutral_under_scraping_and_dumps_every_panic() {
    let flight_dir = scratch("chaos");
    let cfg = LoadConfig {
        spec: spec(220, 6),
        clients: 12,
        requests_per_client: 2,
        widths: vec![1, 4],
        chaos_seed: 11,
        chaos_rate: 0.3,
        deadline_ms: None,
        log_pool: 6,
        server_panic_every: Some(4),
        admission: AdmissionConfig::default(),
        frame_timeout_ms: 200,
        telemetry: true,
        flight_dir: Some(flight_dir.clone()),
        ..LoadConfig::default()
    };
    let report = run_load(&cfg).expect("load run");
    let mut panics = 0;
    for w in &report.widths {
        assert_eq!(
            w.crashed_connections, 0,
            "width {}: scraping perturbed a clean connection",
            w.width
        );
        assert_eq!(
            w.mismatches, 0,
            "width {}: served report diverged under scraping: {:?}",
            w.width, w.first_mismatch
        );
        assert!(
            w.telemetry_scrapes > 0,
            "width {}: the scraper never landed a snapshot",
            w.width
        );
        assert_eq!(
            w.telemetry_errors, 0,
            "width {}: telemetry plane violated (bad snapshot or flight dump)",
            w.width
        );
        // `telemetry_errors == 0` above already proves every contained
        // panic left a verified dump (the loadgen counts any shortfall
        // against the server's panic count as an error); this only pins
        // the happy-path visibility of the artifacts themselves.
        assert!(
            w.panics_contained == 0 || w.flight_dumps > 0,
            "width {}: {} panic(s) but no verified flight dump",
            w.width,
            w.panics_contained
        );
        panics += w.panics_contained;
    }
    assert!(panics > 0, "the chaos panic hook never fired");
    assert!(report.clean());
    std::fs::remove_dir_all(&flight_dir).ok();
}
