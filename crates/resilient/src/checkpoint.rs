//! Versioned, CRC32-checksummed binary training snapshots.
//!
//! A checkpoint captures everything the training loop needs to continue a
//! run bit-for-bit: every parameter tensor (value + both Adam moments),
//! the epoch/step cursor, the current learning rate, the shuffle-RNG state
//! and the composed shuffle order. All scalars are little-endian; `f32`
//! round-trips through `to_le_bytes`/`from_le_bytes`, which is lossless,
//! so a restored model is bitwise the one that was saved.
//!
//! # On-disk layout (version 1)
//!
//! | field | type | notes |
//! |---|---|---|
//! | magic | 8 bytes | `M3DCKPT1` |
//! | version | u32 | currently 1 |
//! | epoch | u64 | completed epochs |
//! | t | u64 | Adam step count |
//! | rng_state | u64 | shuffle-RNG raw state |
//! | lr | f32 | current learning rate |
//! | order len | u32 | then that many u32 sample indices |
//! | tensor count | u32 | |
//! | per tensor | u32 rows, u32 cols, then rows·cols f32 each for value, m, v | |
//! | crc32 | u32 | IEEE CRC-32 of every preceding byte |
//!
//! Files are written via write-to-temp + `fsync` + atomic rename
//! ([`save_atomic`]), so a crash mid-write leaves either the previous
//! checkpoint or none — never a torn one. Torn or corrupted files that do
//! appear (the chaos suite makes them on purpose) are rejected by the CRC
//! trailer or the length checks with a typed [`CheckpointError`].

use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

use m3d_gnn::{Matrix, Param, TrainCursor};

/// File magic: "M3DCKPT" plus the major layout generation.
pub const MAGIC: [u8; 8] = *b"M3DCKPT1";
/// Current checkpoint layout version.
pub const VERSION: u32 = 1;

/// IEEE CRC-32 (the zlib/PNG polynomial, reflected) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One parameter tensor's full Adam state.
#[derive(Clone, Debug, PartialEq)]
pub struct TensorState {
    /// Row count.
    pub rows: u32,
    /// Column count.
    pub cols: u32,
    /// Parameter values, row-major.
    pub value: Vec<f32>,
    /// First Adam moment, row-major.
    pub m: Vec<f32>,
    /// Second Adam moment, row-major.
    pub v: Vec<f32>,
}

/// A complete training snapshot: cursor plus every parameter tensor.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainCheckpoint {
    /// Completed epochs.
    pub epoch: u64,
    /// Adam step count.
    pub t: u64,
    /// Raw shuffle-RNG state.
    pub rng_state: u64,
    /// Current learning rate.
    pub lr: f32,
    /// The composed shuffle order (epoch `k`'s permutation is `k` shuffles
    /// deep — it cannot be reconstructed from the seed, so it is stored).
    pub order: Vec<u32>,
    /// Parameter tensors in the model's fixed `params()` order.
    pub tensors: Vec<TensorState>,
}

/// Why a checkpoint could not be written, read, or applied.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The file ended before the declared payload (e.g. a torn write that
    /// bypassed the atomic-rename protocol, or chaos truncation).
    Truncated {
        /// Byte offset at which data ran out.
        at: usize,
    },
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The layout version is not one this build understands.
    UnsupportedVersion {
        /// The version found in the file.
        found: u32,
    },
    /// The CRC-32 trailer does not match the payload (bit rot or chaos
    /// bit-flips).
    CrcMismatch {
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// The snapshot holds a different number of tensors than the model.
    TensorCountMismatch {
        /// Tensors the model expects.
        expected: usize,
        /// Tensors the snapshot holds.
        found: usize,
    },
    /// A tensor's shape differs from the model parameter it should fill.
    ShapeMismatch {
        /// Index of the offending tensor.
        tensor: usize,
        /// Shape the model expects.
        expected: (usize, usize),
        /// Shape the snapshot holds.
        found: (usize, usize),
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Truncated { at } => {
                write!(f, "checkpoint truncated at byte {at}")
            }
            CheckpointError::BadMagic => f.write_str("not a checkpoint file (bad magic)"),
            CheckpointError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported checkpoint version {found} (expected {VERSION})"
                )
            }
            CheckpointError::CrcMismatch { stored, computed } => write!(
                f,
                "checkpoint CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            CheckpointError::TensorCountMismatch { expected, found } => write!(
                f,
                "checkpoint holds {found} tensors but the model has {expected}"
            ),
            CheckpointError::ShapeMismatch {
                tensor,
                expected,
                found,
            } => write!(
                f,
                "tensor {tensor} shape mismatch: model {expected:?}, checkpoint {found:?}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl TrainCheckpoint {
    /// Snapshots a model's parameters (in its `params()` order) and its
    /// training cursor.
    pub fn capture(params: &[&Param], cursor: &TrainCursor) -> Self {
        let tensors = params
            .iter()
            .map(|p| {
                let (m, v) = p.moments();
                TensorState {
                    rows: p.value.rows() as u32,
                    cols: p.value.cols() as u32,
                    value: p.value.data().to_vec(),
                    m: m.data().to_vec(),
                    v: v.data().to_vec(),
                }
            })
            .collect();
        TrainCheckpoint {
            epoch: cursor.epoch as u64,
            t: cursor.t,
            rng_state: cursor.rng_state(),
            lr: cursor.lr,
            order: cursor.order().iter().map(|&i| i as u32).collect(),
            tensors,
        }
    }

    /// Writes the snapshot back into a model's parameters (its
    /// `params_mut()` order) and returns the restored cursor. Shapes are
    /// validated before anything is mutated, so a mismatching snapshot
    /// leaves the model untouched.
    pub fn restore_into(&self, params: &mut [&mut Param]) -> Result<TrainCursor, CheckpointError> {
        if self.tensors.len() != params.len() {
            return Err(CheckpointError::TensorCountMismatch {
                expected: params.len(),
                found: self.tensors.len(),
            });
        }
        for (i, (p, t)) in params.iter().zip(&self.tensors).enumerate() {
            let expected = (p.value.rows(), p.value.cols());
            let found = (t.rows as usize, t.cols as usize);
            if expected != found {
                return Err(CheckpointError::ShapeMismatch {
                    tensor: i,
                    expected,
                    found,
                });
            }
        }
        for (p, t) in params.iter_mut().zip(&self.tensors) {
            let (rows, cols) = (t.rows as usize, t.cols as usize);
            p.value = Matrix::from_vec(rows, cols, t.value.clone());
            p.set_moments(
                Matrix::from_vec(rows, cols, t.m.clone()),
                Matrix::from_vec(rows, cols, t.v.clone()),
            );
        }
        Ok(TrainCursor::restore(
            self.epoch as usize,
            self.t,
            self.lr,
            self.rng_state,
            self.order.iter().map(|&i| i as usize).collect(),
        ))
    }

    /// Serializes to the on-disk byte layout (including the CRC trailer).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.t.to_le_bytes());
        out.extend_from_slice(&self.rng_state.to_le_bytes());
        out.extend_from_slice(&self.lr.to_le_bytes());
        out.extend_from_slice(&(self.order.len() as u32).to_le_bytes());
        for &i in &self.order {
            out.extend_from_slice(&i.to_le_bytes());
        }
        out.extend_from_slice(&(self.tensors.len() as u32).to_le_bytes());
        for t in &self.tensors {
            out.extend_from_slice(&t.rows.to_le_bytes());
            out.extend_from_slice(&t.cols.to_le_bytes());
            for xs in [&t.value, &t.m, &t.v] {
                for &x in xs {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses the on-disk byte layout, validating magic, version, length,
    /// and the CRC trailer.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        if bytes.len() < MAGIC.len() + 8 {
            return Err(CheckpointError::Truncated { at: bytes.len() });
        }
        // The CRC covers everything before the 4-byte trailer; check it
        // first so any corruption downstream of the magic is reported as
        // corruption, not as a structural error.
        let body = &bytes[..bytes.len() - 4];
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
        let computed = crc32(body);
        if stored != computed {
            return Err(CheckpointError::CrcMismatch { stored, computed });
        }
        let mut r = Reader {
            bytes: body,
            pos: MAGIC.len(),
        };
        let version = r.u32()?;
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion { found: version });
        }
        let epoch = r.u64()?;
        let t = r.u64()?;
        let rng_state = r.u64()?;
        let lr = r.f32()?;
        let order_len = r.u32()? as usize;
        let mut order = Vec::with_capacity(order_len);
        for _ in 0..order_len {
            order.push(r.u32()?);
        }
        let n_tensors = r.u32()? as usize;
        let mut tensors = Vec::with_capacity(n_tensors);
        for _ in 0..n_tensors {
            let rows = r.u32()?;
            let cols = r.u32()?;
            let len = rows as usize * cols as usize;
            let value = r.f32s(len)?;
            let m = r.f32s(len)?;
            let v = r.f32s(len)?;
            tensors.push(TensorState {
                rows,
                cols,
                value,
                m,
                v,
            });
        }
        if r.pos != body.len() {
            // Trailing garbage would have broken the CRC already, but a
            // crafted file could pad consistently; reject it.
            return Err(CheckpointError::Truncated { at: r.pos });
        }
        Ok(TrainCheckpoint {
            epoch,
            t,
            rng_state,
            lr,
            order,
            tensors,
        })
    }
}

/// Little-endian cursor over a checkpoint body.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CheckpointError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(e) => {
                let s = &self.bytes[self.pos..e];
                self.pos = e;
                Ok(s)
            }
            None => Err(CheckpointError::Truncated {
                at: self.bytes.len(),
            }),
        }
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, CheckpointError> {
        let raw = self.take(n.checked_mul(4).ok_or(CheckpointError::Truncated {
            at: self.bytes.len(),
        })?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4")))
            .collect())
    }
}

/// Writes arbitrary bytes crash-safely: write to `<path>.tmp` in the
/// same directory, `fsync`, then atomically rename over `path`. Readers
/// never observe a torn file. This is the shared atomic-write path used
/// by checkpoints and by flight-recorder dumps.
pub fn save_bytes_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// [`save_bytes_atomic`] for text documents (JSONL dumps, reports).
pub fn save_text_atomic(path: &Path, text: &str) -> io::Result<()> {
    save_bytes_atomic(path, text.as_bytes())
}

/// Writes a checkpoint crash-safely via [`save_bytes_atomic`].
pub fn save_atomic(path: &Path, ckpt: &TrainCheckpoint) -> Result<(), CheckpointError> {
    let mut span = m3d_obs::span("checkpoint_write");
    let start = std::time::Instant::now();
    let bytes = ckpt.to_bytes();
    span.add("bytes", bytes.len() as u64);
    save_bytes_atomic(path, &bytes)?;
    m3d_obs::counter("resilient.checkpoints_written", 1);
    m3d_obs::observe(
        "resilient.checkpoint_write_us",
        start.elapsed().as_micros() as f64,
    );
    Ok(())
}

/// Reads and validates a checkpoint file.
pub fn load(path: &Path) -> Result<TrainCheckpoint, CheckpointError> {
    let bytes = fs::read(path)?;
    TrainCheckpoint::from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> TrainCheckpoint {
        TrainCheckpoint {
            epoch: 3,
            t: 17,
            rng_state: 0xDEAD_BEEF_CAFE_F00D,
            lr: 0.005,
            order: vec![2, 0, 1],
            tensors: vec![TensorState {
                rows: 2,
                cols: 2,
                value: vec![1.0, -2.5, f32::MIN_POSITIVE, 4.0],
                m: vec![0.1, 0.2, 0.3, 0.4],
                v: vec![0.5, 0.6, 0.7, 0.8],
            }],
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn bytes_roundtrip() {
        let ckpt = sample_checkpoint();
        let parsed = TrainCheckpoint::from_bytes(&ckpt.to_bytes()).expect("roundtrip");
        assert_eq!(parsed, ckpt);
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let bytes = sample_checkpoint().to_bytes();
        for keep in 0..bytes.len() {
            let err = TrainCheckpoint::from_bytes(&bytes[..keep])
                .expect_err("every truncation must be rejected");
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated { .. }
                        | CheckpointError::BadMagic
                        | CheckpointError::CrcMismatch { .. }
                ),
                "keep={keep}: {err}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample_checkpoint().to_bytes();
        for byte in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 1 << (byte % 8);
            assert!(
                TrainCheckpoint::from_bytes(&corrupt).is_err(),
                "flip at byte {byte} must be caught"
            );
        }
    }

    #[test]
    fn version_and_magic_are_enforced() {
        let mut bytes = sample_checkpoint().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            TrainCheckpoint::from_bytes(&bytes),
            Err(CheckpointError::BadMagic)
        ));
        // Rewrite the version field and re-seal the CRC so only the
        // version check can object.
        let mut bytes = sample_checkpoint().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc);
        assert!(matches!(
            TrainCheckpoint::from_bytes(&bytes),
            Err(CheckpointError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn save_atomic_roundtrips_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("m3d-ckpt-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("t.ckpt");
        let ckpt = sample_checkpoint();
        save_atomic(&path, &ckpt).expect("save");
        assert!(
            !path.with_extension("tmp").exists(),
            "temp file renamed away"
        );
        assert_eq!(load(&path).expect("load"), ckpt);
        fs::remove_dir_all(&dir).ok();
    }
}
