//! Crash-safe execution for the M3D train→diagnose pipeline.
//!
//! The paper's flow is a long-running pipeline — ATPG, fault simulation,
//! dataset generation, GCN training — and this crate is its robustness
//! backbone:
//!
//! * [`checkpoint`] — versioned, CRC32-checksummed binary snapshots of
//!   model weights, Adam moments, and the full training cursor (epoch,
//!   step count, learning rate, RNG state, shuffle order), written via
//!   write-to-temp + atomic rename.
//! * [`trainer`] — [`train_resilient`]: guarded epochs with periodic
//!   checkpoints; kill-at-epoch-k + resume produces weights
//!   **bit-identical** to an uninterrupted run, extending `m3d-par`'s
//!   thread-count determinism contract across process boundaries.
//! * [`chaos`] — a deterministic fault-injection harness (NaN gradients,
//!   truncated/bit-flipped checkpoints, malformed log lines, worker
//!   panics) that the integration tests use to *prove* each fault class
//!   is detected and recovered from.
//!
//! The numeric guardrails themselves ([`GuardPolicy`], [`TrainReport`],
//! …) live in `m3d-gnn` next to the training loops and are re-exported
//! here for convenience.
//!
//! # Examples
//!
//! ```
//! use m3d_gnn::{GcnClassifier, GcnGraph, GraphData, GuardConfig, Matrix, TrainConfig};
//! use m3d_resilient::{train_resilient, CheckpointConfig};
//!
//! let data = GraphData::new(
//!     GcnGraph::from_edges(3, &[(0, 1), (1, 2)]),
//!     Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]),
//! );
//! let samples = vec![(&data, 0usize)];
//! let cfg = TrainConfig { epochs: 2, ..TrainConfig::default() };
//! let dir = std::env::temp_dir().join(format!("m3d-resilient-doc-{}", std::process::id()));
//! let mut model = GcnClassifier::new(2, 4, 1, 2, 7);
//! let outcome = train_resilient(
//!     &mut model,
//!     &samples,
//!     &cfg,
//!     &GuardConfig::default(),
//!     &CheckpointConfig::new(&dir),
//!     false,
//!     None,
//! )
//! .expect("training is healthy");
//! assert_eq!(outcome.report.epochs_run, 2);
//! std::fs::remove_dir_all(&dir).ok();
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod checkpoint;
pub mod trainer;

pub use checkpoint::{
    crc32, save_bytes_atomic, save_text_atomic, CheckpointError, TensorState, TrainCheckpoint,
};
pub use trainer::{train_resilient, CheckpointConfig, ResilientError, TrainOutcome};

// The guard types live next to the training loops in `m3d-gnn`;
// re-exported so resilience-focused callers need only this crate.
pub use m3d_gnn::{
    EpochReport, GuardAction, GuardCause, GuardConfig, GuardEvent, GuardPolicy, NumericFault,
    TrainReport,
};

/// CRC-32 digest of a flattened parameter vector's little-endian bytes.
///
/// The CLI prints this after training and the resume-equivalence tests
/// compare it across runs: equal digests ⇔ bit-identical weights (up to
/// CRC collision, which the tests back with a full `flat_params`
/// comparison where both vectors are in hand).
pub fn weights_digest(flat_params: &[f32]) -> u32 {
    let mut bytes = Vec::with_capacity(flat_params.len() * 4);
    for &x in flat_params {
        bytes.extend_from_slice(&x.to_le_bytes());
    }
    crc32(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_distinguishes_bit_level_changes() {
        let a = [1.0f32, 2.0, 3.0];
        let mut b = a;
        assert_eq!(weights_digest(&a), weights_digest(&b));
        b[1] = f32::from_bits(b[1].to_bits() ^ 1);
        assert_ne!(weights_digest(&a), weights_digest(&b));
    }
}
