//! The crash-safe training loop: guarded epochs with periodic atomic
//! checkpoints and bit-exact resume.

use std::fmt;
use std::fs;
use std::path::PathBuf;

use m3d_gnn::{
    GcnClassifier, GraphData, GuardConfig, NumericFault, TrainConfig, TrainCursor, TrainReport,
};

use crate::checkpoint::{self, CheckpointError, TrainCheckpoint};

/// Where and how often checkpoints are written.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Directory holding the checkpoint (created if missing).
    pub dir: PathBuf,
    /// Checkpoint every `every` completed epochs (0 disables periodic
    /// snapshots; the final one is still written).
    pub every: usize,
}

impl CheckpointConfig {
    /// Checkpoints into `dir` after every epoch.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            every: 1,
        }
    }

    /// The checkpoint file path.
    pub fn file(&self) -> PathBuf {
        self.dir.join("train.ckpt")
    }
}

/// Why a resilient training run stopped early.
#[derive(Debug)]
pub enum ResilientError {
    /// Checkpoint I/O, corruption, or shape failure.
    Checkpoint(CheckpointError),
    /// A numeric fault under [`m3d_gnn::GuardPolicy::Abort`].
    Numeric(NumericFault),
}

impl fmt::Display for ResilientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResilientError::Checkpoint(e) => write!(f, "{e}"),
            ResilientError::Numeric(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ResilientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResilientError::Checkpoint(e) => Some(e),
            ResilientError::Numeric(e) => Some(e),
        }
    }
}

impl From<CheckpointError> for ResilientError {
    fn from(e: CheckpointError) -> Self {
        ResilientError::Checkpoint(e)
    }
}

impl From<NumericFault> for ResilientError {
    fn from(e: NumericFault) -> Self {
        ResilientError::Numeric(e)
    }
}

/// What a resilient training run did.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainOutcome {
    /// Losses and guard interventions for the epochs this call executed.
    pub report: TrainReport,
    /// `Some(epoch)` when the run resumed from a checkpoint at that epoch.
    pub resumed_from: Option<usize>,
    /// Checkpoints written by this call.
    pub checkpoints_written: usize,
    /// `Some(epoch)` when the run stopped early at the simulated-crash
    /// point (`halt_after`), with a checkpoint on disk.
    pub halted_at: Option<usize>,
}

/// Trains `model` with numeric guardrails, checkpointing between epochs
/// and optionally resuming from an existing checkpoint.
///
/// * `resume` — when the checkpoint file exists, restore model + cursor
///   from it and continue; a fresh run otherwise. Because the snapshot
///   carries the full Adam state, RNG state, and shuffle order, a resumed
///   run produces weights **bit-identical** to an uninterrupted one, at
///   any thread count (the cross-process extension of `m3d-par`'s
///   determinism contract).
/// * `halt_after` — simulated crash for the resume-equivalence tests and
///   the CLI smoke: after completing epoch `k` (0-based count of completed
///   epochs ≥ `k`), write a checkpoint and return early with
///   `halted_at = Some(k)`.
pub fn train_resilient(
    model: &mut GcnClassifier,
    samples: &[(&GraphData, usize)],
    cfg: &TrainConfig,
    guard: &GuardConfig,
    ckpt: &CheckpointConfig,
    resume: bool,
    halt_after: Option<usize>,
) -> Result<TrainOutcome, ResilientError> {
    fs::create_dir_all(&ckpt.dir).map_err(CheckpointError::Io)?;
    let path = ckpt.file();
    let mut resumed_from = None;
    let mut cursor = if resume && path.exists() {
        let snap = checkpoint::load(&path)?;
        let mut params = model.params_mut();
        let cursor = snap.restore_into(&mut params)?;
        resumed_from = Some(cursor.epoch);
        cursor
    } else {
        TrainCursor::start(cfg, samples.len())
    };
    let mut report = TrainReport::default();
    let mut written = 0usize;
    while cursor.epoch < cfg.epochs {
        report.absorb(model.train_epoch(samples, cfg, &mut cursor, guard)?);
        let halt = halt_after.is_some_and(|h| cursor.epoch >= h);
        let due = (ckpt.every > 0 && cursor.epoch % ckpt.every == 0)
            || cursor.epoch == cfg.epochs
            || halt;
        if due {
            let params = model.params();
            checkpoint::save_atomic(&path, &TrainCheckpoint::capture(&params, &cursor))?;
            written += 1;
        }
        if halt {
            return Ok(TrainOutcome {
                report,
                resumed_from,
                checkpoints_written: written,
                halted_at: Some(cursor.epoch),
            });
        }
    }
    Ok(TrainOutcome {
        report,
        resumed_from,
        checkpoints_written: written,
        halted_at: None,
    })
}
