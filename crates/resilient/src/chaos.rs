//! Deterministic fault injection, reusable by any harness.
//!
//! Every injector is seeded: the same seed corrupts the same byte, poisons
//! the same feature, or garbles the same log line on every run, so a chaos
//! run that fails is a chaos run that reproduces. The injectors carry no
//! training-specific assumptions — the resilience test suite drives them
//! against checkpoints and sample tensors, and the `m3d-serve` load
//! harness drives the same schedules against protocol frames and live
//! connections. (Only the injectors themselves are off-limits to serving
//! code paths; *consuming* their output is the whole point.)
//!
//! Fault classes covered (the chaos matrix in DESIGN.md §11 and the
//! serving failure model in §16):
//!
//! * NaN gradients — [`poison_nan`] plants a NaN in a sample's feature
//!   matrix; the real forward/backward pass then produces non-finite
//!   losses/gradients for the numeric guards to catch.
//! * Truncated checkpoint — [`truncate_file`].
//! * Bit-flipped checkpoint — [`flip_bit`], caught by the CRC trailer.
//! * Malformed failure-log lines — [`garble_text`].
//! * Worker panics — [`panic_on`] builds a closure for `m3d_par`'s `try_`
//!   entry points to contain.
//! * Hostile clients — [`ChaosSchedule`], a seeded iterator of
//!   [`ChaosAction`]s (garbled/truncated frames, slow writers, mid-stream
//!   disconnects, duplicated requests, injected worker panics) plus the
//!   byte-level mutators and the jittered exponential backoff a retrying
//!   client uses.

use std::fs;
use std::io;
use std::path::Path;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use m3d_gnn::Matrix;

/// Truncates the file at `path` to its first `keep` bytes (no-op when the
/// file is already that short). Returns the resulting length.
pub fn truncate_file(path: &Path, keep: usize) -> io::Result<usize> {
    let mut bytes = fs::read(path)?;
    bytes.truncate(keep);
    fs::write(path, &bytes)?;
    Ok(bytes.len())
}

/// Flips one seeded-random bit of the file at `path`; returns the
/// `(byte offset, bit)` flipped.
///
/// # Panics
///
/// Panics if the file is empty.
pub fn flip_bit(path: &Path, seed: u64) -> io::Result<(usize, u8)> {
    let mut bytes = fs::read(path)?;
    assert!(!bytes.is_empty(), "cannot flip a bit of an empty file");
    let mut rng = StdRng::seed_from_u64(seed);
    let byte = rng.gen_range(0..bytes.len());
    let bit = rng.gen_range(0..8u8);
    bytes[byte] ^= 1 << bit;
    fs::write(path, &bytes)?;
    Ok((byte, bit))
}

/// Plants a NaN at one seeded-random element of `m`; returns the flat
/// index poisoned. Feeding the poisoned features through a model's
/// forward/backward pass yields non-finite losses and gradients via the
/// real arithmetic path — no production-code hooks required.
///
/// # Panics
///
/// Panics if the matrix is empty.
pub fn poison_nan(m: &mut Matrix, seed: u64) -> usize {
    let data = m.data_mut();
    assert!(!data.is_empty(), "cannot poison an empty matrix");
    let mut rng = StdRng::seed_from_u64(seed);
    let idx = rng.gen_range(0..data.len());
    data[idx] = f32::NAN;
    idx
}

/// Garbles one seeded-random line of a text document (a tester failure
/// log, say): the line is rewritten with one of a rotating set of
/// malformations — token garbage, a non-numeric field, binary noise, or a
/// wildly out-of-range number.
pub fn garble_text(text: &str, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return "\u{7f}garbage\u{7f}".to_string();
    }
    let target = rng.gen_range(0..lines.len());
    let mut out = String::new();
    for (i, line) in lines.iter().enumerate() {
        if i == target {
            match rng.gen_range(0..4u8) {
                0 => out.push_str("fail pattern NOTANUMBER flop 3"),
                1 => out.push_str(&format!("{line} trailing garbage tokens")),
                2 => out.push_str("\u{1}\u{2}\u{3} binary noise \u{fffd}"),
                _ => out.push_str("fail pattern 4294967295 flop 4294967295"),
            }
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// Builds a closure that panics for item `target` and returns the item
/// otherwise — the worker-panic fault class, for driving `m3d_par`'s
/// `try_` entry points.
pub fn panic_on(target: usize) -> impl Fn(&usize) -> usize + Sync {
    move |&x| {
        assert!(x != target, "chaos: injected worker panic at item {target}");
        x
    }
}

/// One step of a seeded chaos schedule: what a hostile-client harness
/// does to its next operation. `Clean` (the most common draw) performs the
/// operation faithfully; every other variant injects one fault class of
/// the serving failure model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosAction {
    /// Perform the operation cleanly.
    Clean,
    /// Corrupt bytes of the outgoing frame ([`ChaosSchedule::garble`]).
    GarbleFrame,
    /// Send only a prefix of the frame, then hang up
    /// ([`ChaosSchedule::truncate_at`]).
    TruncateFrame,
    /// Write the frame in tiny dribbles with pauses (a slow-writer /
    /// slowloris client; [`ChaosSchedule::split_at`] picks the seams).
    SlowWrite,
    /// Disconnect without reading the response.
    Disconnect,
    /// Send the same request twice (tester retry bugs); both copies must
    /// be answered identically.
    Duplicate,
    /// Ask the harness to inject a worker panic server-side (driven
    /// through `m3d_par`'s `try_` containment).
    PanicWorker,
}

impl ChaosAction {
    /// Every action, in the fixed order [`ChaosSchedule`] draws from.
    pub const ALL: [ChaosAction; 7] = [
        ChaosAction::Clean,
        ChaosAction::GarbleFrame,
        ChaosAction::TruncateFrame,
        ChaosAction::SlowWrite,
        ChaosAction::Disconnect,
        ChaosAction::Duplicate,
        ChaosAction::PanicWorker,
    ];
}

/// A seeded, reusable schedule of chaos actions.
///
/// The schedule is an infinite iterator: each draw is `Clean` with
/// probability `1 - rate`, otherwise one of the six fault actions,
/// uniformly. The same seed yields the same action sequence, the same
/// corrupted bytes, and the same backoff jitter on every run — a chaos
/// schedule that breaks something is a reproduction recipe, not a flake.
///
/// # Examples
///
/// ```
/// use m3d_resilient::chaos::{ChaosAction, ChaosSchedule};
///
/// let a: Vec<ChaosAction> = ChaosSchedule::new(7).take(16).collect();
/// let b: Vec<ChaosAction> = ChaosSchedule::new(7).take(16).collect();
/// assert_eq!(a, b);
/// ```
#[derive(Clone, Debug)]
pub struct ChaosSchedule {
    rng: StdRng,
    rate: f64,
}

impl ChaosSchedule {
    /// A schedule with the default 25% fault rate.
    pub fn new(seed: u64) -> Self {
        Self::with_rate(seed, 0.25)
    }

    /// A schedule injecting a fault with probability `rate` per draw
    /// (clamped to `[0, 1]`; `0.0` is an always-clean schedule).
    pub fn with_rate(seed: u64, rate: f64) -> Self {
        ChaosSchedule {
            rng: StdRng::seed_from_u64(seed),
            rate: rate.clamp(0.0, 1.0),
        }
    }

    /// Draws the next action.
    pub fn next_action(&mut self) -> ChaosAction {
        if self.rate == 0.0 || !self.rng.gen_bool(self.rate) {
            return ChaosAction::Clean;
        }
        // Index 0 is Clean; faults are 1..ALL.len().
        ChaosAction::ALL[self.rng.gen_range(1..ChaosAction::ALL.len())]
    }

    /// Corrupts 1–4 seeded-random bytes of `frame` in place (no-op on an
    /// empty frame). Used for [`ChaosAction::GarbleFrame`].
    pub fn garble(&mut self, frame: &mut [u8]) {
        if frame.is_empty() {
            return;
        }
        let hits = self.rng.gen_range(1..=4usize).min(frame.len());
        for _ in 0..hits {
            let i = self.rng.gen_range(0..frame.len());
            frame[i] ^= self.rng.gen_range(1..=255u8);
        }
    }

    /// A seeded truncation point strictly inside a frame of `len` bytes
    /// (0 for empty frames). Used for [`ChaosAction::TruncateFrame`].
    pub fn truncate_at(&mut self, len: usize) -> usize {
        if len <= 1 {
            0
        } else {
            self.rng.gen_range(0..len)
        }
    }

    /// A seeded split point for an interleaved partial write: somewhere in
    /// `1..len` (or `len` itself when the frame is a single byte). Used for
    /// [`ChaosAction::SlowWrite`].
    pub fn split_at(&mut self, len: usize) -> usize {
        if len <= 1 {
            len
        } else {
            self.rng.gen_range(1..len)
        }
    }

    /// Jittered exponential backoff for retry attempt `attempt` (0-based):
    /// `base_ms << attempt`, capped at `cap_ms`, with ±50% seeded jitter.
    /// This is what a well-behaved tester client sleeps after a typed
    /// `Overloaded` response — deterministic per seed so a retry storm
    /// replays exactly.
    pub fn backoff_ms(&mut self, attempt: u32, base_ms: u64, cap_ms: u64) -> u64 {
        let exp = base_ms.saturating_shl(attempt.min(16)).min(cap_ms).max(1);
        let jitter = self.rng.gen_range(0..=exp);
        (exp / 2 + jitter).min(cap_ms)
    }
}

impl Iterator for ChaosSchedule {
    type Item = ChaosAction;

    fn next(&mut self) -> Option<ChaosAction> {
        Some(self.next_action())
    }
}

/// `u64::checked_shl` that saturates instead of wrapping.
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> u64 {
        self.checked_shl(rhs).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injections_are_deterministic_per_seed() {
        let mut a = Matrix::zeros(3, 4);
        let mut b = Matrix::zeros(3, 4);
        let ia = poison_nan(&mut a, 9);
        let ib = poison_nan(&mut b, 9);
        assert_eq!(ia, ib);
        assert!(a.data()[ia].is_nan());

        let text = "line one\nline two\nline three\n";
        assert_eq!(garble_text(text, 5), garble_text(text, 5));
        assert_ne!(garble_text(text, 5), text);
    }

    #[test]
    fn file_injectors_roundtrip() {
        let dir = std::env::temp_dir().join(format!("m3d-chaos-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("victim.bin");
        fs::write(&path, [0u8; 64]).expect("write");
        assert_eq!(truncate_file(&path, 10).expect("truncate"), 10);
        assert_eq!(fs::read(&path).expect("read").len(), 10);
        let (byte, bit) = flip_bit(&path, 3).expect("flip");
        assert!(byte < 10 && bit < 8);
        assert_eq!(fs::read(&path).expect("read")[byte], 1 << bit);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn schedules_replay_and_respect_rate() {
        // Bit-identical replay, including the byte-level mutators.
        let mut a = ChaosSchedule::new(11);
        let mut b = ChaosSchedule::new(11);
        for _ in 0..64 {
            assert_eq!(a.next_action(), b.next_action());
        }
        let mut fa = vec![1u8, 2, 3, 4, 5, 6, 7, 8];
        let mut fb = fa.clone();
        a.garble(&mut fa);
        b.garble(&mut fb);
        assert_eq!(fa, fb);
        assert_ne!(fa, vec![1u8, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(a.truncate_at(100), b.truncate_at(100));
        assert_eq!(a.split_at(100), b.split_at(100));
        assert_eq!(a.backoff_ms(3, 10, 5_000), b.backoff_ms(3, 10, 5_000));

        // A zero-rate schedule is always clean; a full-rate one never is.
        assert!(ChaosSchedule::with_rate(5, 0.0)
            .take(32)
            .all(|x| x == ChaosAction::Clean));
        assert!(ChaosSchedule::with_rate(5, 1.0)
            .take(32)
            .all(|x| x != ChaosAction::Clean));
    }

    #[test]
    fn backoff_grows_and_stays_capped() {
        let mut s = ChaosSchedule::new(3);
        for attempt in 0..40 {
            let ms = s.backoff_ms(attempt, 8, 2_000);
            assert!(ms <= 2_000, "attempt {attempt}: {ms}");
        }
        // The expected envelope doubles until the cap.
        let mut lo = ChaosSchedule::new(4);
        assert!(lo.backoff_ms(0, 8, 2_000) <= 16);
    }
}
