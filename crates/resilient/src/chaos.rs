//! Deterministic fault injection for the resilience test suite.
//!
//! Every injector is seeded: the same seed corrupts the same byte, poisons
//! the same feature, or garbles the same log line on every run, so a chaos
//! test that fails is a chaos test that reproduces. This module is a test
//! harness — production code must never call it.
//!
//! Fault classes covered (the chaos matrix in DESIGN.md §11):
//!
//! * NaN gradients — [`poison_nan`] plants a NaN in a sample's feature
//!   matrix; the real forward/backward pass then produces non-finite
//!   losses/gradients for the numeric guards to catch.
//! * Truncated checkpoint — [`truncate_file`].
//! * Bit-flipped checkpoint — [`flip_bit`], caught by the CRC trailer.
//! * Malformed failure-log lines — [`garble_text`].
//! * Worker panics — [`panic_on`] builds a closure for `m3d_par`'s `try_`
//!   entry points to contain.

use std::fs;
use std::io;
use std::path::Path;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use m3d_gnn::Matrix;

/// Truncates the file at `path` to its first `keep` bytes (no-op when the
/// file is already that short). Returns the resulting length.
pub fn truncate_file(path: &Path, keep: usize) -> io::Result<usize> {
    let mut bytes = fs::read(path)?;
    bytes.truncate(keep);
    fs::write(path, &bytes)?;
    Ok(bytes.len())
}

/// Flips one seeded-random bit of the file at `path`; returns the
/// `(byte offset, bit)` flipped.
///
/// # Panics
///
/// Panics if the file is empty.
pub fn flip_bit(path: &Path, seed: u64) -> io::Result<(usize, u8)> {
    let mut bytes = fs::read(path)?;
    assert!(!bytes.is_empty(), "cannot flip a bit of an empty file");
    let mut rng = StdRng::seed_from_u64(seed);
    let byte = rng.gen_range(0..bytes.len());
    let bit = rng.gen_range(0..8u8);
    bytes[byte] ^= 1 << bit;
    fs::write(path, &bytes)?;
    Ok((byte, bit))
}

/// Plants a NaN at one seeded-random element of `m`; returns the flat
/// index poisoned. Feeding the poisoned features through a model's
/// forward/backward pass yields non-finite losses and gradients via the
/// real arithmetic path — no production-code hooks required.
///
/// # Panics
///
/// Panics if the matrix is empty.
pub fn poison_nan(m: &mut Matrix, seed: u64) -> usize {
    let data = m.data_mut();
    assert!(!data.is_empty(), "cannot poison an empty matrix");
    let mut rng = StdRng::seed_from_u64(seed);
    let idx = rng.gen_range(0..data.len());
    data[idx] = f32::NAN;
    idx
}

/// Garbles one seeded-random line of a text document (a tester failure
/// log, say): the line is rewritten with one of a rotating set of
/// malformations — token garbage, a non-numeric field, binary noise, or a
/// wildly out-of-range number.
pub fn garble_text(text: &str, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return "\u{7f}garbage\u{7f}".to_string();
    }
    let target = rng.gen_range(0..lines.len());
    let mut out = String::new();
    for (i, line) in lines.iter().enumerate() {
        if i == target {
            match rng.gen_range(0..4u8) {
                0 => out.push_str("fail pattern NOTANUMBER flop 3"),
                1 => out.push_str(&format!("{line} trailing garbage tokens")),
                2 => out.push_str("\u{1}\u{2}\u{3} binary noise \u{fffd}"),
                _ => out.push_str("fail pattern 4294967295 flop 4294967295"),
            }
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// Builds a closure that panics for item `target` and returns the item
/// otherwise — the worker-panic fault class, for driving `m3d_par`'s
/// `try_` entry points.
pub fn panic_on(target: usize) -> impl Fn(&usize) -> usize + Sync {
    move |&x| {
        assert!(x != target, "chaos: injected worker panic at item {target}");
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injections_are_deterministic_per_seed() {
        let mut a = Matrix::zeros(3, 4);
        let mut b = Matrix::zeros(3, 4);
        let ia = poison_nan(&mut a, 9);
        let ib = poison_nan(&mut b, 9);
        assert_eq!(ia, ib);
        assert!(a.data()[ia].is_nan());

        let text = "line one\nline two\nline three\n";
        assert_eq!(garble_text(text, 5), garble_text(text, 5));
        assert_ne!(garble_text(text, 5), text);
    }

    #[test]
    fn file_injectors_roundtrip() {
        let dir = std::env::temp_dir().join(format!("m3d-chaos-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("victim.bin");
        fs::write(&path, [0u8; 64]).expect("write");
        assert_eq!(truncate_file(&path, 10).expect("truncate"), 10);
        assert_eq!(fs::read(&path).expect("read").len(), 10);
        let (byte, bit) = flip_bit(&path, 3).expect("flip");
        assert!(byte < 10 && bit < 8);
        assert_eq!(fs::read(&path).expect("read")[byte], 1 << bit);
        fs::remove_dir_all(&dir).ok();
    }
}
