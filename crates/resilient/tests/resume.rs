//! Resume-equivalence: kill-at-epoch-k + resume must produce weights
//! bit-identical to an uninterrupted run, at 1 and 4 threads — the
//! cross-process extension of `m3d-par`'s determinism contract.

use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use m3d_gnn::{GcnClassifier, GcnGraph, GraphData, GuardConfig, Matrix, TrainConfig};
use m3d_resilient::{train_resilient, weights_digest, CheckpointConfig};

/// A small separable graph-classification task (class = sign of the mean
/// of feature 0), mirroring the gnn crate's training tests.
fn toy_dataset(n: usize, seed: u64) -> Vec<(GraphData, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let nodes = rng.gen_range(4..9);
            let label = rng.gen_range(0..2usize);
            let edges: Vec<(usize, usize)> = (1..nodes).map(|v| (v - 1, v)).collect();
            let mut feats = Matrix::zeros(nodes, 3);
            for r in 0..nodes {
                let base = if label == 0 { 1.0 } else { -1.0 };
                feats[(r, 0)] = base + rng.gen_range(-0.3..0.3);
                feats[(r, 1)] = rng.gen_range(-1.0..1.0);
                feats[(r, 2)] = rng.gen_range(-1.0..1.0);
            }
            (
                GraphData::new(GcnGraph::from_edges(nodes, &edges), feats),
                label,
            )
        })
        .collect()
}

fn fresh_model() -> GcnClassifier {
    GcnClassifier::new(3, 8, 2, 2, 5)
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("m3d-resume-{}-{tag}", std::process::id()))
}

/// Runs the full 8-epoch reference and the 4+resume-4 split in one helper
/// so each thread count exercises the identical scenario.
fn run_split_vs_straight(threads: usize) {
    let data = toy_dataset(24, 11);
    let samples: Vec<(&GraphData, usize)> = data.iter().map(|(d, l)| (d, *l)).collect();
    let cfg = TrainConfig {
        epochs: 8,
        ..TrainConfig::default()
    };
    let guard = GuardConfig::default();

    m3d_par::with_threads(threads, || {
        // Uninterrupted reference run.
        let dir_a = tmp_dir(&format!("straight-{threads}"));
        let mut straight = fresh_model();
        let out_a = train_resilient(
            &mut straight,
            &samples,
            &cfg,
            &guard,
            &CheckpointConfig::new(&dir_a),
            false,
            None,
        )
        .expect("healthy run");
        assert_eq!(out_a.report.epochs_run, 8);
        assert_eq!(out_a.resumed_from, None);

        // Interrupted run: simulated crash after epoch 4...
        let dir_b = tmp_dir(&format!("split-{threads}"));
        let mut first_half = fresh_model();
        let out_halt = train_resilient(
            &mut first_half,
            &samples,
            &cfg,
            &guard,
            &CheckpointConfig::new(&dir_b),
            false,
            Some(4),
        )
        .expect("healthy run");
        assert_eq!(out_halt.halted_at, Some(4));

        // ...then a *fresh process stand-in*: a brand-new model object,
        // restored entirely from the checkpoint.
        let mut resumed = fresh_model();
        let out_b = train_resilient(
            &mut resumed,
            &samples,
            &cfg,
            &guard,
            &CheckpointConfig::new(&dir_b),
            true,
            None,
        )
        .expect("healthy resume");
        assert_eq!(out_b.resumed_from, Some(4));
        assert_eq!(out_b.report.epochs_run, 4);

        // Bit-identical weights, losses, and predictions.
        assert_eq!(
            straight.flat_params(),
            resumed.flat_params(),
            "threads={threads}: resumed weights must be bit-identical"
        );
        assert_eq!(
            weights_digest(&straight.flat_params()),
            weights_digest(&resumed.flat_params())
        );
        assert_eq!(
            out_a.report.final_loss.to_bits(),
            out_b.report.final_loss.to_bits(),
            "threads={threads}: final losses must be bit-identical"
        );
        for (d, _) in &samples {
            let pa = straight.predict_proba(d);
            let pb = resumed.predict_proba(d);
            let pa_bits: Vec<u32> = pa.iter().map(|x| x.to_bits()).collect();
            let pb_bits: Vec<u32> = pb.iter().map(|x| x.to_bits()).collect();
            assert_eq!(pa_bits, pb_bits, "threads={threads}: predictions differ");
        }

        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    });
}

#[test]
fn resume_is_bit_identical_at_one_thread() {
    run_split_vs_straight(1);
}

#[test]
fn resume_is_bit_identical_at_four_threads() {
    run_split_vs_straight(4);
}

#[test]
fn resume_matches_across_thread_counts() {
    // Crash at 1 thread, resume at 4 (and vice versa): still identical to
    // the straight serial run — checkpoints are thread-count portable.
    let data = toy_dataset(20, 3);
    let samples: Vec<(&GraphData, usize)> = data.iter().map(|(d, l)| (d, *l)).collect();
    let cfg = TrainConfig {
        epochs: 6,
        ..TrainConfig::default()
    };
    let guard = GuardConfig::default();

    let reference = m3d_par::with_threads(1, || {
        let dir = tmp_dir("xref");
        let mut model = fresh_model();
        train_resilient(
            &mut model,
            &samples,
            &cfg,
            &guard,
            &CheckpointConfig::new(&dir),
            false,
            None,
        )
        .expect("healthy");
        std::fs::remove_dir_all(&dir).ok();
        model.flat_params()
    });

    let dir = tmp_dir("xswitch");
    let mut model = fresh_model();
    m3d_par::with_threads(1, || {
        train_resilient(
            &mut model,
            &samples,
            &cfg,
            &guard,
            &CheckpointConfig::new(&dir),
            false,
            Some(3),
        )
        .expect("healthy")
    });
    let mut resumed = fresh_model();
    m3d_par::with_threads(4, || {
        train_resilient(
            &mut resumed,
            &samples,
            &cfg,
            &guard,
            &CheckpointConfig::new(&dir),
            true,
            None,
        )
        .expect("healthy resume")
    });
    assert_eq!(reference, resumed.flat_params());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_without_checkpoint_starts_fresh() {
    let data = toy_dataset(8, 7);
    let samples: Vec<(&GraphData, usize)> = data.iter().map(|(d, l)| (d, *l)).collect();
    let cfg = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    let dir = tmp_dir("fresh");
    std::fs::remove_dir_all(&dir).ok();
    let mut model = fresh_model();
    let out = train_resilient(
        &mut model,
        &samples,
        &cfg,
        &GuardConfig::default(),
        &CheckpointConfig::new(&dir),
        true,
        None,
    )
    .expect("fresh run despite --resume");
    assert_eq!(out.resumed_from, None);
    assert_eq!(out.report.epochs_run, 2);
    std::fs::remove_dir_all(&dir).ok();
}
