//! The fault-injection suite: every chaos fault class must surface as a
//! typed error or a recorded guard intervention — never a raw panic.

use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use m3d_gnn::{
    GcnClassifier, GcnGraph, GraphData, GuardAction, GuardConfig, GuardPolicy, Matrix, TrainConfig,
};
use m3d_resilient::{
    chaos, checkpoint, train_resilient, CheckpointConfig, CheckpointError, ResilientError,
    TrainCheckpoint,
};

fn toy_dataset(n: usize, seed: u64) -> Vec<(GraphData, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let nodes = rng.gen_range(4..9);
            let label = rng.gen_range(0..2usize);
            let edges: Vec<(usize, usize)> = (1..nodes).map(|v| (v - 1, v)).collect();
            let mut feats = Matrix::zeros(nodes, 3);
            for r in 0..nodes {
                let base = if label == 0 { 1.0 } else { -1.0 };
                feats[(r, 0)] = base + rng.gen_range(-0.3..0.3);
                feats[(r, 1)] = rng.gen_range(-1.0..1.0);
                feats[(r, 2)] = rng.gen_range(-1.0..1.0);
            }
            (
                GraphData::new(GcnGraph::from_edges(nodes, &edges), feats),
                label,
            )
        })
        .collect()
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("m3d-chaos-{}-{tag}", std::process::id()))
}

fn cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        // Small batches so a poisoned sample taints one batch per epoch
        // while the others still train.
        batch_size: 4,
        ..TrainConfig::default()
    }
}

/// Fault class 1a — NaN gradients under `Abort`: the run stops with a
/// typed `NumericFault` naming the epoch/batch, instead of silently
/// training on garbage.
#[test]
fn nan_gradient_aborts_with_typed_fault() {
    let mut data = toy_dataset(12, 1);
    chaos::poison_nan(&mut data[5].0.features, 42);
    let samples: Vec<(&GraphData, usize)> = data.iter().map(|(d, l)| (d, *l)).collect();
    let mut model = GcnClassifier::new(3, 8, 2, 2, 5);
    let err = model
        .fit_guarded(&samples, &cfg(4), &GuardConfig::new(GuardPolicy::Abort))
        .expect_err("poisoned sample must abort");
    assert_eq!(err.epoch, 0, "caught in the first epoch: {err}");
}

/// Fault class 1b — NaN gradients under `SkipBatch`: training completes,
/// every intervention is on the report, and the weights stay finite.
#[test]
fn nan_gradient_skips_batches_and_finishes() {
    let mut data = toy_dataset(12, 1);
    let poisoned = 5usize;
    chaos::poison_nan(&mut data[poisoned].0.features, 42);
    let samples: Vec<(&GraphData, usize)> = data.iter().map(|(d, l)| (d, *l)).collect();
    let epochs = 4;
    let mut model = GcnClassifier::new(3, 8, 2, 2, 5);
    let report = model
        .fit_guarded(
            &samples,
            &cfg(epochs),
            &GuardConfig::new(GuardPolicy::SkipBatch),
        )
        .expect("skip policy survives poison");
    assert_eq!(report.epochs_run, epochs);
    // The poisoned sample lands in exactly one batch per epoch.
    assert_eq!(report.interventions(), epochs);
    assert!(report
        .events
        .iter()
        .all(|e| e.action == GuardAction::SkippedBatch));
    assert!(report.final_loss.is_finite());
    assert!(
        model.flat_params().iter().all(|w| w.is_finite()),
        "weights stay finite under SkipBatch"
    );
}

/// Fault class 1c — NaN gradients under `RollbackAndHalveLr`: every
/// intervention halves the learning rate (floored), and weights stay
/// finite.
#[test]
fn nan_gradient_rolls_back_and_halves_lr() {
    let mut data = toy_dataset(12, 1);
    chaos::poison_nan(&mut data[3].0.features, 7);
    let samples: Vec<(&GraphData, usize)> = data.iter().map(|(d, l)| (d, *l)).collect();
    let mut model = GcnClassifier::new(3, 8, 2, 2, 5);
    let base_lr = cfg(3).learning_rate;
    let report = model
        .fit_guarded(
            &samples,
            &cfg(3),
            &GuardConfig::new(GuardPolicy::RollbackAndHalveLr),
        )
        .expect("rollback policy survives poison");
    assert!(!report.events.is_empty());
    let mut last_lr = base_lr;
    for e in &report.events {
        match e.action {
            GuardAction::RolledBack { new_lr } => {
                assert!(
                    new_lr <= last_lr / 2.0 || new_lr == 1e-6,
                    "lr halves: {new_lr}"
                );
                last_lr = new_lr;
            }
            other => panic!("unexpected action {other:?}"),
        }
    }
    assert!(model.flat_params().iter().all(|w| w.is_finite()));
}

/// Guard overhead is zero on healthy data: guarded and unguarded training
/// produce bit-identical weights (the checks are pure reads).
#[test]
fn guards_are_bitwise_free_on_healthy_data() {
    let data = toy_dataset(16, 9);
    let samples: Vec<(&GraphData, usize)> = data.iter().map(|(d, l)| (d, *l)).collect();
    let mut plain = GcnClassifier::new(3, 8, 2, 2, 5);
    plain.fit(&samples, &cfg(5));
    let mut guarded = GcnClassifier::new(3, 8, 2, 2, 5);
    let report = guarded
        .fit_guarded(&samples, &cfg(5), &GuardConfig::new(GuardPolicy::Abort))
        .expect("healthy data");
    assert_eq!(report.interventions(), 0);
    assert_eq!(plain.flat_params(), guarded.flat_params());
}

/// Fault class 2 — truncated checkpoint: every possible truncation point
/// is rejected with a typed error, never a panic.
#[test]
fn truncated_checkpoint_is_rejected_typed() {
    let dir = tmp_dir("trunc");
    let data = toy_dataset(8, 2);
    let samples: Vec<(&GraphData, usize)> = data.iter().map(|(d, l)| (d, *l)).collect();
    let mut model = GcnClassifier::new(3, 8, 2, 2, 5);
    train_resilient(
        &mut model,
        &samples,
        &cfg(2),
        &GuardConfig::default(),
        &CheckpointConfig::new(&dir),
        false,
        None,
    )
    .expect("healthy");
    let path = CheckpointConfig::new(&dir).file();
    let full = std::fs::read(&path).expect("checkpoint exists");
    for keep in [0usize, 4, 7, 8, 20, full.len() / 2, full.len() - 1] {
        chaos::truncate_file(&path, keep).expect("truncate");
        let err = checkpoint::load(&path).expect_err("truncated file must be rejected");
        assert!(
            matches!(
                err,
                CheckpointError::Truncated { .. }
                    | CheckpointError::BadMagic
                    | CheckpointError::CrcMismatch { .. }
            ),
            "keep={keep}: {err}"
        );
        std::fs::write(&path, &full).expect("restore");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Fault class 3 — bit-flipped checkpoint: the CRC trailer catches seeded
/// random single-bit flips, and a resume attempt surfaces the typed error
/// instead of training on corrupt state.
#[test]
fn bit_flipped_checkpoint_fails_crc_and_resume() {
    let dir = tmp_dir("flip");
    let data = toy_dataset(8, 2);
    let samples: Vec<(&GraphData, usize)> = data.iter().map(|(d, l)| (d, *l)).collect();
    let mut model = GcnClassifier::new(3, 8, 2, 2, 5);
    train_resilient(
        &mut model,
        &samples,
        &cfg(2),
        &GuardConfig::default(),
        &CheckpointConfig::new(&dir),
        false,
        None,
    )
    .expect("healthy");
    let path = CheckpointConfig::new(&dir).file();
    let full = std::fs::read(&path).expect("checkpoint exists");
    for seed in 0..16u64 {
        chaos::flip_bit(&path, seed).expect("flip");
        let err = checkpoint::load(&path).expect_err("flipped bit must be caught");
        assert!(
            matches!(
                err,
                CheckpointError::CrcMismatch { .. } | CheckpointError::BadMagic
            ),
            "seed={seed}: {err}"
        );
        std::fs::write(&path, &full).expect("restore");
    }
    // A resume over a corrupted file is a typed ResilientError, not a
    // panic, and the model is left untouched.
    chaos::flip_bit(&path, 99).expect("flip");
    let mut resumed = GcnClassifier::new(3, 8, 2, 2, 5);
    let before = resumed.flat_params();
    let err = train_resilient(
        &mut resumed,
        &samples,
        &cfg(2),
        &GuardConfig::default(),
        &CheckpointConfig::new(&dir),
        true,
        None,
    )
    .expect_err("resume over corruption must fail typed");
    assert!(matches!(err, ResilientError::Checkpoint(_)), "{err}");
    assert_eq!(resumed.flat_params(), before, "model untouched on failure");
    std::fs::remove_dir_all(&dir).ok();
}

/// A checkpoint from a differently-shaped model is rejected by the shape
/// check before anything is mutated.
#[test]
fn shape_mismatch_is_rejected_before_mutation() {
    let small = GcnClassifier::new(3, 4, 1, 2, 5);
    let cursor = m3d_gnn::TrainCursor::start(&cfg(1), 4);
    let snap = TrainCheckpoint::capture(&small.params(), &cursor);
    let mut big = GcnClassifier::new(3, 8, 2, 2, 5);
    let before = big.flat_params();
    let mut params = big.params_mut();
    let err = snap.restore_into(&mut params).expect_err("shape mismatch");
    assert!(
        matches!(
            err,
            CheckpointError::TensorCountMismatch { .. } | CheckpointError::ShapeMismatch { .. }
        ),
        "{err}"
    );
    assert_eq!(big.flat_params(), before);
}

/// Fault class 5 — worker panics: the `try_` pool entry points contain a
/// seeded panic as a typed `WorkerPanic` with the chunk index; sibling
/// work completes.
#[test]
fn worker_panic_is_contained_typed() {
    let items: Vec<usize> = (0..128).collect();
    let inject = chaos::panic_on(77);
    for threads in [1, 4] {
        let err = m3d_par::with_threads(threads, || m3d_par::try_par_map(&items, &inject))
            .expect_err("injected panic must surface as Err");
        // 128 items → chunk size 2 → item 77 lives in chunk 38.
        assert_eq!(err.chunk, 38, "threads={threads}");
        assert!(err.message.contains("injected worker panic"));
    }
}

/// Fault class 4 (garbling side) — the text garbler deterministically
/// malforms a log; the parser-side proof that malformed logs surface as
/// typed errors lives in `m3d-tdf`'s fuzz tests, which use this injector.
#[test]
fn garbler_is_deterministic_and_destructive() {
    let log = "fail pattern 3 flop 1\nfail pattern 4 flop 2\n";
    for seed in 0..8u64 {
        let a = chaos::garble_text(log, seed);
        let b = chaos::garble_text(log, seed);
        assert_eq!(a, b, "seed={seed}: garbling must be deterministic");
        assert_ne!(a, log, "seed={seed}: garbling must change the text");
    }
}
