//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this crate vendors the
//! API subset the workspace benches use: [`Criterion::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The statistics are intentionally simple — warm-up, then `sample_size`
//! timed samples, reporting min / median / mean — but the numbers are real
//! wall-clock measurements, so relative comparisons between benches and
//! across commits remain meaningful.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted, not interpreted).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Times one benchmark body.
pub struct Bencher {
    samples: usize,
    /// Collected per-sample durations (one sample = one routine call).
    timings: Vec<Duration>,
}

impl Bencher {
    /// Calls `routine` repeatedly, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed call.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.timings.push(start.elapsed());
        }
    }

    /// Calls `setup` to build an input, then times `routine` on it.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.timings.push(start.elapsed());
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark and prints a one-line summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            timings: Vec::with_capacity(self.sample_size),
        };
        f(&mut b);
        let mut t = b.timings;
        if t.is_empty() {
            println!("{name:<40} (no samples collected)");
            return self;
        }
        t.sort_unstable();
        let min = t[0];
        let median = t[t.len() / 2];
        let mean = t.iter().sum::<Duration>() / t.len() as u32;
        println!(
            "{name:<40} min {min:>12?}  median {median:>12?}  mean {mean:>12?}  ({} samples)",
            t.len()
        );
        self
    }
}

/// Bundles benchmark functions into one runnable group, mirroring
/// criterion's two accepted syntaxes.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_smoke(c: &mut Criterion) {
        c.bench_function("sum_1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        c.bench_function("vec_build", |b| {
            b.iter_batched(|| 64usize, |n| vec![0u8; n], BatchSize::SmallInput)
        });
    }

    criterion_group! {
        name = smoke;
        config = Criterion::default().sample_size(3);
        targets = bench_smoke
    }

    #[test]
    fn group_runs_without_panicking() {
        smoke();
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
