//! Monolithic 3D tier partitioning and MIV inference.
//!
//! Turns a flat [`m3d_netlist::Netlist`] into a two-tier [`M3dDesign`]:
//! tier labels per gate, one monolithic inter-tier via (MIV) per cut net,
//! and an extended fault-site table. Three partitioners cover the paper's
//! configurations (min-cut, level-banded, random augmentation), and
//! [`DesignConfig`] reproduces the Syn-1 / TPI / Syn-2 / Par design matrix
//! of the transferability study.
//!
//! # Examples
//!
//! ```
//! use m3d_netlist::generate::Benchmark;
//! use m3d_part::DesignConfig;
//!
//! let design = DesignConfig::Syn1.build_sized(Benchmark::Tate, Some(300));
//! println!("{} MIVs on {} gates", design.miv_count(), design.netlist().gate_count());
//! ```

#![warn(missing_docs)]

mod config;
mod design;
mod partition;
mod tier;

pub use config::{augmented_design, DesignConfig};
pub use design::{M3dDesign, Miv};
pub use partition::{read_partition, write_partition, Partition, PartitionAlgo};
pub use tier::Tier;
