//! The paper's design configurations (Section IV).
//!
//! A benchmark is evaluated under four configurations: the training
//! configuration *Syn-1*, a test-point-inserted variant *TPI*, a
//! re-synthesized variant *Syn-2*, and a re-partitioned variant *Par*.
//! Randomly-partitioned variants augment the training set.

use m3d_netlist::generate::{Benchmark, GenParams};
use m3d_netlist::tpi::insert_test_points;

use crate::design::M3dDesign;
use crate::partition::PartitionAlgo;

/// A design configuration from the paper's transferability study.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DesignConfig {
    /// Baseline synthesis + min-cut partition (training configuration).
    Syn1,
    /// Syn-1 netlist with ~1% observation test points inserted.
    Tpi,
    /// Re-synthesized netlist (different clock constraint), re-partitioned.
    Syn2,
    /// Syn-1 netlist partitioned with the alternative partitioner.
    Par,
}

impl DesignConfig {
    /// All four configurations in paper order.
    pub const ALL: [DesignConfig; 4] = [
        DesignConfig::Syn1,
        DesignConfig::Tpi,
        DesignConfig::Syn2,
        DesignConfig::Par,
    ];

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DesignConfig::Syn1 => "Syn-1",
            DesignConfig::Tpi => "TPI",
            DesignConfig::Syn2 => "Syn-2",
            DesignConfig::Par => "Par",
        }
    }

    /// Builds the configured M3D design for a benchmark at the default
    /// gate target.
    ///
    /// # Examples
    ///
    /// ```
    /// use m3d_netlist::generate::Benchmark;
    /// use m3d_part::DesignConfig;
    ///
    /// let d = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
    /// assert!(d.miv_count() > 0);
    /// ```
    pub fn build(self, benchmark: Benchmark) -> M3dDesign {
        self.build_sized(benchmark, None)
    }

    /// Builds the configured design with an explicit gate target
    /// (`None` = the benchmark default).
    pub fn build_sized(self, benchmark: Benchmark, target: Option<usize>) -> M3dDesign {
        let sized = |mut p: GenParams| {
            if let Some(t) = target {
                p = p.with_target(t);
            }
            p
        };
        match self {
            DesignConfig::Syn1 => {
                let nl = benchmark.generate(&sized(GenParams::new(1)));
                let part = PartitionAlgo::MinCut.partition(&nl, 1);
                M3dDesign::new(nl, part)
            }
            DesignConfig::Tpi => {
                let nl = benchmark.generate(&sized(GenParams::new(1)));
                let nl = insert_test_points(nl, 0.01, 1);
                let part = PartitionAlgo::MinCut.partition(&nl, 1);
                M3dDesign::new(nl, part)
            }
            DesignConfig::Syn2 => {
                let nl = benchmark.generate(&sized(GenParams::new(2)));
                let part = PartitionAlgo::MinCut.partition(&nl, 2);
                M3dDesign::new(nl, part)
            }
            DesignConfig::Par => {
                let nl = benchmark.generate(&sized(GenParams::new(1)));
                let part = PartitionAlgo::LevelBanded.partition(&nl, 1);
                M3dDesign::new(nl, part)
            }
        }
    }
}

/// Builds a randomly-partitioned variant of the Syn-1 netlist: the paper's
/// data-augmentation design (`k` selects the random partition).
pub fn augmented_design(benchmark: Benchmark, k: u64, target: Option<usize>) -> M3dDesign {
    let mut p = GenParams::new(1);
    if let Some(t) = target {
        p = p.with_target(t);
    }
    let nl = benchmark.generate(&p);
    let part = PartitionAlgo::Random.partition(&nl, 1000 + k);
    M3dDesign::new(nl, part)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_share_architecture_but_differ_in_structure() {
        let syn1 = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
        let syn2 = DesignConfig::Syn2.build_sized(Benchmark::Aes, Some(300));
        let tpi = DesignConfig::Tpi.build_sized(Benchmark::Aes, Some(300));
        let par = DesignConfig::Par.build_sized(Benchmark::Aes, Some(300));

        // Same flop-bank architecture for same-netlist configs.
        assert!(tpi.netlist().stats().flops > syn1.netlist().stats().flops);
        assert_ne!(
            syn1.netlist().gate_count(),
            syn2.netlist().gate_count(),
            "re-synthesis changes gate count"
        );
        // Par shares the netlist with Syn-1 but cuts differently.
        assert_eq!(par.netlist().gate_count(), syn1.netlist().gate_count());
        assert_ne!(par.miv_count(), syn1.miv_count());
    }

    #[test]
    fn augmented_designs_vary_by_k() {
        let a = augmented_design(Benchmark::Aes, 0, Some(300));
        let b = augmented_design(Benchmark::Aes, 1, Some(300));
        assert_eq!(a.netlist().gate_count(), b.netlist().gate_count());
        assert_ne!(
            a.partition().tiers(),
            b.partition().tiers(),
            "different random partitions"
        );
    }
}
