//! Device tiers of a monolithic 3D design.

use std::fmt;

/// A device tier in a two-tier M3D stack.
///
/// The paper demonstrates its framework on two-tier designs (and notes the
/// graph-representation vector extends to more tiers); this workspace follows
/// suit. The *top* tier suffers low-temperature-process device degradation,
/// the *bottom* tier suffers tungsten-interconnect RC delay — the two
/// systematic-defect populations that motivate tier-level localization.
///
/// # Examples
///
/// ```
/// use m3d_part::Tier;
///
/// assert_eq!(Tier::Top.other(), Tier::Bottom);
/// assert_eq!(Tier::Bottom.index(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Tier {
    /// Upper device tier (fabricated with the low-temperature process).
    Top,
    /// Lower device tier (under the inter-layer dielectric).
    Bottom,
}

impl Tier {
    /// Both tiers, top first (the paper's `[p_top, p_bottom]` order).
    pub const ALL: [Tier; 2] = [Tier::Top, Tier::Bottom];

    /// The opposite tier.
    #[inline]
    pub fn other(self) -> Tier {
        match self {
            Tier::Top => Tier::Bottom,
            Tier::Bottom => Tier::Top,
        }
    }

    /// Dense index: `Top = 0`, `Bottom = 1` (matches `[p_top, p_bottom]`).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Tier::Top => 0,
            Tier::Bottom => 1,
        }
    }

    /// The tier with the given dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 1`.
    #[inline]
    pub fn from_index(index: usize) -> Tier {
        match index {
            0 => Tier::Top,
            1 => Tier::Bottom,
            _ => panic!("two-tier design: tier index {index} out of range"),
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Tier::Top => "top",
            Tier::Bottom => "bottom",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_round_trips() {
        for t in Tier::ALL {
            assert_eq!(Tier::from_index(t.index()), t);
            assert_eq!(t.other().other(), t);
            assert_ne!(t.other(), t);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn third_tier_is_rejected() {
        let _ = Tier::from_index(2);
    }
}
