//! A partitioned M3D design: netlist + tier labels + MIVs + fault sites.

use m3d_netlist::{GateId, NetId, Netlist, SiteId, SitePos, SiteTable};

use crate::partition::Partition;
use crate::tier::Tier;

/// A monolithic inter-tier via: one per cut net.
///
/// The paper models each MIV as an extra node on the net between the
/// driving gate and the sinks on the other tier; a delay defect in the MIV
/// slows exactly those branches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Miv {
    /// The cut net this MIV sits on.
    pub net: NetId,
    /// Tier of the driving gate.
    pub driver_tier: Tier,
}

/// A two-tier M3D design: an immutable netlist plus its partition, the
/// inferred MIVs, and the extended fault-site table (gate pins + MIVs).
///
/// # Examples
///
/// ```
/// use m3d_netlist::generate::{Benchmark, GenParams};
/// use m3d_part::{M3dDesign, PartitionAlgo};
///
/// let nl = Benchmark::Aes.generate(&GenParams::small(1));
/// let part = PartitionAlgo::MinCut.partition(&nl, 1);
/// let design = M3dDesign::new(nl, part);
/// assert!(design.miv_count() > 0, "a real partition cuts some nets");
/// ```
#[derive(Clone, Debug)]
pub struct M3dDesign {
    netlist: Netlist,
    partition: Partition,
    mivs: Vec<Miv>,
    miv_of_net: Vec<Option<u32>>,
    sites: SiteTable,
}

impl M3dDesign {
    /// Partitions a netlist into an M3D design, inferring one MIV per cut
    /// net and extending the fault-site table.
    pub fn new(netlist: Netlist, partition: Partition) -> Self {
        let mut mivs = Vec::new();
        let mut miv_of_net = vec![None; netlist.net_count()];
        for (i, slot) in miv_of_net.iter_mut().enumerate() {
            let id = NetId::new(i);
            let net = netlist.net(id);
            let dt = partition.tier(net.driver());
            if net.sinks().iter().any(|&(s, _)| partition.tier(s) != dt) {
                *slot = Some(mivs.len() as u32);
                mivs.push(Miv {
                    net: id,
                    driver_tier: dt,
                });
            }
        }
        let sites = SiteTable::from_netlist(&netlist).with_mivs(mivs.len());
        M3dDesign {
            netlist,
            partition,
            mivs,
            miv_of_net,
            sites,
        }
    }

    /// Assembles a design from explicit parts, *without* re-deriving MIVs
    /// or the site table from the partition.
    ///
    /// This is the unchecked escape hatch the `m3d-lint` mutation tests use
    /// to model a stale or truncated site table ([`new`](M3dDesign::new)
    /// always builds a consistent one). The per-net MIV index is rebuilt
    /// from `mivs`, keeping the first MIV claimed per net.
    pub fn from_raw_parts(
        netlist: Netlist,
        partition: Partition,
        mivs: Vec<Miv>,
        sites: SiteTable,
    ) -> Self {
        let mut miv_of_net = vec![None; netlist.net_count()];
        for (i, m) in mivs.iter().enumerate() {
            if let Some(slot) = miv_of_net.get_mut(m.net.index()) {
                if slot.is_none() {
                    *slot = Some(i as u32);
                }
            }
        }
        M3dDesign {
            netlist,
            partition,
            mivs,
            miv_of_net,
            sites,
        }
    }

    /// The underlying netlist.
    #[inline]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The tier assignment.
    #[inline]
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// All MIVs, in index order.
    #[inline]
    pub fn mivs(&self) -> &[Miv] {
        &self.mivs
    }

    /// Number of MIVs.
    #[inline]
    pub fn miv_count(&self) -> usize {
        self.mivs.len()
    }

    /// The extended fault-site table (gate pins followed by MIV sites).
    #[inline]
    pub fn sites(&self) -> &SiteTable {
        &self.sites
    }

    /// The tier of a gate.
    #[inline]
    pub fn tier_of_gate(&self, gate: GateId) -> Tier {
        self.partition.tier(gate)
    }

    /// The tier of a fault site; MIV sites belong to no tier (the paper's
    /// "MIVs do not belong to any tiers").
    pub fn tier_of_site(&self, site: SiteId) -> Option<Tier> {
        match self.sites.pos(site) {
            SitePos::Output(g) | SitePos::Input(g, _) => Some(self.tier_of_gate(g)),
            SitePos::Miv(_) => None,
        }
    }

    /// The MIV index on a net, if the net is cut.
    #[inline]
    pub fn miv_on_net(&self, net: NetId) -> Option<u32> {
        self.miv_of_net[net.index()]
    }

    /// The fault-site id of the `index`-th MIV.
    #[inline]
    pub fn miv_site(&self, index: usize) -> SiteId {
        self.sites.miv_site(index)
    }

    /// Sink branches of an MIV's net that lie on the far side of the via
    /// (tier different from the driver): these are the pins a slow MIV
    /// delays.
    pub fn far_sinks(&self, miv: u32) -> Vec<(GateId, u8)> {
        let m = self.mivs[miv as usize];
        self.netlist
            .net(m.net)
            .sinks()
            .iter()
            .copied()
            .filter(|&(s, _)| self.partition.tier(s) != m.driver_tier)
            .collect()
    }

    /// Whether a site connects to an MIV (the `MIV` feature of Table I):
    /// true for MIV sites themselves, for the driver output pin of a cut
    /// net, and for far-side sink input pins.
    pub fn site_touches_miv(&self, site: SiteId) -> bool {
        match self.sites.pos(site) {
            SitePos::Miv(_) => true,
            SitePos::Output(g) => self
                .netlist
                .gate(g)
                .output()
                .and_then(|n| self.miv_on_net(n))
                .is_some(),
            SitePos::Input(g, pin) => {
                let net = self.netlist.gate(g).inputs()[pin as usize];
                match self.miv_on_net(net) {
                    None => false,
                    Some(m) => self.partition.tier(g) != self.mivs[m as usize].driver_tier,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionAlgo;
    use m3d_netlist::generate::{Benchmark, GenParams};

    fn design() -> M3dDesign {
        let nl = Benchmark::Tate.generate(&GenParams::small(1));
        let p = PartitionAlgo::MinCut.partition(&nl, 1);
        M3dDesign::new(nl, p)
    }

    #[test]
    fn mivs_map_one_to_one_with_cut_nets() {
        let d = design();
        let cuts = d.partition().cut_nets(d.netlist());
        assert_eq!(cuts.len(), d.miv_count());
        for (i, m) in d.mivs().iter().enumerate() {
            assert_eq!(d.miv_on_net(m.net), Some(i as u32));
            assert!(!d.far_sinks(i as u32).is_empty());
        }
    }

    #[test]
    fn miv_sites_extend_pin_sites() {
        let d = design();
        assert_eq!(d.sites().len(), d.sites().pin_site_count() + d.miv_count());
        for i in 0..d.miv_count() {
            let s = d.miv_site(i);
            assert_eq!(d.tier_of_site(s), None);
            assert!(d.site_touches_miv(s));
        }
    }

    #[test]
    fn far_sinks_are_on_the_other_tier() {
        let d = design();
        for (i, m) in d.mivs().iter().enumerate() {
            for (g, _) in d.far_sinks(i as u32) {
                assert_ne!(d.tier_of_gate(g), m.driver_tier);
            }
        }
    }

    #[test]
    fn random_partition_has_more_mivs_than_min_cut() {
        let nl = Benchmark::Tate.generate(&GenParams::small(1));
        let fm = M3dDesign::new(nl.clone(), PartitionAlgo::MinCut.partition(&nl, 1));
        let rnd = M3dDesign::new(nl.clone(), PartitionAlgo::Random.partition(&nl, 1));
        assert!(rnd.miv_count() > fm.miv_count());
    }

    #[test]
    fn gate_sites_report_their_gate_tier() {
        let d = design();
        for (site, pos) in d.sites().iter() {
            if let Some(g) = pos.gate() {
                assert_eq!(d.tier_of_site(site), Some(d.tier_of_gate(g)));
            }
        }
    }
}
