//! Tier-partitioning algorithms.
//!
//! Three partitioners cover the paper's configurations:
//!
//! * [`PartitionAlgo::MinCut`] — an FM-style min-cut, area-balanced
//!   bipartitioner, standing in for the placement-driven partitioner of
//!   Panth et al. used for the Syn-1/Syn-2/TPI netlists.
//! * [`PartitionAlgo::LevelBanded`] — a topological-band partitioner,
//!   standing in for the alternative TP-GNN-style partitioner of the *Par*
//!   configuration.
//! * [`PartitionAlgo::Random`] — balanced random assignment, the paper's
//!   *data-augmentation* partitioner for transferable training sets.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use m3d_netlist::{GateId, GateKind, Netlist};

use crate::tier::Tier;

/// A tier assignment for every gate of a netlist.
///
/// Primary input/output pseudo cells are always assigned to the bottom tier
/// (pads bond to the bottom tier in M3D flows).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    tiers: Vec<Tier>,
}

impl Partition {
    /// Wraps a raw per-gate tier vector.
    ///
    /// # Panics
    ///
    /// Panics if `tiers.len()` differs from the netlist gate count.
    pub fn from_tiers(netlist: &Netlist, tiers: Vec<Tier>) -> Self {
        assert_eq!(tiers.len(), netlist.gate_count(), "one tier per gate");
        Partition { tiers }
    }

    /// The tier of a gate.
    #[inline]
    pub fn tier(&self, gate: GateId) -> Tier {
        self.tiers[gate.index()]
    }

    /// Per-gate tiers in [`GateId`] order.
    #[inline]
    pub fn tiers(&self) -> &[Tier] {
        &self.tiers
    }

    /// Nets cut by the partition (driver and some sink on different tiers).
    pub fn cut_nets(&self, netlist: &Netlist) -> Vec<m3d_netlist::NetId> {
        (0..netlist.net_count())
            .map(m3d_netlist::NetId::new)
            .filter(|&n| {
                let net = netlist.net(n);
                let dt = self.tier(net.driver());
                net.sinks().iter().any(|&(s, _)| self.tier(s) != dt)
            })
            .collect()
    }

    /// Area occupied by each tier, `[top, bottom]`.
    pub fn area_by_tier(&self, netlist: &Netlist) -> [f32; 2] {
        let mut area = [0.0f32; 2];
        for (i, g) in netlist.gates().iter().enumerate() {
            area[self.tiers[i].index()] += g.kind().area();
        }
        area
    }

    /// Area imbalance as `|top - bottom| / total` (0 = perfectly balanced).
    pub fn imbalance(&self, netlist: &Netlist) -> f32 {
        let [t, b] = self.area_by_tier(netlist);
        if t + b == 0.0 {
            0.0
        } else {
            (t - b).abs() / (t + b)
        }
    }
}

/// The partitioning algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PartitionAlgo {
    /// FM-style min-cut with area balancing (the paper's default flow).
    MinCut,
    /// Topological level bands (the *Par* configuration's partitioner).
    LevelBanded,
    /// Balanced random assignment (training-set augmentation).
    Random,
}

impl PartitionAlgo {
    /// Runs the algorithm on `netlist` with the given seed.
    ///
    /// # Examples
    ///
    /// ```
    /// use m3d_netlist::generate::{Benchmark, GenParams};
    /// use m3d_part::PartitionAlgo;
    ///
    /// let nl = Benchmark::Aes.generate(&GenParams::small(1));
    /// let part = PartitionAlgo::MinCut.partition(&nl, 1);
    /// assert!(part.imbalance(&nl) < 0.2);
    /// ```
    pub fn partition(self, netlist: &Netlist, seed: u64) -> Partition {
        let mut part = match self {
            PartitionAlgo::MinCut => min_cut(netlist, seed),
            PartitionAlgo::LevelBanded => level_banded(netlist, seed),
            PartitionAlgo::Random => random_balanced(netlist, seed),
        };
        pin_pseudo_cells(netlist, &mut part);
        Partition::from_tiers(netlist, part)
    }
}

/// I/O pads bond to the bottom tier.
fn pin_pseudo_cells(netlist: &Netlist, tiers: &mut [Tier]) {
    for (i, g) in netlist.gates().iter().enumerate() {
        if matches!(g.kind(), GateKind::Input | GateKind::Output) {
            tiers[i] = Tier::Bottom;
        }
    }
}

fn partitionable(netlist: &Netlist) -> Vec<GateId> {
    (0..netlist.gate_count())
        .map(GateId::new)
        .filter(|&g| !matches!(netlist.gate(g).kind(), GateKind::Input | GateKind::Output))
        .collect()
}

/// Balanced random assignment: shuffle gates, fill tiers alternately by area.
fn random_balanced(netlist: &Netlist, seed: u64) -> Vec<Tier> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5244_4f4d); // "RDOM"
    let mut tiers = vec![Tier::Bottom; netlist.gate_count()];
    let mut order = partitionable(netlist);
    order.shuffle(&mut rng);
    let mut area = [0.0f32; 2];
    for g in order {
        let t = if area[0] <= area[1] {
            Tier::Top
        } else {
            Tier::Bottom
        };
        tiers[g.index()] = t;
        area[t.index()] += netlist.gate(g).kind().area();
    }
    tiers
}

/// Topological-band partitioner: early levels to the bottom tier, late
/// levels to the top, with the boundary placed to balance area. Models a
/// placement-driven flow where pipeline front-ends sit near the pads.
fn level_banded(netlist: &Netlist, seed: u64) -> Vec<Tier> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4c56_4c42); // "LVLB"
    let cells = partitionable(netlist);
    let mut by_level: Vec<(u32, GateId)> = cells
        .iter()
        .map(|&g| {
            // Flops take the level of their driving cone's depth.
            let lvl = netlist
                .fanin_gates(g)
                .map(|p| netlist.level(p))
                .max()
                .unwrap_or(0);
            (lvl * 8 + rng.gen_range(0..8), g)
        })
        .collect();
    by_level.sort_by_key(|&(l, g)| (l, g));

    let total: f32 = cells.iter().map(|&g| netlist.gate(g).kind().area()).sum();
    let mut tiers = vec![Tier::Bottom; netlist.gate_count()];
    let mut acc = 0.0f32;
    for (_, g) in by_level {
        let t = if acc < total / 2.0 {
            Tier::Bottom
        } else {
            Tier::Top
        };
        tiers[g.index()] = t;
        acc += netlist.gate(g).kind().area();
    }
    tiers
}

/// FM-style min-cut refinement over a balanced random start.
fn min_cut(netlist: &Netlist, seed: u64) -> Vec<Tier> {
    let mut tiers = random_balanced(netlist, seed ^ 0x464d_5f49); // "FM_I"
    let cells = partitionable(netlist);
    let total: f32 = cells.iter().map(|&g| netlist.gate(g).kind().area()).sum();
    let max_skew = total * 0.08;

    // A small number of full FM passes with gate locking per pass.
    for _pass in 0..3 {
        let mut locked = vec![false; netlist.gate_count()];
        let mut area = area_by(netlist, &tiers);
        let mut improved = false;
        for &g in &cells {
            if locked[g.index()] {
                continue;
            }
            let gain = move_gain(netlist, &tiers, g);
            if gain <= 0 {
                continue;
            }
            let from = tiers[g.index()];
            let to = from.other();
            let a = netlist.gate(g).kind().area();
            let new_skew = (area[to.index()] + a - (area[from.index()] - a)).abs();
            if new_skew > max_skew {
                continue;
            }
            tiers[g.index()] = to;
            area[from.index()] -= a;
            area[to.index()] += a;
            locked[g.index()] = true;
            improved = true;
        }
        if !improved {
            break;
        }
    }
    tiers
}

fn area_by(netlist: &Netlist, tiers: &[Tier]) -> [f32; 2] {
    let mut area = [0.0f32; 2];
    for (i, g) in netlist.gates().iter().enumerate() {
        area[tiers[i].index()] += g.kind().area();
    }
    area
}

/// Cut-size reduction if `g` moves to the other tier: counts incident nets
/// that stop/start being cut.
fn move_gain(netlist: &Netlist, tiers: &[Tier], g: GateId) -> i32 {
    let mut gain = 0i32;
    let mine = tiers[g.index()];
    let mut visit = |net: m3d_netlist::NetId| {
        let n = netlist.net(net);
        let driver = n.driver();
        let cut_now = {
            let dt = tiers[driver.index()];
            n.sinks().iter().any(|&(s, _)| tiers[s.index()] != dt)
        };
        let cut_after = {
            let t_of = |x: GateId| {
                if x == g {
                    mine.other()
                } else {
                    tiers[x.index()]
                }
            };
            let dt = t_of(driver);
            n.sinks().iter().any(|&(s, _)| t_of(s) != dt)
        };
        gain += i32::from(cut_now) - i32::from(cut_after);
    };
    for &net in netlist.gate(g).inputs() {
        visit(net);
    }
    if let Some(net) = netlist.gate(g).output() {
        visit(net);
    }
    gain
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::generate::{Benchmark, GenParams};

    fn nl() -> Netlist {
        Benchmark::Tate.generate(&GenParams::small(1))
    }

    #[test]
    fn all_algorithms_are_balanced() {
        let netlist = nl();
        for algo in [
            PartitionAlgo::MinCut,
            PartitionAlgo::LevelBanded,
            PartitionAlgo::Random,
        ] {
            let p = algo.partition(&netlist, 3);
            assert!(
                p.imbalance(&netlist) < 0.25,
                "{algo:?} imbalance {}",
                p.imbalance(&netlist)
            );
        }
    }

    #[test]
    fn min_cut_beats_random_on_cut_size() {
        let netlist = nl();
        let rand_cut = PartitionAlgo::Random
            .partition(&netlist, 5)
            .cut_nets(&netlist)
            .len();
        let fm_cut = PartitionAlgo::MinCut
            .partition(&netlist, 5)
            .cut_nets(&netlist)
            .len();
        assert!(
            fm_cut < rand_cut,
            "FM ({fm_cut}) should beat random ({rand_cut})"
        );
    }

    #[test]
    fn pseudo_cells_stay_on_bottom_tier() {
        let netlist = nl();
        let p = PartitionAlgo::Random.partition(&netlist, 11);
        for &io in netlist.inputs().iter().chain(netlist.outputs()) {
            assert_eq!(p.tier(io), Tier::Bottom);
        }
    }

    #[test]
    fn partitioning_is_deterministic() {
        let netlist = nl();
        let a = PartitionAlgo::MinCut.partition(&netlist, 9);
        let b = PartitionAlgo::MinCut.partition(&netlist, 9);
        assert_eq!(a, b);
        let c = PartitionAlgo::MinCut.partition(&netlist, 10);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn cut_nets_match_tier_labels() {
        let netlist = nl();
        let p = PartitionAlgo::LevelBanded.partition(&netlist, 2);
        for n in p.cut_nets(&netlist) {
            let net = netlist.net(n);
            let dt = p.tier(net.driver());
            assert!(net.sinks().iter().any(|&(s, _)| p.tier(s) != dt));
        }
    }
}

/// Serializes a partition to a line-oriented text format
/// (`<gate-index> top|bottom`, one line per gate).
///
/// # Examples
///
/// ```
/// use m3d_netlist::generate::{Benchmark, GenParams};
/// use m3d_part::{read_partition, write_partition, PartitionAlgo};
///
/// # fn main() -> Result<(), String> {
/// let nl = Benchmark::Aes.generate(&GenParams::small(1));
/// let p = PartitionAlgo::MinCut.partition(&nl, 1);
/// let text = write_partition(&p);
/// assert_eq!(read_partition(&nl, &text)?, p);
/// # Ok(())
/// # }
/// ```
pub fn write_partition(partition: &Partition) -> String {
    let mut out = String::from("# m3d-partition v1\n");
    for (i, t) in partition.tiers().iter().enumerate() {
        out.push_str(&format!("{i} {t}\n"));
    }
    out
}

/// Parses a partition file back for `netlist`.
///
/// # Errors
///
/// Returns a message naming the offending line on malformed input or a
/// gate-count mismatch.
pub fn read_partition(netlist: &Netlist, text: &str) -> Result<Partition, String> {
    let mut tiers = vec![None; netlist.gate_count()];
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (idx, tier) = line
            .split_once(' ')
            .ok_or_else(|| format!("line {}: expected `<gate> <tier>`", ln + 1))?;
        let idx: usize = idx
            .parse()
            .map_err(|_| format!("line {}: bad gate index `{idx}`", ln + 1))?;
        if idx >= tiers.len() {
            return Err(format!("line {}: gate {idx} out of range", ln + 1));
        }
        tiers[idx] = Some(match tier.trim() {
            "top" => Tier::Top,
            "bottom" => Tier::Bottom,
            other => return Err(format!("line {}: bad tier `{other}`", ln + 1)),
        });
    }
    let tiers: Vec<Tier> = tiers
        .into_iter()
        .enumerate()
        .map(|(i, t)| t.ok_or(format!("gate {i} has no tier assignment")))
        .collect::<Result<_, _>>()?;
    Ok(Partition::from_tiers(netlist, tiers))
}

#[cfg(test)]
mod io_tests {
    use super::*;
    use m3d_netlist::generate::{Benchmark, GenParams};

    #[test]
    fn partition_io_round_trips() {
        let nl = Benchmark::Tate.generate(&GenParams::small(3));
        for algo in [
            PartitionAlgo::MinCut,
            PartitionAlgo::LevelBanded,
            PartitionAlgo::Random,
        ] {
            let p = algo.partition(&nl, 5);
            let text = write_partition(&p);
            assert_eq!(read_partition(&nl, &text).expect("round trip"), p);
        }
    }

    #[test]
    fn partition_io_rejects_garbage() {
        let nl = Benchmark::Aes.generate(&GenParams::small(1));
        assert!(read_partition(&nl, "0 middle\n").is_err());
        assert!(read_partition(&nl, "999999 top\n").is_err());
        assert!(read_partition(&nl, "0 top\n")
            .unwrap_err()
            .contains("no tier assignment"));
    }
}
