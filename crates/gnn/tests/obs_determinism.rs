//! Observability must be a pure read of training: enabling span tracing
//! and metrics recording must leave weights, loss, and predictions
//! bit-identical to an uninstrumented run, at any pool width.
//!
//! Single `#[test]`: obs state is process-global, so the four scenarios
//! (obs off/on × threads 1/4) run sequentially inside one test function.

use m3d_gnn::{GcnClassifier, GcnGraph, GraphData, Matrix, TrainConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn toy_dataset(n: usize, seed: u64) -> Vec<(GraphData, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let nodes = rng.gen_range(4..9);
            let label = rng.gen_range(0..2usize);
            let edges: Vec<(usize, usize)> = (1..nodes).map(|v| (v - 1, v)).collect();
            let mut feats = Matrix::zeros(nodes, 3);
            for r in 0..nodes {
                let base = if label == 0 { 1.0 } else { -1.0 };
                feats[(r, 0)] = base + rng.gen_range(-0.3..0.3);
                feats[(r, 1)] = rng.gen_range(-1.0..1.0);
                feats[(r, 2)] = rng.gen_range(-1.0..1.0);
            }
            (
                GraphData::new(GcnGraph::from_edges(nodes, &edges), feats),
                label,
            )
        })
        .collect()
}

#[test]
fn training_is_bit_identical_with_observability_on_or_off() {
    let data = toy_dataset(30, 17);
    let refs: Vec<(&GraphData, usize)> = data.iter().map(|(d, l)| (d, *l)).collect();
    let cfg = TrainConfig {
        epochs: 8,
        ..TrainConfig::default()
    };

    let run = |threads: usize, obs: bool| {
        m3d_obs::reset();
        m3d_obs::set_enabled(obs);
        let out = m3d_par::with_threads(threads, || {
            let mut model = GcnClassifier::new(3, 8, 2, 2, 5);
            let loss = model.fit(&refs, &cfg);
            let preds: Vec<usize> = data.iter().map(|(d, _)| model.predict(d)).collect();
            let bits: Vec<u32> = model.flat_params().iter().map(|p| p.to_bits()).collect();
            (bits, loss.to_bits(), preds)
        });
        m3d_obs::set_enabled(false);
        out
    };

    let baseline = run(1, false);
    let obs_1t = run(1, true);

    // The instrumented run must have actually recorded something…
    let trace = m3d_obs::trace_events();
    assert!(
        trace.iter().any(|e| matches!(
            e,
            m3d_obs::Event::Span { name, .. } if name == "gnn_fit"
        )),
        "instrumented run records a gnn_fit span"
    );
    let reg = m3d_obs::registry_snapshot();
    assert_eq!(
        reg.series("gnn.epoch_loss").map(<[f64]>::len),
        Some(cfg.epochs),
        "one loss point per epoch"
    );
    assert_eq!(
        reg.counter_value("gnn.train.epochs"),
        Some(cfg.epochs as u64)
    );
    m3d_obs::reset();

    let obs_4t = run(4, true);
    m3d_obs::reset();
    let off_4t = run(4, false);

    // …while leaving every numeric result untouched.
    assert_eq!(baseline, obs_1t, "obs on/off must match at 1 thread");
    assert_eq!(baseline, obs_4t, "obs on must match at 4 threads");
    assert_eq!(baseline, off_4t, "obs off must match at 4 threads");
}
