//! Blocked/parallel kernels vs naive references, at 1 vs N threads.
//!
//! The contract under test: `Matrix::{matmul,t_matmul,matmul_t}` and
//! `GcnGraph::{aggregate,aggregate_transpose}` are **bitwise** equal to
//! their retained naive references, at any pool width. Shapes deliberately
//! cross the register-tile (4×8), cache-block (128) and parallel-row (64)
//! boundaries: single-row, single-column, and k-not-divisible-by-block
//! cases included.

use m3d_gnn::{GcnGraph, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..rows * cols)
        .map(|_| {
            if rng.gen_range(0..4usize) == 0 {
                0.0
            } else {
                rng.gen_range(-2.0f32..2.0)
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn assert_bitwise(got: &Matrix, want: &Matrix, what: &str) {
    assert_eq!(
        (got.rows(), got.cols()),
        (want.rows(), want.cols()),
        "{what}"
    );
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: element {i} differs ({g} vs {w})"
        );
    }
}

/// Runs `f` at pool width 1 and 4, asserts both outputs are bitwise equal
/// to `want`.
fn check_both_widths(want: &Matrix, what: &str, f: impl Fn() -> Matrix) {
    let one = m3d_par::with_threads(1, &f);
    let four = m3d_par::with_threads(4, &f);
    assert_bitwise(&one, want, &format!("{what} @1t"));
    assert_bitwise(&four, want, &format!("{what} @4t"));
}

fn random_graph(n: usize, m: usize, seed: u64) -> GcnGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(usize, usize)> = (0..m)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    GcnGraph::from_edges(n, &edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized shapes spanning the serial→parallel row threshold and
    /// non-multiple-of-tile dimensions.
    #[test]
    fn matmul_family_bitwise_equal_at_1_and_4_threads(
        m in 1usize..100,
        k in 1usize..48,
        n in 1usize..24,
        seed in 0u64..1_000_000,
    ) {
        let a = random_matrix(m, k, seed);
        let b = random_matrix(k, n, seed.wrapping_add(1));
        check_both_widths(&a.matmul_naive(&b), "matmul", || a.matmul(&b));

        let at = random_matrix(k, m, seed.wrapping_add(2));
        let bt = random_matrix(k, n, seed.wrapping_add(3));
        check_both_widths(&at.t_matmul_naive(&bt), "t_matmul", || at.t_matmul(&bt));

        let c = random_matrix(n, k, seed.wrapping_add(4));
        check_both_widths(&a.matmul_t_naive(&c), "matmul_t", || a.matmul_t(&c));
    }

    /// Aggregation over random graphs (duplicate edges and self-loops
    /// allowed by construction) at both pool widths.
    #[test]
    fn aggregation_bitwise_equal_at_1_and_4_threads(
        n in 1usize..200,
        extra in 0usize..400,
        cols in 1usize..12,
        seed in 0u64..1_000_000,
    ) {
        let g = random_graph(n, extra, seed);
        let x = random_matrix(n, cols, seed.wrapping_add(9));
        check_both_widths(&g.aggregate_naive(&x), "aggregate", || g.aggregate(&x));
        check_both_widths(
            &g.aggregate_transpose_naive(&x),
            "aggregate_transpose",
            || g.aggregate_transpose(&x),
        );
    }
}

/// Deterministic edge shapes: k not divisible by the 128-deep cache block,
/// single-row and single-column matrices, and a row count deep into the
/// parallel regime.
#[test]
fn edge_shapes_bitwise_equal_at_1_and_4_threads() {
    let shapes = [
        (1usize, 1usize, 1usize), // scalar
        (1, 257, 9),              // single row, k % 128 != 0
        (300, 1, 1),              // single column, parallel rows
        (129, 127, 16),           // both dims straddle the block size
        (200, 33, 7),             // parallel rows, odd k
    ];
    for (si, &(m, k, n)) in shapes.iter().enumerate() {
        let s = si as u64 * 100;
        let a = random_matrix(m, k, s + 1);
        let b = random_matrix(k, n, s + 2);
        check_both_widths(&a.matmul_naive(&b), "matmul", || a.matmul(&b));
        let at = random_matrix(k, m, s + 3);
        check_both_widths(&at.t_matmul_naive(&b), "t_matmul", || at.t_matmul(&b));
        let c = random_matrix(n, k, s + 4);
        check_both_widths(&a.matmul_t_naive(&c), "matmul_t", || a.matmul_t(&c));
    }
}

/// A graph big enough that every pool chunk holds many rows: the parallel
/// aggregation path must reproduce the serial scatter bit for bit.
#[test]
fn large_graph_aggregation_bitwise_equal() {
    let g = random_graph(3000, 9000, 11);
    let x = random_matrix(3000, 8, 12);
    check_both_widths(&g.aggregate_naive(&x), "aggregate", || g.aggregate(&x));
    check_both_widths(
        &g.aggregate_transpose_naive(&x),
        "aggregate_transpose",
        || g.aggregate_transpose(&x),
    );
}
