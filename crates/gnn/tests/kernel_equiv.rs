//! Blocked/parallel kernels vs naive references, at 1 vs N threads.
//!
//! The contract under test: `Matrix::{matmul,t_matmul,matmul_t}`,
//! [`m3d_gnn::spmm`], and `GcnGraph::{aggregate,aggregate_transpose}`
//! (including the cache-resident partitioned path at arbitrary budgets)
//! are **bitwise** equal to their retained naive references, at any pool
//! width and any adaptive-granularity gate decision. Shapes deliberately
//! cross the register-tile (4×8), cache-block (128) and parallel-row (64)
//! boundaries: single-row, single-column, and k-not-divisible-by-block
//! cases included. Parallel runs pin the `m3d-par` cost gate open
//! (`with_par_threshold(0, ..)`) so small proptest shapes genuinely
//! exercise the fan-out path instead of being gated back to serial.

use m3d_gnn::{spmm, spmm_naive, GcnGraph, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..rows * cols)
        .map(|_| {
            if rng.gen_range(0..4usize) == 0 {
                0.0
            } else {
                rng.gen_range(-2.0f32..2.0)
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn assert_bitwise(got: &Matrix, want: &Matrix, what: &str) {
    assert_eq!(
        (got.rows(), got.cols()),
        (want.rows(), want.cols()),
        "{what}"
    );
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: element {i} differs ({g} vs {w})"
        );
    }
}

/// Runs `f` at pool width 1 and 4 — the 4-wide run once under the
/// calibrated cost gate and once with the gate pinned open so the
/// parallel path is actually taken — and asserts every output is bitwise
/// equal to `want`.
fn check_both_widths(want: &Matrix, what: &str, f: impl Fn() -> Matrix) {
    let one = m3d_par::with_threads(1, &f);
    let four = m3d_par::with_threads(4, &f);
    let four_forced = m3d_par::with_threads(4, || m3d_par::with_par_threshold(0, &f));
    assert_bitwise(&one, want, &format!("{what} @1t"));
    assert_bitwise(&four, want, &format!("{what} @4t"));
    assert_bitwise(&four_forced, want, &format!("{what} @4t forced-parallel"));
}

fn random_graph(n: usize, m: usize, seed: u64) -> GcnGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(usize, usize)> = (0..m)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    GcnGraph::from_edges(n, &edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized shapes spanning the serial→parallel row threshold and
    /// non-multiple-of-tile dimensions.
    #[test]
    fn matmul_family_bitwise_equal_at_1_and_4_threads(
        m in 1usize..100,
        k in 1usize..48,
        n in 1usize..24,
        seed in 0u64..1_000_000,
    ) {
        let a = random_matrix(m, k, seed);
        let b = random_matrix(k, n, seed.wrapping_add(1));
        check_both_widths(&a.matmul_naive(&b), "matmul", || a.matmul(&b));

        let at = random_matrix(k, m, seed.wrapping_add(2));
        let bt = random_matrix(k, n, seed.wrapping_add(3));
        check_both_widths(&at.t_matmul_naive(&bt), "t_matmul", || at.t_matmul(&bt));

        let c = random_matrix(n, k, seed.wrapping_add(4));
        check_both_widths(&a.matmul_t_naive(&c), "matmul_t", || a.matmul_t(&c));
    }

    /// Aggregation over random graphs (duplicate edges and self-loops
    /// allowed by construction) at both pool widths.
    #[test]
    fn aggregation_bitwise_equal_at_1_and_4_threads(
        n in 1usize..200,
        extra in 0usize..400,
        cols in 1usize..12,
        seed in 0u64..1_000_000,
    ) {
        let g = random_graph(n, extra, seed);
        let x = random_matrix(n, cols, seed.wrapping_add(9));
        check_both_widths(&g.aggregate_naive(&x), "aggregate", || g.aggregate(&x));
        check_both_widths(
            &g.aggregate_transpose_naive(&x),
            "aggregate_transpose",
            || g.aggregate_transpose(&x),
        );
    }

    /// The tiled SpMM (ISSUE 8): bitwise equal to the naive nonzero walk
    /// at 1 vs 4 threads, unit-valued and scaled, for widths spanning the
    /// narrow-output boundary.
    #[test]
    fn spmm_bitwise_equal_at_1_and_4_threads(
        rows in 1usize..120,
        brows in 1usize..80,
        bcols in 1usize..40,
        avg_nnz in 0usize..30,
        seed in 0u64..1_000_000,
    ) {
        let (offsets, indices) = random_csr(rows, brows, avg_nnz, seed);
        let b = random_matrix(brows, bcols, seed.wrapping_add(21));
        let want = spmm_naive(&offsets, &indices, None, &b);
        check_both_widths(&want, "spmm unit", || spmm(&offsets, &indices, None, &b));
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(22));
        let vals: Vec<f32> = (0..indices.len()).map(|_| rng.gen_range(-1.5f32..1.5)).collect();
        let wantv = spmm_naive(&offsets, &indices, Some(&vals), &b);
        check_both_widths(&wantv, "spmm scaled", || spmm(&offsets, &indices, Some(&vals), &b));
    }

    /// The partitioned aggregation (ISSUE 8): bitwise equal to the naive
    /// references across random partition budgets — boundaries anywhere,
    /// results identical — at 1 vs 4 threads and widths on both sides of
    /// the narrow-output boundary.
    #[test]
    fn partitioned_aggregation_bitwise_equal_across_budgets(
        n in 2usize..150,
        extra in 0usize..300,
        cols in 1usize..36,
        budget in 4usize..32_768,
        seed in 0u64..1_000_000,
    ) {
        let g = random_graph(n, extra, seed);
        let x = random_matrix(n, cols, seed.wrapping_add(31));
        let plan = g.plan_partitions(cols, budget);
        let want = g.aggregate_naive(&x);
        check_both_widths(&want, "partitioned aggregate", || g.aggregate_with_plan(&x, &plan));
        let want_t = g.aggregate_transpose_naive(&x);
        check_both_widths(
            &want_t,
            "partitioned aggregate_transpose",
            || g.aggregate_transpose_with_plan(&x, &plan),
        );
    }
}

fn random_csr(rows: usize, n_cols: usize, avg_nnz: usize, seed: u64) -> (Vec<u32>, Vec<u32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut offsets = vec![0u32];
    let mut indices = Vec::new();
    for _ in 0..rows {
        let k = rng.gen_range(0..=2 * avg_nnz).min(n_cols);
        let mut row: Vec<u32> = (0..k).map(|_| rng.gen_range(0..n_cols as u32)).collect();
        row.sort_unstable();
        row.dedup();
        indices.extend_from_slice(&row);
        offsets.push(indices.len() as u32);
    }
    (offsets, indices)
}

/// Deterministic edge shapes: k not divisible by the 128-deep cache block,
/// single-row and single-column matrices, and a row count deep into the
/// parallel regime.
#[test]
fn edge_shapes_bitwise_equal_at_1_and_4_threads() {
    let shapes = [
        (1usize, 1usize, 1usize), // scalar
        (1, 257, 9),              // single row, k % 128 != 0
        (300, 1, 1),              // single column, parallel rows
        (129, 127, 16),           // both dims straddle the block size
        (200, 33, 7),             // parallel rows, odd k
    ];
    for (si, &(m, k, n)) in shapes.iter().enumerate() {
        let s = si as u64 * 100;
        let a = random_matrix(m, k, s + 1);
        let b = random_matrix(k, n, s + 2);
        check_both_widths(&a.matmul_naive(&b), "matmul", || a.matmul(&b));
        let at = random_matrix(k, m, s + 3);
        check_both_widths(&at.t_matmul_naive(&b), "t_matmul", || at.t_matmul(&b));
        let c = random_matrix(n, k, s + 4);
        check_both_widths(&a.matmul_t_naive(&c), "matmul_t", || a.matmul_t(&c));
    }
}

/// A graph big enough that every pool chunk holds many rows: the parallel
/// aggregation path must reproduce the serial scatter bit for bit.
#[test]
fn large_graph_aggregation_bitwise_equal() {
    let g = random_graph(3000, 9000, 11);
    let x = random_matrix(3000, 8, 12);
    check_both_widths(&g.aggregate_naive(&x), "aggregate", || g.aggregate(&x));
    check_both_widths(
        &g.aggregate_transpose_naive(&x),
        "aggregate_transpose",
        || g.aggregate_transpose(&x),
    );
}

/// A graph and width large enough that the default dispatch in
/// `aggregate`/`aggregate_transpose` takes the partitioned path at the
/// default 256 KiB budget (3000 × 32 × 4 B = 375 KiB of features): the
/// automatic dispatch — not just the explicit `_with_plan` entry points —
/// must reproduce the naive scatter bit for bit.
#[test]
fn dispatched_partitioned_aggregation_bitwise_equal() {
    let g = random_graph(3000, 9000, 13);
    let x = random_matrix(3000, 32, 14);
    assert!(
        3000 * 32 * 4 > m3d_gnn::partition_budget(),
        "shape must overflow the budget for this test to bite"
    );
    assert!(
        g.partition_plan(32).len() > 1,
        "expected a multi-partition plan"
    );
    check_both_widths(&g.aggregate_naive(&x), "aggregate (dispatched)", || {
        g.aggregate(&x)
    });
    check_both_widths(
        &g.aggregate_transpose_naive(&x),
        "aggregate_transpose (dispatched)",
        || g.aggregate_transpose(&x),
    );
}
