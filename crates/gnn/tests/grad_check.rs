//! Property-based gradient checks: the hand-written backpropagation must
//! match finite differences for random graph shapes, feature dimensions,
//! and parameter values — the invariant everything trained in this
//! workspace rests on.

use proptest::prelude::*;

use m3d_gnn::{DenseLayer, GcnGraph, GcnLayer, Matrix};

/// Scalar loss = sum of all outputs; its gradient wrt outputs is ones.
fn ones_like(m: &Matrix) -> Matrix {
    Matrix::from_vec(m.rows(), m.cols(), vec![1.0; m.rows() * m.cols()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn gcn_layer_weight_gradients_match_finite_differences(
        nodes in 2usize..10,
        in_dim in 1usize..5,
        out_dim in 1usize..5,
        extra_edges in 0usize..12,
        seed in 1u64..500,
    ) {
        let mut edges: Vec<(usize, usize)> =
            (1..nodes).map(|v| (v - 1, v)).collect();
        for k in 0..extra_edges {
            edges.push((k % nodes, (k * 5 + 2) % nodes));
        }
        let g = GcnGraph::from_edges(nodes, &edges);
        let x = Matrix::xavier(nodes, in_dim, seed);
        let mut layer = GcnLayer::new(in_dim, out_dim, seed + 1);
        // Bias the pre-activations away from the ReLU kink so the central
        // difference stays on one side for most coordinates.
        for b in layer.b.value.data_mut() {
            *b = 0.25;
        }

        let (h, cache) = layer.forward(&g, &x);
        // Finite differences are meaningless across the ReLU kink: skip
        // cases where any pre-activation sits within reach of ±eps.
        let min_abs_z = cache
            .z
            .data()
            .iter()
            .map(|z| z.abs())
            .fold(f32::INFINITY, f32::min);
        prop_assume!(min_abs_z > 0.05);
        let dh = ones_like(&h);
        let dx = layer.backward(&g, &cache, &dh);

        let eps = 1e-2f32;
        // Sample a few weight coordinates.
        for idx in 0..(in_dim * out_dim).min(6) {
            let orig = layer.w.value.data()[idx];
            layer.w.value.data_mut()[idx] = orig + eps;
            let up: f32 = layer.forward(&g, &x).0.data().iter().sum();
            layer.w.value.data_mut()[idx] = orig - eps;
            let dn: f32 = layer.forward(&g, &x).0.data().iter().sum();
            layer.w.value.data_mut()[idx] = orig;
            let numeric = (up - dn) / (2.0 * eps);
            let analytic = layer.w.grad_mut().data()[idx];
            prop_assert!(
                (numeric - analytic).abs() < 0.12 + 0.12 * analytic.abs(),
                "dW[{idx}] numeric {numeric} vs analytic {analytic}"
            );
        }
        // And a few input coordinates.
        let mut x2 = x.clone();
        for idx in 0..(nodes * in_dim).min(6) {
            let orig = x2.data()[idx];
            x2.data_mut()[idx] = orig + eps;
            let up: f32 = layer.forward(&g, &x2).0.data().iter().sum();
            x2.data_mut()[idx] = orig - eps;
            let dn: f32 = layer.forward(&g, &x2).0.data().iter().sum();
            x2.data_mut()[idx] = orig;
            let numeric = (up - dn) / (2.0 * eps);
            let analytic = dx.data()[idx];
            prop_assert!(
                (numeric - analytic).abs() < 0.12 + 0.12 * analytic.abs(),
                "dX[{idx}] numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn dense_layer_gradients_match_finite_differences(
        batch in 1usize..6,
        in_dim in 1usize..6,
        out_dim in 1usize..4,
        seed in 1u64..500,
    ) {
        let x = Matrix::xavier(batch, in_dim, seed);
        let mut layer = DenseLayer::new(in_dim, out_dim, seed + 9);
        let y = layer.forward(&x);
        let dx = layer.backward(&x, &ones_like(&y));

        let eps = 1e-2f32;
        for idx in 0..(in_dim * out_dim).min(6) {
            let orig = layer.w.value.data()[idx];
            layer.w.value.data_mut()[idx] = orig + eps;
            let up: f32 = layer.forward(&x).data().iter().sum();
            layer.w.value.data_mut()[idx] = orig - eps;
            let dn: f32 = layer.forward(&x).data().iter().sum();
            layer.w.value.data_mut()[idx] = orig;
            let numeric = (up - dn) / (2.0 * eps);
            let analytic = layer.w.grad_mut().data()[idx];
            prop_assert!((numeric - analytic).abs() < 0.03);
        }
        // Dense layers are linear: dX is exact.
        for idx in 0..(batch * in_dim).min(8) {
            let mut x2 = x.clone();
            let orig = x2.data()[idx];
            x2.data_mut()[idx] = orig + eps;
            let up: f32 = layer.forward(&x2).data().iter().sum();
            x2.data_mut()[idx] = orig - eps;
            let dn: f32 = layer.forward(&x2).data().iter().sum();
            let numeric = (up - dn) / (2.0 * eps);
            prop_assert!((numeric - dx.data()[idx]).abs() < 0.03);
        }
    }
}
