//! Thread-count determinism: training on the `m3d_par` pool must produce
//! bitwise-identical models at `threads = 1` and `threads = 8`.
//!
//! This is the contract that lets every table in the reproduction be
//! regenerated on any machine: chunk boundaries are a function of input
//! length only, and gradients merge in sample-index order (see the
//! `m3d_par` crate docs).

use m3d_gnn::{GcnClassifier, GcnGraph, GraphData, Matrix, NodeClassifier, TrainConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn toy_dataset(n: usize, seed: u64) -> Vec<(GraphData, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let nodes = rng.gen_range(4..9);
            let label = rng.gen_range(0..2usize);
            let edges: Vec<(usize, usize)> = (1..nodes).map(|v| (v - 1, v)).collect();
            let mut feats = Matrix::zeros(nodes, 3);
            for r in 0..nodes {
                let base = if label == 0 { 1.0 } else { -1.0 };
                feats[(r, 0)] = base + rng.gen_range(-0.3..0.3);
                feats[(r, 1)] = rng.gen_range(-1.0..1.0);
                feats[(r, 2)] = rng.gen_range(-1.0..1.0);
            }
            (
                GraphData::new(GcnGraph::from_edges(nodes, &edges), feats),
                label,
            )
        })
        .collect()
}

fn bits(params: &[f32]) -> Vec<u32> {
    params.iter().map(|p| p.to_bits()).collect()
}

#[test]
fn classifier_training_is_bitwise_thread_count_independent() {
    let data = toy_dataset(50, 11);
    let refs: Vec<(&GraphData, usize)> = data.iter().map(|(d, l)| (d, *l)).collect();
    let cfg = TrainConfig {
        epochs: 12,
        ..TrainConfig::default()
    };

    let run = |threads: usize| {
        m3d_par::with_threads(threads, || {
            let mut model = GcnClassifier::new(3, 8, 2, 2, 5);
            let loss = model.fit(&refs, &cfg);
            let preds: Vec<usize> = data.iter().map(|(d, _)| model.predict(d)).collect();
            let probs: Vec<u32> = data
                .iter()
                .flat_map(|(d, _)| model.predict_proba(d))
                .map(f32::to_bits)
                .collect();
            (bits(&model.flat_params()), loss.to_bits(), preds, probs)
        })
    };

    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial.0, parallel.0, "final weights must be bit-identical");
    assert_eq!(serial.1, parallel.1, "final loss must be bit-identical");
    assert_eq!(serial.2, parallel.2, "predictions must be identical");
    assert_eq!(serial.3, parallel.3, "probabilities must be bit-identical");
}

#[test]
fn transfer_classifier_training_is_thread_count_independent() {
    // The frozen-backbone path skips layer gradients; cover it separately.
    let data = toy_dataset(30, 7);
    let refs: Vec<(&GraphData, usize)> = data.iter().map(|(d, l)| (d, *l)).collect();
    let cfg = TrainConfig {
        epochs: 6,
        ..TrainConfig::default()
    };
    let run = |threads: usize| {
        m3d_par::with_threads(threads, || {
            let mut base = GcnClassifier::new(3, 8, 2, 2, 5);
            base.fit(&refs, &cfg);
            let mut transfer = GcnClassifier::transfer_from(&base, 2, 42);
            let loss = transfer.fit(&refs, &cfg);
            (bits(&transfer.flat_params()), loss.to_bits())
        })
    };
    assert_eq!(run(1), run(8));
}

#[test]
fn node_classifier_training_is_thread_count_independent() {
    let mut rng = StdRng::seed_from_u64(21);
    let mut samples = Vec::new();
    for _ in 0..24 {
        let nodes = 8usize;
        let edges: Vec<(usize, usize)> = (1..nodes).map(|v| (v - 1, v)).collect();
        let mut feats = Matrix::zeros(nodes, 2);
        for r in 0..nodes {
            feats[(r, 0)] = rng.gen_range(-1.0f32..1.0);
            feats[(r, 1)] = rng.gen_range(-0.2..0.2);
        }
        let labels: Vec<(usize, bool)> = (0..nodes).map(|r| (r, feats[(r, 0)] > 0.0)).collect();
        samples.push((
            GraphData::new(GcnGraph::from_edges(nodes, &edges), feats),
            labels,
        ));
    }
    let refs: Vec<(&GraphData, &[(usize, bool)])> =
        samples.iter().map(|(d, l)| (d, l.as_slice())).collect();
    let cfg = TrainConfig {
        epochs: 20,
        ..TrainConfig::default()
    };
    let run = |threads: usize| {
        m3d_par::with_threads(threads, || {
            let mut model = NodeClassifier::new(2, 16, 1, 3);
            let loss = model.fit(&refs, 2.0, &cfg);
            (bits(&model.flat_params()), loss.to_bits())
        })
    };
    assert_eq!(run(1), run(8), "node model must train identically");
}
