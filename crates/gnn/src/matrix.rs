//! A small dense `f32` matrix for the GNN kernels.
//!
//! Row-major storage; sized for the workloads here (hundreds of rows,
//! tens of columns), so the kernels favour clarity over blocking.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense row-major matrix of `f32`.
///
/// # Examples
///
/// ```
/// use m3d_gnn::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization, deterministic in `seed`.
    pub fn xavier(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The flat row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// `self · other`.
    ///
    /// The kernel is `i`/`k`-outer with the `k` loop unrolled by 4, so the
    /// contiguous inner sweep over the output row autovectorizes and the
    /// four B rows are streamed per pass. Each output element still
    /// receives its `k` contributions in ascending order as four separate
    /// adds, so the result is **bitwise identical** to the naive
    /// triple-loop (the property tests below assert exactly that).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let n = other.cols;
        let mut out = Matrix::zeros(self.rows, n);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            let mut k = 0;
            while k + 4 <= self.cols {
                let (a0, a1, a2, a3) = (arow[k], arow[k + 1], arow[k + 2], arow[k + 3]);
                let b0 = &other.data[k * n..(k + 1) * n];
                let b1 = &other.data[(k + 1) * n..(k + 2) * n];
                let b2 = &other.data[(k + 2) * n..(k + 3) * n];
                let b3 = &other.data[(k + 3) * n..(k + 4) * n];
                for (j, o) in out_row.iter_mut().enumerate() {
                    // Four separate adds: keeps the naive accumulation
                    // association (bitwise reproducibility).
                    let mut v = *o;
                    v += a0 * b0[j];
                    v += a1 * b1[j];
                    v += a2 * b2[j];
                    v += a3 * b3[j];
                    *o = v;
                }
                k += 4;
            }
            while k < self.cols {
                let a = arow[k];
                let brow = &other.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(brow) {
                    *o += a * b;
                }
                k += 1;
            }
        }
        out
    }

    /// `selfᵀ · other` without materializing the transpose.
    ///
    /// Same unrolling scheme (and the same bitwise-equals-naive guarantee)
    /// as [`Matrix::matmul`], with the shared row dimension unrolled by 4.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let n = other.cols;
        let mut out = Matrix::zeros(self.cols, n);
        let mut r = 0;
        while r + 4 <= self.rows {
            for i in 0..self.cols {
                let (a0, a1, a2, a3) = (
                    self.data[r * self.cols + i],
                    self.data[(r + 1) * self.cols + i],
                    self.data[(r + 2) * self.cols + i],
                    self.data[(r + 3) * self.cols + i],
                );
                let b0 = &other.data[r * n..(r + 1) * n];
                let b1 = &other.data[(r + 1) * n..(r + 2) * n];
                let b2 = &other.data[(r + 2) * n..(r + 3) * n];
                let b3 = &other.data[(r + 3) * n..(r + 4) * n];
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let mut v = *o;
                    v += a0 * b0[j];
                    v += a1 * b1[j];
                    v += a2 * b2[j];
                    v += a3 * b3[j];
                    *o = v;
                }
            }
            r += 4;
        }
        while r < self.rows {
            let brow = &other.data[r * n..(r + 1) * n];
            for i in 0..self.cols {
                let a = self.data[r * self.cols + i];
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
            r += 1;
        }
        out
    }

    /// `self · otherᵀ`.
    ///
    /// Dot-product kernel with four output columns per pass: the four
    /// accumulators share each load of the A row and give the backend
    /// independent FMA chains. Every accumulator sums its `k` terms in
    /// ascending order, so the result is bitwise identical to the naive
    /// version.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut j = 0;
            while j + 4 <= other.rows {
                let b0 = other.row(j);
                let b1 = other.row(j + 1);
                let b2 = other.row(j + 2);
                let b3 = other.row(j + 3);
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for (k, &a) in arow.iter().enumerate() {
                    s0 += a * b0[k];
                    s1 += a * b1[k];
                    s2 += a * b2[k];
                    s3 += a * b3[k];
                }
                let orow = out.row_mut(i);
                orow[j] = s0;
                orow[j + 1] = s1;
                orow[j + 2] = s2;
                orow[j + 3] = s3;
                j += 4;
            }
            while j < other.rows {
                let brow = other.row(j);
                let mut s = 0.0f32;
                for (&a, &b) in arow.iter().zip(brow) {
                    s += a * b;
                }
                out[(i, j)] = s;
                j += 1;
            }
        }
        out
    }

    /// `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self *= s`.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sets every element to zero (reusing the allocation).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Column means (used by graph mean-pooling and PCA centering).
    pub fn col_means(&self) -> Vec<f32> {
        let mut means = vec![0.0f32; self.cols];
        for i in 0..self.rows {
            for (m, &v) in means.iter_mut().zip(self.row(i)) {
                *m += v;
            }
        }
        if self.rows > 0 {
            let inv = 1.0 / self.rows as f32;
            for m in &mut means {
                *m *= inv;
            }
        }
        means
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_against_hand_computed() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn transposed_products_agree_with_naive() {
        let a = Matrix::xavier(5, 3, 1);
        let b = Matrix::xavier(5, 4, 2);
        let t1 = a.t_matmul(&b);
        // naive Aᵀ B
        for i in 0..3 {
            for j in 0..4 {
                let want: f32 = (0..5).map(|r| a[(r, i)] * b[(r, j)]).sum();
                assert!((t1[(i, j)] - want).abs() < 1e-5);
            }
        }
        let c = Matrix::xavier(4, 3, 3);
        let t2 = a.matmul_t(&c); // 5×4
        for i in 0..5 {
            for j in 0..4 {
                let want: f32 = (0..3).map(|k| a[(i, k)] * c[(j, k)]).sum();
                assert!((t2[(i, j)] - want).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::xavier(4, 4, 9);
        let prod = a.matmul(&Matrix::eye(4));
        for (x, y) in prod.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn col_means_and_norm() {
        let a = Matrix::from_rows(&[&[1.0, 3.0], &[3.0, 5.0]]);
        assert_eq!(a.col_means(), vec![2.0, 4.0]);
        assert!((a.norm() - (1.0f32 + 9.0 + 9.0 + 25.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn xavier_is_deterministic_and_bounded() {
        let a = Matrix::xavier(10, 10, 5);
        assert_eq!(a, Matrix::xavier(10, 10, 5));
        let bound = (6.0f32 / 20.0).sqrt();
        assert!(a.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}

#[cfg(test)]
mod kernel_reference_tests {
    //! The unrolled kernels must be *bitwise* equal to naive triple-loop
    //! references: each output element accumulates its terms in the same
    //! ascending-k order, so no float tolerance is needed (and the GNN's
    //! bitwise thread-count determinism can rest on these kernels).

    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A random matrix with negatives and a sprinkling of exact zeros
    /// (zeros exercise what used to be a sparsity fast path).
    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| {
                if rng.gen_range(0..4usize) == 0 {
                    0.0
                } else {
                    rng.gen_range(-2.0f32..2.0)
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0f32;
                for k in 0..a.cols() {
                    s += a[(i, k)] * b[(k, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    fn naive_t_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.cols(), b.cols());
        for i in 0..a.cols() {
            for j in 0..b.cols() {
                let mut s = 0.0f32;
                for r in 0..a.rows() {
                    s += a[(r, i)] * b[(r, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    fn naive_matmul_t(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let mut s = 0.0f32;
                for k in 0..a.cols() {
                    s += a[(i, k)] * b[(j, k)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    fn assert_bitwise_eq(got: &Matrix, want: &Matrix, what: &str) {
        assert_eq!((got.rows(), got.cols()), (want.rows(), want.cols()));
        for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "{what}: element {i} differs ({g} vs {w})"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn unrolled_kernels_match_naive_bitwise(
            m in 1usize..18,
            k in 1usize..18,
            n in 1usize..18,
            seed in 0u64..1_000_000,
        ) {
            let a = random_matrix(m, k, seed);
            let b = random_matrix(k, n, seed.wrapping_add(1));
            assert_bitwise_eq(&a.matmul(&b), &naive_matmul(&a, &b), "matmul");

            let at = random_matrix(k, m, seed.wrapping_add(2));
            let bt = random_matrix(k, n, seed.wrapping_add(3));
            assert_bitwise_eq(&at.t_matmul(&bt), &naive_t_matmul(&at, &bt), "t_matmul");

            let c = random_matrix(n, k, seed.wrapping_add(4));
            assert_bitwise_eq(&a.matmul_t(&c), &naive_matmul_t(&a, &c), "matmul_t");
        }
    }
}
