//! A dense `f32` matrix for the GNN kernels.
//!
//! Row-major storage. The product kernels are cache-blocked and
//! register-tiled, and split their output rows into panels across the
//! `m3d-par` pool — while staying **bitwise identical** to the naive
//! triple-loop references ([`Matrix::matmul_naive`] and friends): every
//! output element accumulates its contributions in ascending inner-index
//! order as separate adds, so no float reassociation ever happens and the
//! result is the same at any thread count, tile size or block size.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Register-tile height (output rows held live per inner loop).
const MR: usize = 4;
/// Register-tile width (output columns held live per inner loop).
const NR: usize = 8;
/// Cache-block depth: the shared dimension is walked in panels of this
/// many rows so the streamed operand panel stays hot across a row tile.
const KB: usize = 128;
/// Outputs with fewer rows than this stay on the serial path: panel
/// buffers and their reassembly cost more than they save.
const PAR_MIN_ROWS: usize = 64;
/// Outputs at most this wide skip the register-tile grid for a full-row
/// kernel: a whole output row fits in registers anyway, and the tile
/// load/store bookkeeping costs more than it saves. This covers the GNN
/// training shapes (hidden width ≤ 16), where the full-row kernel
/// measures ~2× faster than the tiled one.
pub(crate) const NARROW_N: usize = 2 * NR;

/// A dense row-major matrix of `f32`.
///
/// # Examples
///
/// ```
/// use m3d_gnn::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization, deterministic in `seed`.
    pub fn xavier(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The flat row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// `self · other`.
    ///
    /// Cache-blocked (`KB`-deep panels of B), register-tiled (`MR × NR`
    /// accumulator tiles) and row-panel-parallel: disjoint ranges of
    /// output rows are computed on the `m3d-par` pool and reassembled in
    /// order. Each output element receives its `k` contributions in
    /// ascending order as separate adds, so the result is **bitwise
    /// identical** to [`Matrix::matmul_naive`] at any thread count (the
    /// property tests assert exactly that).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let n = other.cols;
        let work = (self.rows * n * self.cols) as u64;
        Self::build_rows(self.rows, n, work, |rows, out| {
            matmul_panel(&self.data, self.cols, &other.data, n, rows, out);
        })
    }

    /// `selfᵀ · other` without materializing the transpose.
    ///
    /// Blocked over the shared row dimension, register-tiled, and
    /// parallel over panels of *output* rows (columns of `self`); bitwise
    /// identical to [`Matrix::t_matmul_naive`].
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let n = other.cols;
        let work = (self.cols * n * self.rows) as u64;
        Self::build_rows(self.cols, n, work, |rows, out| {
            t_matmul_panel(&self.data, self.rows, self.cols, &other.data, n, rows, out);
        })
    }

    /// `self · otherᵀ`.
    ///
    /// Dot-product kernel over `MR × NR` accumulator tiles with the shared
    /// dimension cache-blocked; parallel over output-row panels; bitwise
    /// identical to [`Matrix::matmul_t_naive`].
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let work = (self.rows * other.rows * self.cols) as u64;
        Self::build_rows(self.rows, other.rows, work, |rows, out| {
            matmul_t_panel(&self.data, self.cols, &other.data, other.rows, rows, out);
        })
    }

    /// Reference `self · other`: the naive triple loop, each element
    /// summed in ascending `k` order. The blocked kernel
    /// [`Matrix::matmul`] is proptest-proven bitwise equal to this.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for j in 0..other.cols {
                let mut s = 0.0f32;
                for k in 0..self.cols {
                    s += self[(i, k)] * other[(k, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    /// Reference `selfᵀ · other` (ascending shared-row order); see
    /// [`Matrix::matmul_naive`].
    pub fn t_matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for i in 0..self.cols {
            for j in 0..other.cols {
                let mut s = 0.0f32;
                for r in 0..self.rows {
                    s += self[(r, i)] * other[(r, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    /// Reference `self · otherᵀ` (ascending `k` order); see
    /// [`Matrix::matmul_naive`].
    pub fn matmul_t_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            for j in 0..other.rows {
                let mut s = 0.0f32;
                for k in 0..self.cols {
                    s += self[(i, k)] * other[(j, k)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    /// Builds a `rows × cols` matrix by running `f` over disjoint
    /// output-row panels — serially when the pool is width 1, the output
    /// is small, or the estimated `work` (in element-units ≈ one float
    /// multiply-add each) is below the [`m3d_par::par_gate`] break-even —
    /// otherwise on the pool with the panels reassembled in range order.
    /// `f(range, out)` must fill `out` (zeroed, `range.len() * cols`
    /// long) with rows `range` of the result; since every row is computed
    /// identically regardless of which panel it lands in, the output is
    /// bitwise identical at any thread count *and* either side of the
    /// cost gate.
    pub(crate) fn build_rows(
        rows: usize,
        cols: usize,
        work: u64,
        f: impl Fn(Range<usize>, &mut [f32]) + Sync,
    ) -> Matrix {
        let mut out = Matrix::zeros(rows, cols);
        if m3d_par::num_threads() <= 1 || rows < PAR_MIN_ROWS || m3d_par::par_gate(work) <= 1 {
            f(0..rows, &mut out.data);
            return out;
        }
        let panels = m3d_par::par_ranges(rows, |r| {
            let mut buf = vec![0.0f32; r.len() * cols];
            f(r.clone(), &mut buf);
            buf
        });
        let mut off = 0;
        for p in panels {
            out.data[off..off + p.len()].copy_from_slice(&p);
            off += p.len();
        }
        out
    }

    /// `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self *= s`.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sets every element to zero (reusing the allocation).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Column means (used by graph mean-pooling and PCA centering).
    pub fn col_means(&self) -> Vec<f32> {
        let mut means = vec![0.0f32; self.cols];
        for i in 0..self.rows {
            for (m, &v) in means.iter_mut().zip(self.row(i)) {
                *m += v;
            }
        }
        if self.rows > 0 {
            let inv = 1.0 / self.rows as f32;
            for m in &mut means {
                *m *= inv;
            }
        }
        means
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

/// True CSR sparse × dense product: `out[i][j] = Σ_{nz ∈ row i} v(nz) ·
/// b[indices[nz]][j]` with the nonzeros of each row walked in ascending
/// order. `vals: None` means unit values, accumulated as **pure adds**
/// (no multiply), which is what makes this kernel bitwise equal to the
/// add-only mean-aggregation inner loop; `vals: Some(v)` scales each
/// nonzero's contribution (one value per nonzero, aligned with
/// `indices`).
///
/// The kernel walks each row's nonzeros in `KB`-sized panels with
/// `NR`-wide register tiles over the dense columns and the nonzero walk
/// unrolled by four; every output element still receives its
/// contributions in ascending nonzero order as separate adds, so the
/// result is bitwise identical to [`spmm_naive`] for any panel or tile
/// size — and at any thread count (output-row panels fan out via the
/// pool).
///
/// # Panics
///
/// Panics if `offsets` is empty, its last entry doesn't cover `indices`,
/// `vals` (when present) isn't nonzero-aligned, or a column index is out
/// of range for `b`.
pub fn spmm(offsets: &[u32], indices: &[u32], vals: Option<&[f32]>, b: &Matrix) -> Matrix {
    assert!(!offsets.is_empty(), "offsets must have rows + 1 entries");
    assert_eq!(
        *offsets.last().expect("nonempty") as usize,
        indices.len(),
        "offsets must cover indices"
    );
    if let Some(v) = vals {
        assert_eq!(v.len(), indices.len(), "one value per nonzero");
    }
    let rows = offsets.len() - 1;
    let n = b.cols();
    let work = indices.len() as u64 * n as u64;
    Matrix::build_rows(rows, n, work, |r, out| {
        spmm_panel(offsets, indices, vals, b.data(), n, r, out);
    })
}

/// Reference CSR sparse × dense product: plain per-row nonzero walk in
/// ascending order, pure adds when `vals` is `None`. [`spmm`] is
/// proptest-proven bitwise equal to this at any thread count.
pub fn spmm_naive(offsets: &[u32], indices: &[u32], vals: Option<&[f32]>, b: &Matrix) -> Matrix {
    assert!(!offsets.is_empty(), "offsets must have rows + 1 entries");
    assert_eq!(
        *offsets.last().expect("nonempty") as usize,
        indices.len(),
        "offsets must cover indices"
    );
    let rows = offsets.len() - 1;
    let n = b.cols();
    let mut out = Matrix::zeros(rows, n);
    for i in 0..rows {
        let row = out.row_mut(i);
        for nz in offsets[i] as usize..offsets[i + 1] as usize {
            let brow = b.row(indices[nz] as usize);
            match vals {
                Some(v) => {
                    let s = v[nz];
                    for (o, &x) in row.iter_mut().zip(brow) {
                        *o += s * x;
                    }
                }
                None => {
                    for (o, &x) in row.iter_mut().zip(brow) {
                        *o += x;
                    }
                }
            }
        }
    }
    out
}

/// Rows `rows` of the CSR sparse × dense product into `out` (`out` is the
/// zeroed panel buffer, `rows.len() * n` long). `offsets` index
/// absolutely into `indices`/`vals`; column indices address rows of the
/// dense operand `b` (row-major, `n` wide). Shared by [`spmm`] and the
/// partitioned aggregation (which passes a *local* CSR over a gathered
/// scratch as `b`).
pub(crate) fn spmm_panel(
    offsets: &[u32],
    indices: &[u32],
    vals: Option<&[f32]>,
    b: &[f32],
    n: usize,
    rows: Range<usize>,
    out: &mut [f32],
) {
    if n == 0 {
        return;
    }
    if n <= NARROW_N {
        // Full-row kernel: the whole output row stays hot, one ascending
        // pass over the nonzeros.
        for i in rows.clone() {
            let o0 = (i - rows.start) * n;
            let orow = &mut out[o0..o0 + n];
            for nz in offsets[i] as usize..offsets[i + 1] as usize {
                let brow = &b[indices[nz] as usize * n..][..n];
                match vals {
                    Some(v) => {
                        let s = v[nz];
                        for (o, &x) in orow.iter_mut().zip(brow) {
                            *o += s * x;
                        }
                    }
                    None => {
                        for (o, &x) in orow.iter_mut().zip(brow) {
                            *o += x;
                        }
                    }
                }
            }
        }
        return;
    }
    // Wide outputs: per row, KB-sized nonzero panels; per panel, NR-wide
    // register tiles over the dense columns with the nonzero walk
    // unrolled by four. The panel keeps the ≤KB gathered `b` rows hot
    // across the column tiles; the register tile keeps the accumulators
    // out of memory across the nonzero walk. Ascending-nonzero order per
    // element is preserved by construction (panels ascend, the unroll
    // adds in order).
    for i in rows.clone() {
        let o0 = (i - rows.start) * n;
        let (s, e) = (offsets[i] as usize, offsets[i + 1] as usize);
        let mut p0 = s;
        while p0 < e {
            let p1 = (p0 + KB).min(e);
            let mut j = 0;
            while j < n {
                let nw = NR.min(n - j);
                let mut acc = [0.0f32; NR];
                acc[..nw].copy_from_slice(&out[o0 + j..o0 + j + nw]);
                let mut nz = p0;
                while nz + 4 <= p1 {
                    let b0 = &b[indices[nz] as usize * n + j..][..nw];
                    let b1 = &b[indices[nz + 1] as usize * n + j..][..nw];
                    let b2 = &b[indices[nz + 2] as usize * n + j..][..nw];
                    let b3 = &b[indices[nz + 3] as usize * n + j..][..nw];
                    match vals {
                        Some(v) => {
                            let (v0, v1, v2, v3) = (v[nz], v[nz + 1], v[nz + 2], v[nz + 3]);
                            for l in 0..nw {
                                let mut a = acc[l];
                                a += v0 * b0[l];
                                a += v1 * b1[l];
                                a += v2 * b2[l];
                                a += v3 * b3[l];
                                acc[l] = a;
                            }
                        }
                        None => {
                            for l in 0..nw {
                                let mut a = acc[l];
                                a += b0[l];
                                a += b1[l];
                                a += b2[l];
                                a += b3[l];
                                acc[l] = a;
                            }
                        }
                    }
                    nz += 4;
                }
                while nz < p1 {
                    let brow = &b[indices[nz] as usize * n + j..][..nw];
                    match vals {
                        Some(v) => {
                            let s = v[nz];
                            for (a, &x) in acc[..nw].iter_mut().zip(brow) {
                                *a += s * x;
                            }
                        }
                        None => {
                            for (a, &x) in acc[..nw].iter_mut().zip(brow) {
                                *a += x;
                            }
                        }
                    }
                    nz += 1;
                }
                out[o0 + j..o0 + j + nw].copy_from_slice(&acc[..nw]);
                j += nw;
            }
            p0 = p1;
        }
    }
}

/// Shared blocked driver for the `A·B`-shaped kernels:
/// `out[i][j] += Σ_k av(k, i) · b[k·n + j]`, with `k` walked in ascending
/// order through `KB`-deep cache blocks and an `MR × NR` register-tile
/// grid over the output panel. Because every output element sees its `k`
/// contributions in ascending order as separate adds, the result is
/// bitwise identical to the naive triple loop for any `KB`/`MR`/`NR`.
fn panel_driver(
    kd: usize,
    b: &[f32],
    n: usize,
    rows: Range<usize>,
    out: &mut [f32],
    av: impl Fn(usize, usize) -> f32,
) {
    if n == 0 {
        return;
    }
    for k0 in (0..kd).step_by(KB) {
        let kend = (k0 + KB).min(kd);
        let mut i = rows.start;
        while i < rows.end {
            let mh = MR.min(rows.end - i);
            let o0 = (i - rows.start) * n;
            let mut j = 0;
            while j < n {
                let nw = NR.min(n - j);
                let mut acc = [[0.0f32; NR]; MR];
                for (mi, accr) in acc.iter_mut().enumerate().take(mh) {
                    let base = o0 + mi * n + j;
                    accr[..nw].copy_from_slice(&out[base..base + nw]);
                }
                for k in k0..kend {
                    let brow = &b[k * n + j..k * n + j + nw];
                    for (mi, accr) in acc.iter_mut().enumerate().take(mh) {
                        let v = av(k, i + mi);
                        for (s, &bv) in accr[..nw].iter_mut().zip(brow) {
                            *s += v * bv;
                        }
                    }
                }
                for (mi, accr) in acc.iter().enumerate().take(mh) {
                    let base = o0 + mi * n + j;
                    out[base..base + nw].copy_from_slice(&accr[..nw]);
                }
                j += nw;
            }
            i += mh;
        }
    }
}

/// Rows `rows` of `A·B` into `out` (`A` is `? × kd`, `B` is `kd × n`).
fn matmul_panel(a: &[f32], kd: usize, b: &[f32], n: usize, rows: Range<usize>, out: &mut [f32]) {
    if n <= NARROW_N {
        // Full-row kernel, `k` unrolled by four: each output element still
        // receives its `k` contributions in ascending order as separate
        // adds, so this stays bitwise equal to the naive reference.
        for i in rows.clone() {
            let arow = &a[i * kd..(i + 1) * kd];
            let o0 = (i - rows.start) * n;
            let orow = &mut out[o0..o0 + n];
            let mut k = 0;
            while k + 4 <= kd {
                let (a0, a1, a2, a3) = (arow[k], arow[k + 1], arow[k + 2], arow[k + 3]);
                let b0 = &b[k * n..(k + 1) * n];
                let b1 = &b[(k + 1) * n..(k + 2) * n];
                let b2 = &b[(k + 2) * n..(k + 3) * n];
                let b3 = &b[(k + 3) * n..(k + 4) * n];
                for (j, o) in orow.iter_mut().enumerate() {
                    let mut v = *o;
                    v += a0 * b0[j];
                    v += a1 * b1[j];
                    v += a2 * b2[j];
                    v += a3 * b3[j];
                    *o = v;
                }
                k += 4;
            }
            while k < kd {
                let av = arow[k];
                let brow = &b[k * n..(k + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
                k += 1;
            }
        }
        return;
    }
    panel_driver(kd, b, n, rows, out, |k, i| a[i * kd + k]);
}

/// Rows `rows` of `Aᵀ·B` into `out` (`A` is `ar × ac`, `B` is `ar × n`;
/// output rows index columns of `A`).
fn t_matmul_panel(
    a: &[f32],
    ar: usize,
    ac: usize,
    b: &[f32],
    n: usize,
    rows: Range<usize>,
    out: &mut [f32],
) {
    if (MR..=NARROW_N).contains(&n) {
        // Shared-row-outer accumulation: for each row `r` of the operands,
        // scatter `a[r][i] · b[r][·]` into every output row of the panel.
        // Each output element receives its contributions in ascending `r`
        // order as separate adds — bitwise equal to the naive reference —
        // and the panel (at most `rows.len() × NARROW_N` floats, i.e. the
        // weight-gradient shape in training) stays cache-hot across `r`.
        for r in 0..ar {
            let brow = &b[r * n..(r + 1) * n];
            let arow = &a[r * ac..(r + 1) * ac];
            for i in rows.clone() {
                let av = arow[i];
                let o0 = (i - rows.start) * n;
                for (o, &bv) in out[o0..o0 + n].iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        return;
    }
    panel_driver(ar, b, n, rows, out, |r, i| a[r * ac + i]);
}

/// Rows `rows` of `A·Bᵀ` into `out` (`A` is `? × kd`, `B` is `bn × kd`).
/// Both operands stream stride-1 over the `KB`-blocked shared dimension;
/// the `MR × NR` tile keeps the touched `A`/`B` rows hot across the tile.
fn matmul_t_panel(a: &[f32], kd: usize, b: &[f32], bn: usize, rows: Range<usize>, out: &mut [f32]) {
    if bn == 0 {
        return;
    }
    if bn <= NARROW_N {
        // Four independent dot-product accumulators per step: each is a
        // single ascending-`k` chain (bitwise equal to the naive
        // reference), and the four chains give the ILP the one-element-
        // at-a-time tile loop lacks at narrow widths.
        for i in rows.clone() {
            let arow = &a[i * kd..(i + 1) * kd];
            let o0 = (i - rows.start) * bn;
            let mut j = 0;
            while j + 4 <= bn {
                let b0 = &b[j * kd..(j + 1) * kd];
                let b1 = &b[(j + 1) * kd..(j + 2) * kd];
                let b2 = &b[(j + 2) * kd..(j + 3) * kd];
                let b3 = &b[(j + 3) * kd..(j + 4) * kd];
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for (k, &av) in arow.iter().enumerate() {
                    s0 += av * b0[k];
                    s1 += av * b1[k];
                    s2 += av * b2[k];
                    s3 += av * b3[k];
                }
                out[o0 + j] = s0;
                out[o0 + j + 1] = s1;
                out[o0 + j + 2] = s2;
                out[o0 + j + 3] = s3;
                j += 4;
            }
            while j < bn {
                let brow = &b[j * kd..(j + 1) * kd];
                let mut s = 0.0f32;
                for (&x, &y) in arow.iter().zip(brow) {
                    s += x * y;
                }
                out[o0 + j] = s;
                j += 1;
            }
        }
        return;
    }
    for k0 in (0..kd).step_by(KB) {
        let kend = (k0 + KB).min(kd);
        let mut i = rows.start;
        while i < rows.end {
            let mh = MR.min(rows.end - i);
            let o0 = (i - rows.start) * bn;
            let mut j = 0;
            while j < bn {
                let nw = NR.min(bn - j);
                for mi in 0..mh {
                    let arow = &a[(i + mi) * kd + k0..(i + mi) * kd + kend];
                    let orow = &mut out[o0 + mi * bn + j..o0 + mi * bn + j + nw];
                    for (nj, o) in orow.iter_mut().enumerate() {
                        let brow = &b[(j + nj) * kd + k0..(j + nj) * kd + kend];
                        let mut s = *o;
                        for (&x, &y) in arow.iter().zip(brow) {
                            s += x * y;
                        }
                        *o = s;
                    }
                }
                j += nw;
            }
            i += mh;
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_against_hand_computed() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn transposed_products_agree_with_naive() {
        let a = Matrix::xavier(5, 3, 1);
        let b = Matrix::xavier(5, 4, 2);
        let t1 = a.t_matmul(&b);
        // naive Aᵀ B
        for i in 0..3 {
            for j in 0..4 {
                let want: f32 = (0..5).map(|r| a[(r, i)] * b[(r, j)]).sum();
                assert!((t1[(i, j)] - want).abs() < 1e-5);
            }
        }
        let c = Matrix::xavier(4, 3, 3);
        let t2 = a.matmul_t(&c); // 5×4
        for i in 0..5 {
            for j in 0..4 {
                let want: f32 = (0..3).map(|k| a[(i, k)] * c[(j, k)]).sum();
                assert!((t2[(i, j)] - want).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::xavier(4, 4, 9);
        let prod = a.matmul(&Matrix::eye(4));
        for (x, y) in prod.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn col_means_and_norm() {
        let a = Matrix::from_rows(&[&[1.0, 3.0], &[3.0, 5.0]]);
        assert_eq!(a.col_means(), vec![2.0, 4.0]);
        assert!((a.norm() - (1.0f32 + 9.0 + 9.0 + 25.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn xavier_is_deterministic_and_bounded() {
        let a = Matrix::xavier(10, 10, 5);
        assert_eq!(a, Matrix::xavier(10, 10, 5));
        let bound = (6.0f32 / 20.0).sqrt();
        assert!(a.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}

#[cfg(test)]
mod kernel_reference_tests {
    //! The blocked kernels must be *bitwise* equal to the retained naive
    //! triple-loop references: each output element accumulates its terms
    //! in the same ascending-k order, so no float tolerance is needed (and
    //! the GNN's bitwise thread-count determinism can rest on these
    //! kernels). The 1-vs-N-thread sweep over edge shapes lives in
    //! `tests/kernel_equiv.rs`.

    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A random matrix with negatives and a sprinkling of exact zeros
    /// (zeros exercise what used to be a sparsity fast path).
    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| {
                if rng.gen_range(0..4usize) == 0 {
                    0.0
                } else {
                    rng.gen_range(-2.0f32..2.0)
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    fn assert_bitwise_eq(got: &Matrix, want: &Matrix, what: &str) {
        assert_eq!((got.rows(), got.cols()), (want.rows(), want.cols()));
        for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "{what}: element {i} differs ({g} vs {w})"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn blocked_kernels_match_naive_bitwise(
            m in 1usize..18,
            k in 1usize..18,
            n in 1usize..18,
            seed in 0u64..1_000_000,
        ) {
            let a = random_matrix(m, k, seed);
            let b = random_matrix(k, n, seed.wrapping_add(1));
            assert_bitwise_eq(&a.matmul(&b), &a.matmul_naive(&b), "matmul");

            let at = random_matrix(k, m, seed.wrapping_add(2));
            let bt = random_matrix(k, n, seed.wrapping_add(3));
            assert_bitwise_eq(&at.t_matmul(&bt), &at.t_matmul_naive(&bt), "t_matmul");

            let c = random_matrix(n, k, seed.wrapping_add(4));
            assert_bitwise_eq(&a.matmul_t(&c), &a.matmul_t_naive(&c), "matmul_t");
        }
    }

    /// A random CSR: per row, a sorted, deduped set of column indices
    /// into `n_cols` rows of the dense operand.
    fn random_csr(rows: usize, n_cols: usize, avg_nnz: usize, seed: u64) -> (Vec<u32>, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut offsets = vec![0u32];
        let mut indices = Vec::new();
        for _ in 0..rows {
            let k = rng.gen_range(0..=2 * avg_nnz).min(n_cols);
            let mut row: Vec<u32> = (0..k).map(|_| rng.gen_range(0..n_cols as u32)).collect();
            row.sort_unstable();
            row.dedup();
            indices.extend_from_slice(&row);
            offsets.push(indices.len() as u32);
        }
        (offsets, indices)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The tiled SpMM must be bitwise equal to the naive nonzero walk
        /// for unit and scaled values, across the narrow/wide column
        /// boundary and nonzero counts straddling the KB panel.
        #[test]
        fn spmm_matches_naive_bitwise(
            rows in 1usize..40,
            bcols in 1usize..40,
            brows in 1usize..60,
            avg_nnz in 0usize..40,
            seed in 0u64..1_000_000,
        ) {
            let (offsets, indices) = random_csr(rows, brows, avg_nnz, seed);
            let b = random_matrix(brows, bcols, seed.wrapping_add(5));
            let got = spmm(&offsets, &indices, None, &b);
            assert_bitwise_eq(&got, &spmm_naive(&offsets, &indices, None, &b), "spmm unit");
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(6));
            let vals: Vec<f32> = (0..indices.len())
                .map(|_| rng.gen_range(-1.5f32..1.5))
                .collect();
            let gotv = spmm(&offsets, &indices, Some(&vals), &b);
            assert_bitwise_eq(
                &gotv,
                &spmm_naive(&offsets, &indices, Some(&vals), &b),
                "spmm scaled",
            );
        }
    }

    /// Rows with more nonzeros than one KB panel, plus empty rows, at the
    /// exact NARROW_N boundary and just past it.
    #[test]
    fn spmm_panel_boundaries_match_naive_bitwise() {
        let brows = 3 * KB + 7;
        for &bcols in &[NARROW_N, NARROW_N + 1, 4 * NR + 3] {
            let b = random_matrix(brows, bcols, 77);
            // Row 0: every b row (multi-panel). Row 1: empty. Row 2: one.
            let mut indices: Vec<u32> = (0..brows as u32).collect();
            indices.push(5);
            let offsets = vec![0u32, brows as u32, brows as u32, brows as u32 + 1];
            let got = spmm(&offsets, &indices, None, &b);
            assert_bitwise_eq(&got, &spmm_naive(&offsets, &indices, None, &b), "spmm");
            let vals: Vec<f32> = (0..indices.len()).map(|i| 0.25 + (i % 7) as f32).collect();
            let gotv = spmm(&offsets, &indices, Some(&vals), &b);
            assert_bitwise_eq(
                &gotv,
                &spmm_naive(&offsets, &indices, Some(&vals), &b),
                "spmm scaled",
            );
        }
    }

    /// Shapes chosen to straddle the tile and block boundaries (`MR`,
    /// `NR`, `KB`) and the parallel row threshold.
    #[test]
    fn boundary_shapes_match_naive_bitwise() {
        let shapes = [
            (1, 1, 1),
            (MR, NR, KB),
            (MR + 1, NR + 1, KB + 1),
            (MR - 1, NR - 1, KB - 1),
            (PAR_MIN_ROWS + 3, 5, 7),
            (2 * MR + 3, 2 * NR + 5, 2 * KB + 9),
        ];
        for (si, &(m, n, k)) in shapes.iter().enumerate() {
            let a = random_matrix(m, k, si as u64 * 10 + 1);
            let b = random_matrix(k, n, si as u64 * 10 + 2);
            assert_bitwise_eq(&a.matmul(&b), &a.matmul_naive(&b), "matmul");
            let at = random_matrix(k, m, si as u64 * 10 + 3);
            assert_bitwise_eq(&at.t_matmul(&b), &at.t_matmul_naive(&b), "t_matmul");
            let c = random_matrix(n, k, si as u64 * 10 + 4);
            assert_bitwise_eq(&a.matmul_t(&c), &a.matmul_t_naive(&c), "matmul_t");
        }
    }
}
