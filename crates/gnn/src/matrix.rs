//! A small dense `f32` matrix for the GNN kernels.
//!
//! Row-major storage; sized for the workloads here (hundreds of rows,
//! tens of columns), so the kernels favour clarity over blocking.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense row-major matrix of `f32`.
///
/// # Examples
///
/// ```
/// use m3d_gnn::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization, deterministic in `seed`.
    pub fn xavier(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The flat row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let arow = self.row(r);
            let brow = other.row(r);
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ`.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..other.rows {
                let brow = other.row(j);
                out[(i, j)] = arow.iter().zip(brow).map(|(&a, &b)| a * b).sum();
            }
        }
        out
    }

    /// `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self *= s`.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sets every element to zero (reusing the allocation).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Column means (used by graph mean-pooling and PCA centering).
    pub fn col_means(&self) -> Vec<f32> {
        let mut means = vec![0.0f32; self.cols];
        for i in 0..self.rows {
            for (m, &v) in means.iter_mut().zip(self.row(i)) {
                *m += v;
            }
        }
        if self.rows > 0 {
            let inv = 1.0 / self.rows as f32;
            for m in &mut means {
                *m *= inv;
            }
        }
        means
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_against_hand_computed() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn transposed_products_agree_with_naive() {
        let a = Matrix::xavier(5, 3, 1);
        let b = Matrix::xavier(5, 4, 2);
        let t1 = a.t_matmul(&b);
        // naive Aᵀ B
        for i in 0..3 {
            for j in 0..4 {
                let want: f32 = (0..5).map(|r| a[(r, i)] * b[(r, j)]).sum();
                assert!((t1[(i, j)] - want).abs() < 1e-5);
            }
        }
        let c = Matrix::xavier(4, 3, 3);
        let t2 = a.matmul_t(&c); // 5×4
        for i in 0..5 {
            for j in 0..4 {
                let want: f32 = (0..3).map(|k| a[(i, k)] * c[(j, k)]).sum();
                assert!((t2[(i, j)] - want).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::xavier(4, 4, 9);
        let prod = a.matmul(&Matrix::eye(4));
        for (x, y) in prod.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn col_means_and_norm() {
        let a = Matrix::from_rows(&[&[1.0, 3.0], &[3.0, 5.0]]);
        assert_eq!(a.col_means(), vec![2.0, 4.0]);
        assert!((a.norm() - (1.0f32 + 9.0 + 9.0 + 25.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn xavier_is_deterministic_and_bounded() {
        let a = Matrix::xavier(10, 10, 5);
        assert_eq!(a, Matrix::xavier(10, 10, 5));
        let bound = (6.0f32 / 20.0).sqrt();
        assert!(a.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
