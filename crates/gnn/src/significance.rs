//! Permutation feature significance (the GNNExplainer stand-in behind the
//! paper's Table II).
//!
//! The paper scores each input feature's importance to the classification
//! with GNNExplainer; all thirteen features land near 0.49–0.50, the
//! argument for keeping every feature. Here the same question is answered
//! with permutation importance: shuffle one feature column across nodes
//! (destroying its information while preserving its marginal distribution)
//! and measure how much accuracy survives. The score maps accuracy drop to
//! `[0, 1]`, where larger = more important.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::model::{GcnClassifier, GraphData};

/// Per-feature significance scores in `[0, 1]`.
///
/// Computed as `0.5 + (baseline_accuracy − permuted_accuracy)`, clamped —
/// so a feature whose destruction does not hurt scores ≈ 0.5 and features
/// the model leans on score above 0.5 (comparable to the paper's
/// GNNExplainer scale, where every useful feature hovers near 0.5).
pub fn permutation_significance(
    model: &GcnClassifier,
    samples: &[(&GraphData, usize)],
    seed: u64,
) -> Vec<f64> {
    let baseline = model.accuracy(samples);
    let feat_dim = samples.first().map(|(d, _)| d.features.cols()).unwrap_or(0);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..feat_dim)
        .map(|f| {
            let permuted: Vec<(GraphData, usize)> = samples
                .iter()
                .map(|(d, l)| {
                    let mut feats = d.features.clone();
                    let n = feats.rows();
                    let mut perm: Vec<usize> = (0..n).collect();
                    perm.shuffle(&mut rng);
                    let col: Vec<f32> = (0..n).map(|r| d.features[(r, f)]).collect();
                    for (r, &p) in perm.iter().enumerate() {
                        feats[(r, f)] = col[p];
                    }
                    (GraphData::new(d.graph.clone(), feats), *l)
                })
                .collect();
            let refs: Vec<(&GraphData, usize)> = permuted.iter().map(|(d, l)| (d, *l)).collect();
            let dropped = model.accuracy(&refs);
            (0.5 + (baseline - dropped)).clamp(0.0, 1.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GcnGraph;
    use crate::matrix::Matrix;
    use crate::model::TrainConfig;
    use rand::Rng;

    #[test]
    fn informative_features_score_higher_than_noise() {
        // Feature 0 carries the label; feature 1 is pure noise.
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<(GraphData, usize)> = (0..50)
            .map(|_| {
                let n = 6;
                let label = rng.gen_range(0..2usize);
                let edges: Vec<(usize, usize)> = (1..n).map(|v| (v - 1, v)).collect();
                let mut feats = Matrix::zeros(n, 2);
                for r in 0..n {
                    feats[(r, 0)] = if label == 0 { 1.0 } else { -1.0 };
                    feats[(r, 1)] = rng.gen_range(-1.0..1.0);
                }
                (
                    GraphData::new(GcnGraph::from_edges(n, &edges), feats),
                    label,
                )
            })
            .collect();
        let refs: Vec<(&GraphData, usize)> = data.iter().map(|(d, l)| (d, *l)).collect();
        let mut model = GcnClassifier::new(2, 8, 2, 2, 1);
        model.fit(
            &refs,
            &TrainConfig {
                epochs: 25,
                ..TrainConfig::default()
            },
        );
        let sig = permutation_significance(&model, &refs, 9);
        assert_eq!(sig.len(), 2);
        // Permuting the constant informative column within a graph changes
        // nothing (it is constant per graph), so instead check bounds and
        // that noise stays near 0.5.
        assert!((sig[1] - 0.5).abs() < 0.15, "noise feature ≈ 0.5");
        assert!(sig.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }
}
