//! Cache-resident row partitioning of CSR adjacency.
//!
//! At paper scale (98K–338K nodes) a feature matrix is megabytes: the
//! aggregation kernels stream every neighbour row from DRAM because the
//! working set long since fell out of L2. The partitioner splits the CSR
//! rows into contiguous ranges sized so that each range's *touched*
//! source rows — the distinct feature rows its nonzeros read — fit a
//! configurable L2 budget (default 256 KiB). The aggregation kernels
//! then gather each partition's touched rows into a dense scratch once
//! and accumulate from the scratch, so every feature value is pulled
//! from DRAM once per partition instead of once per edge.
//!
//! The plan is **deterministic**: a pure function of the CSR, the
//! feature width, and the byte budget — never of the thread count or of
//! timing — so partition-parallel aggregation keeps the workspace's
//! bitwise thread-count-invariance contract. Local indices are assigned
//! in ascending global order, which preserves the ascending-neighbour
//! accumulation order the bitwise proofs rest on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Default per-partition gather budget in bytes: one partition's touched
/// feature rows should fit a typical per-core L2 slice.
pub const DEFAULT_PARTITION_BUDGET: usize = 256 * 1024;

/// Process-wide budget override set by [`set_partition_budget`]
/// (0 = unset, fall back to the environment / default).
static BUDGET: AtomicUsize = AtomicUsize::new(0);

fn env_budget() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("M3D_PARTITION_BUDGET")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&b| b > 0)
            .unwrap_or(DEFAULT_PARTITION_BUDGET)
    })
}

/// The gather budget (bytes) the aggregation kernels plan against:
/// [`set_partition_budget`] if called, else `M3D_PARTITION_BUDGET`
/// (parsed once per process), else [`DEFAULT_PARTITION_BUDGET`].
pub fn partition_budget() -> usize {
    let b = BUDGET.load(Ordering::Relaxed);
    if b > 0 {
        b
    } else {
        env_budget()
    }
}

/// Sets the process-wide gather budget in bytes (`0` resets to the
/// environment / default). The budget only moves partition boundaries —
/// every budget produces bitwise-identical aggregation results — so it
/// is a pure performance knob (`bench_pipeline --partition-budget`).
pub fn set_partition_budget(bytes: usize) {
    BUDGET.store(bytes, Ordering::Relaxed);
}

/// One partition: a contiguous row range, the sorted distinct source
/// rows its nonzeros touch, and the row range's CSR rebased onto local
/// (gather-position) indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Part {
    pub row_start: u32,
    pub row_end: u32,
    /// Sorted distinct source rows to copy into the dense scratch.
    pub gather: Vec<u32>,
    /// Local CSR offsets for rows `row_start..row_end`, rebased to 0.
    pub offsets: Vec<u32>,
    /// Nonzero column indices remapped to positions in `gather`. Because
    /// `gather` is sorted, local order equals global order within every
    /// row — the accumulation order the bitwise proofs require.
    pub indices: Vec<u32>,
}

/// A deterministic partition plan for one CSR at one feature width.
///
/// Built by [`GraphPartition::plan`]; consumed by the partitioned
/// aggregation kernels (`GcnGraph::aggregate` switches to them when the
/// feature matrix overflows the budget). The plan is a function of
/// `(offsets, indices, cols, budget_bytes)` only.
///
/// # Examples
///
/// ```
/// use m3d_gnn::GraphPartition;
///
/// // Two rows each touching sources {0, 1}; a budget of one 4-col row
/// // forces one partition per row.
/// let offsets = [0u32, 2, 4];
/// let indices = [0u32, 1, 0, 1];
/// let plan = GraphPartition::plan(&offsets, &indices, 2, 4, 16);
/// assert_eq!(plan.len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphPartition {
    cols: usize,
    budget_bytes: usize,
    n_rows: usize,
    pub(crate) parts: Vec<Part>,
}

impl GraphPartition {
    /// Plans row partitions for the CSR `(offsets, indices)` whose
    /// column indices address `n_sources` source rows, such that each
    /// partition's distinct touched source rows occupy at most
    /// `budget_bytes` at `cols` `f32` columns per row (a single row
    /// whose own fan-in exceeds the budget becomes its own partition).
    ///
    /// Greedy ascending-row sweep with an epoch-stamped touch counter:
    /// `O(nnz)` time, `O(n_sources)` scratch, and — crucially — a pure
    /// function of its arguments.
    ///
    /// # Panics
    ///
    /// Panics if `cols` is zero, `offsets` is empty or doesn't cover
    /// `indices`, or an index is out of range for `n_sources`.
    pub fn plan(
        offsets: &[u32],
        indices: &[u32],
        n_sources: usize,
        cols: usize,
        budget_bytes: usize,
    ) -> Self {
        assert!(cols > 0, "feature width must be positive");
        assert!(!offsets.is_empty(), "offsets must have rows + 1 entries");
        assert_eq!(
            *offsets.last().expect("nonempty") as usize,
            indices.len(),
            "offsets must cover indices"
        );
        let n = offsets.len() - 1;
        let budget_rows = (budget_bytes / (cols * 4)).max(1);
        let mut stamp = vec![0u32; n_sources];
        let mut pos = vec![0u32; n_sources];
        let mut epoch = 1u32;
        let mut parts = Vec::new();
        let mut gather: Vec<u32> = Vec::new();
        let mut row_start = 0usize;
        let mut v = 0usize;
        while v < n {
            let row = &indices[offsets[v] as usize..offsets[v + 1] as usize];
            let new = row
                .iter()
                .filter(|&&u| {
                    assert!((u as usize) < n_sources, "index {u} out of range");
                    stamp[u as usize] != epoch
                })
                .count();
            if v > row_start && gather.len() + new > budget_rows {
                parts.push(Self::close_part(
                    offsets,
                    indices,
                    row_start,
                    v,
                    std::mem::take(&mut gather),
                    &mut pos,
                ));
                row_start = v;
                epoch += 1;
                continue; // re-scan row v under the fresh epoch
            }
            for &u in row {
                if stamp[u as usize] != epoch {
                    stamp[u as usize] = epoch;
                    gather.push(u);
                }
            }
            v += 1;
        }
        if n > row_start {
            parts.push(Self::close_part(
                offsets, indices, row_start, n, gather, &mut pos,
            ));
        }
        GraphPartition {
            cols,
            budget_bytes,
            n_rows: n,
            parts,
        }
    }

    fn close_part(
        offsets: &[u32],
        indices: &[u32],
        row_start: usize,
        row_end: usize,
        mut gather: Vec<u32>,
        pos: &mut [u32],
    ) -> Part {
        gather.sort_unstable();
        for (li, &g) in gather.iter().enumerate() {
            pos[g as usize] = li as u32;
        }
        let base = offsets[row_start];
        let local_offsets: Vec<u32> = offsets[row_start..=row_end]
            .iter()
            .map(|&o| o - base)
            .collect();
        let local_indices: Vec<u32> = indices[base as usize..offsets[row_end] as usize]
            .iter()
            .map(|&u| pos[u as usize])
            .collect();
        Part {
            row_start: row_start as u32,
            row_end: row_end as u32,
            gather,
            offsets: local_offsets,
            indices: local_indices,
        }
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether the plan has no partitions (empty graph).
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// The feature width the plan was sized for.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The byte budget the plan was sized for.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// The output row range of partition `p`.
    pub fn part_rows(&self, p: usize) -> std::ops::Range<usize> {
        let part = &self.parts[p];
        part.row_start as usize..part.row_end as usize
    }

    /// Number of distinct source rows partition `p` gathers.
    pub fn gather_len(&self, p: usize) -> usize {
        self.parts[p].gather.len()
    }

    /// The largest gather (scratch rows) any partition needs.
    pub fn max_gather_rows(&self) -> usize {
        self.parts.iter().map(|p| p.gather.len()).max().unwrap_or(0)
    }

    /// Total rows covered (the CSR's row count).
    pub fn row_count(&self) -> usize {
        self.n_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_csr(rows: usize, n_sources: usize, avg: usize, seed: u64) -> (Vec<u32>, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut offsets = vec![0u32];
        let mut indices = Vec::new();
        for _ in 0..rows {
            let k = rng.gen_range(0..=2 * avg).min(n_sources);
            let mut row: Vec<u32> = (0..k).map(|_| rng.gen_range(0..n_sources as u32)).collect();
            row.sort_unstable();
            row.dedup();
            indices.extend_from_slice(&row);
            offsets.push(indices.len() as u32);
        }
        (offsets, indices)
    }

    #[test]
    fn partitions_tile_rows_and_respect_budget() {
        let (offsets, indices) = random_csr(500, 500, 6, 3);
        for &budget in &[64usize, 512, 4096, 1 << 20] {
            let cols = 4;
            let plan = GraphPartition::plan(&offsets, &indices, 500, cols, budget);
            let budget_rows = (budget / (cols * 4)).max(1);
            let mut next = 0usize;
            for p in 0..plan.len() {
                let r = plan.part_rows(p);
                assert_eq!(r.start, next, "partitions must tile rows in order");
                assert!(r.end > r.start);
                next = r.end;
                // Budget holds unless the partition is a single
                // over-budget row.
                assert!(
                    plan.gather_len(p) <= budget_rows || r.len() == 1,
                    "budget {budget}: partition {p} gathers {} rows",
                    plan.gather_len(p)
                );
            }
            assert_eq!(next, 500);
        }
    }

    #[test]
    fn local_indices_reproduce_global_neighbours() {
        let (offsets, indices) = random_csr(120, 80, 5, 9);
        let plan = GraphPartition::plan(&offsets, &indices, 80, 8, 1024);
        for part in &plan.parts {
            // gather is sorted + distinct
            assert!(part.gather.windows(2).all(|w| w[0] < w[1]));
            let base = offsets[part.row_start as usize];
            for (nz, &li) in part.indices.iter().enumerate() {
                let global = indices[base as usize + nz];
                assert_eq!(part.gather[li as usize], global);
            }
            // local offsets rebased and consistent
            assert_eq!(part.offsets[0], 0);
            assert_eq!(*part.offsets.last().unwrap() as usize, part.indices.len());
        }
    }

    #[test]
    fn plan_is_a_pure_function_of_its_inputs() {
        let (offsets, indices) = random_csr(300, 300, 4, 5);
        let a = GraphPartition::plan(&offsets, &indices, 300, 16, 2048);
        let b = m3d_par::with_threads(4, || {
            GraphPartition::plan(&offsets, &indices, 300, 16, 2048)
        });
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let plan = GraphPartition::plan(&[0], &[], 0, 4, 1024);
        assert!(plan.is_empty());
        let plan = GraphPartition::plan(&[0, 1], &[0], 1, 4, 1);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.gather_len(0), 1);
    }

    #[test]
    fn budget_knob_round_trips() {
        let before = partition_budget();
        set_partition_budget(12345);
        assert_eq!(partition_budget(), 12345);
        set_partition_budget(0);
        assert_eq!(partition_budget(), before);
    }
}
