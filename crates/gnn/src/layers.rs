//! Trainable layers: GCN convolution (paper eq. (1)) and dense heads,
//! with manual backpropagation and Adam parameter state.

use crate::graph::GcnGraph;
use crate::matrix::Matrix;

/// A trainable parameter tensor with its gradient and Adam moments.
#[derive(Clone, Debug)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    grad: Matrix,
    m: Matrix,
    v: Matrix,
}

impl Param {
    /// Wraps an initial value.
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Param {
            m: grad.clone(),
            v: grad.clone(),
            grad,
            value,
        }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// The gradient accumulator.
    pub fn grad_mut(&mut self) -> &mut Matrix {
        &mut self.grad
    }

    /// Read-only view of the gradient accumulator (used by the numeric
    /// guards to scan merged gradients without mutating anything).
    pub fn grad(&self) -> &Matrix {
        &self.grad
    }

    /// The Adam moment estimates `(m, v)`, for checkpointing.
    pub fn moments(&self) -> (&Matrix, &Matrix) {
        (&self.m, &self.v)
    }

    /// Restores the Adam moments from a checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if either moment's shape differs from the parameter's.
    pub fn set_moments(&mut self, m: Matrix, v: Matrix) {
        assert_eq!(
            (m.rows(), m.cols()),
            (self.value.rows(), self.value.cols()),
            "m moment shape mismatch"
        );
        assert_eq!(
            (v.rows(), v.cols()),
            (self.value.rows(), self.value.cols()),
            "v moment shape mismatch"
        );
        self.m = m;
        self.v = v;
    }

    /// One Adam update (`t` is the 1-based step for bias correction).
    pub fn adam_step(&mut self, lr: f32, t: u64) {
        const B1: f32 = 0.9;
        const B2: f32 = 0.999;
        const EPS: f32 = 1e-8;
        let bc1 = 1.0 - B1.powi(t as i32);
        let bc2 = 1.0 - B2.powi(t as i32);
        for i in 0..self.value.data().len() {
            let g = self.grad.data()[i];
            let m = B1 * self.m.data()[i] + (1.0 - B1) * g;
            let v = B2 * self.v.data()[i] + (1.0 - B2) * g * g;
            self.m.data_mut()[i] = m;
            self.v.data_mut()[i] = v;
            let mhat = m / bc1;
            let vhat = v / bc2;
            self.value.data_mut()[i] -= lr * mhat / (vhat.sqrt() + EPS);
        }
    }
}

/// Forward cache of one GCN layer (needed for backprop).
#[derive(Clone, Debug)]
pub struct GcnCache {
    /// Mean-aggregated input, `M·X`.
    pub agg_x: Matrix,
    /// Pre-activation, `M·X·W + b`.
    pub z: Matrix,
}

/// One graph-convolution layer: `H' = ReLU(b + mean_{u∈N(v)}(H_u) · W)`,
/// the paper's eq. (1) with self-loops in `N(v)`.
#[derive(Clone, Debug)]
pub struct GcnLayer {
    /// Weight matrix, `in × out`.
    pub w: Param,
    /// Bias, `1 × out`.
    pub b: Param,
}

impl GcnLayer {
    /// Xavier-initialized layer.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        GcnLayer {
            w: Param::new(Matrix::xavier(in_dim, out_dim, seed)),
            b: Param::new(Matrix::zeros(1, out_dim)),
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.w.value.rows()
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.w.value.cols()
    }

    /// Forward pass; returns the activated output and the cache.
    pub fn forward(&self, g: &GcnGraph, x: &Matrix) -> (Matrix, GcnCache) {
        let agg_x = g.aggregate(x);
        let mut z = agg_x.matmul(&self.w.value);
        for r in 0..z.rows() {
            for (o, &bias) in z.row_mut(r).iter_mut().zip(self.b.value.row(0)) {
                *o += bias;
            }
        }
        let mut h = z.clone();
        for v in h.data_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        (h, GcnCache { agg_x, z })
    }

    /// Pure backward pass: returns `(dW, db, dL/dX)` without touching the
    /// stored gradients. Safe to call concurrently from training workers;
    /// the per-sample results are accumulated in sample order via
    /// [`GcnLayer::accumulate`].
    pub fn backward_wrt(
        &self,
        g: &GcnGraph,
        cache: &GcnCache,
        dh: &Matrix,
    ) -> (Matrix, Matrix, Matrix) {
        // dZ = dH ⊙ ReLU'(Z)
        let mut dz = dh.clone();
        for (d, &z) in dz.data_mut().iter_mut().zip(cache.z.data()) {
            if z <= 0.0 {
                *d = 0.0;
            }
        }
        // dW = (M·X)ᵀ · dZ ; db = column sums of dZ
        let dw = cache.agg_x.t_matmul(&dz);
        let mut db = Matrix::zeros(1, dz.cols());
        for r in 0..dz.rows() {
            for (acc, &d) in db.row_mut(0).iter_mut().zip(dz.row(r)) {
                *acc += d;
            }
        }
        // dX = Mᵀ · (dZ · Wᵀ)
        let dx = g.aggregate_transpose(&dz.matmul_t(&self.w.value));
        (dw, db, dx)
    }

    /// Backward pass: accumulates parameter gradients and returns `dL/dX`.
    pub fn backward(&mut self, g: &GcnGraph, cache: &GcnCache, dh: &Matrix) -> Matrix {
        let (dw, db, dx) = self.backward_wrt(g, cache, dh);
        self.accumulate(&dw, &db);
        dx
    }

    /// Adds externally-computed gradients into the stored accumulators.
    pub fn accumulate(&mut self, dw: &Matrix, db: &Matrix) {
        self.w.grad_mut().add_assign(dw);
        self.b.grad_mut().add_assign(db);
    }

    /// Adam step over both parameters.
    pub fn step(&mut self, lr: f32, t: u64) {
        self.w.adam_step(lr, t);
        self.b.adam_step(lr, t);
    }

    /// Clears both gradients.
    pub fn zero_grad(&mut self) {
        self.w.zero_grad();
        self.b.zero_grad();
    }
}

/// A dense (linear) layer over row vectors: `Y = X·W + b`.
#[derive(Clone, Debug)]
pub struct DenseLayer {
    /// Weight matrix, `in × out`.
    pub w: Param,
    /// Bias, `1 × out`.
    pub b: Param,
}

impl DenseLayer {
    /// Xavier-initialized layer.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        DenseLayer {
            w: Param::new(Matrix::xavier(in_dim, out_dim, seed)),
            b: Param::new(Matrix::zeros(1, out_dim)),
        }
    }

    /// Forward pass over a batch of row vectors.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w.value);
        for r in 0..y.rows() {
            for (o, &bias) in y.row_mut(r).iter_mut().zip(self.b.value.row(0)) {
                *o += bias;
            }
        }
        y
    }

    /// Pure backward pass: returns `(dW, db, dL/dX)` without touching the
    /// stored gradients (see [`GcnLayer::backward_wrt`]).
    pub fn backward_wrt(&self, x: &Matrix, dy: &Matrix) -> (Matrix, Matrix, Matrix) {
        let dw = x.t_matmul(dy);
        let mut db = Matrix::zeros(1, dy.cols());
        for r in 0..dy.rows() {
            for (acc, &d) in db.row_mut(0).iter_mut().zip(dy.row(r)) {
                *acc += d;
            }
        }
        let dx = dy.matmul_t(&self.w.value);
        (dw, db, dx)
    }

    /// Backward pass: accumulates gradients and returns `dL/dX`.
    pub fn backward(&mut self, x: &Matrix, dy: &Matrix) -> Matrix {
        let (dw, db, dx) = self.backward_wrt(x, dy);
        self.accumulate(&dw, &db);
        dx
    }

    /// Adds externally-computed gradients into the stored accumulators.
    pub fn accumulate(&mut self, dw: &Matrix, db: &Matrix) {
        self.w.grad_mut().add_assign(dw);
        self.b.grad_mut().add_assign(db);
    }

    /// Adam step over both parameters.
    pub fn step(&mut self, lr: f32, t: u64) {
        self.w.adam_step(lr, t);
        self.b.adam_step(lr, t);
    }

    /// Clears both gradients.
    pub fn zero_grad(&mut self) {
        self.w.zero_grad();
        self.b.zero_grad();
    }
}

/// Softmax cross-entropy over one logit row; returns `(loss, dlogits)`.
pub fn softmax_ce(logits: &[f32], label: usize) -> (f32, Vec<f32>) {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    let probs: Vec<f32> = exps.iter().map(|&e| e / sum).collect();
    let loss = -(probs[label].max(1e-12)).ln();
    let mut d = probs.clone();
    d[label] -= 1.0;
    (loss, d)
}

/// Numerically stable softmax probabilities.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

/// Weighted sigmoid binary cross-entropy on one logit; returns
/// `(loss, dlogit)`.
pub fn sigmoid_bce(logit: f32, target: bool, weight: f32) -> (f32, f32) {
    let p = sigmoid(logit);
    let y = if target { 1.0 } else { 0.0 };
    let loss = -weight * (y * p.max(1e-7).ln() + (1.0 - y) * (1.0 - p).max(1e-7).ln());
    (loss, weight * (p - y))
}

/// The logistic function.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GcnGraph;

    /// Finite-difference gradient check for one GCN layer + scalar loss.
    #[test]
    fn gcn_gradients_match_finite_differences() {
        let g = GcnGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let x = Matrix::xavier(4, 3, 7);
        let mut layer = GcnLayer::new(3, 2, 9);

        // loss = sum(H); dH = ones.
        let loss_of = |layer: &GcnLayer| {
            let (h, _) = layer.forward(&g, &x);
            h.data().iter().sum::<f32>()
        };
        let (h, cache) = layer.forward(&g, &x);
        let dh = Matrix::from_vec(h.rows(), h.cols(), vec![1.0; h.rows() * h.cols()]);
        let dx = layer.backward(&g, &cache, &dh);

        let eps = 1e-3f32;
        // check dW numerically
        for idx in 0..layer.w.value.data().len() {
            let orig = layer.w.value.data()[idx];
            layer.w.value.data_mut()[idx] = orig + eps;
            let up = loss_of(&layer);
            layer.w.value.data_mut()[idx] = orig - eps;
            let dn = loss_of(&layer);
            layer.w.value.data_mut()[idx] = orig;
            let num = (up - dn) / (2.0 * eps);
            let ana = layer.w.grad_mut().data()[idx];
            assert!(
                (num - ana).abs() < 1e-2,
                "dW[{idx}] numeric {num} vs analytic {ana}"
            );
        }
        // check dX numerically
        let mut x2 = x.clone();
        for idx in 0..x2.data().len() {
            let orig = x2.data()[idx];
            x2.data_mut()[idx] = orig + eps;
            let (h_up, _) = layer.forward(&g, &x2);
            x2.data_mut()[idx] = orig - eps;
            let (h_dn, _) = layer.forward(&g, &x2);
            x2.data_mut()[idx] = orig;
            let num =
                (h_up.data().iter().sum::<f32>() - h_dn.data().iter().sum::<f32>()) / (2.0 * eps);
            assert!(
                (num - dx.data()[idx]).abs() < 1e-2,
                "dX[{idx}] numeric {num} vs analytic {}",
                dx.data()[idx]
            );
        }
    }

    #[test]
    fn dense_gradients_match_finite_differences() {
        let x = Matrix::xavier(3, 4, 1);
        let mut layer = DenseLayer::new(4, 2, 2);
        let y = layer.forward(&x);
        let dy = Matrix::from_vec(3, 2, vec![1.0; 6]);
        let _dx = layer.backward(&x, &dy);
        let eps = 1e-3f32;
        for idx in 0..layer.w.value.data().len() {
            let orig = layer.w.value.data()[idx];
            layer.w.value.data_mut()[idx] = orig + eps;
            let up: f32 = layer.forward(&x).data().iter().sum();
            layer.w.value.data_mut()[idx] = orig - eps;
            let dn: f32 = layer.forward(&x).data().iter().sum();
            layer.w.value.data_mut()[idx] = orig;
            let num = (up - dn) / (2.0 * eps);
            let ana = layer.w.grad_mut().data()[idx];
            assert!((num - ana).abs() < 1e-2);
        }
        let _ = y;
    }

    #[test]
    fn softmax_ce_gradient_sums_to_zero() {
        let (loss, d) = softmax_ce(&[2.0, -1.0, 0.5], 0);
        assert!(loss > 0.0);
        assert!((d.iter().sum::<f32>()).abs() < 1e-6);
        assert!(d[0] < 0.0, "true-class gradient is negative");
    }

    #[test]
    fn sigmoid_bce_direction() {
        let (l1, d1) = sigmoid_bce(2.0, true, 1.0);
        let (l0, d0) = sigmoid_bce(2.0, false, 1.0);
        assert!(l0 > l1, "confident wrong prediction costs more");
        assert!(d1 < 0.0 && d0 > 0.0);
        let (_, dw) = sigmoid_bce(2.0, false, 3.0);
        assert!((dw - 3.0 * d0).abs() < 1e-6, "weight scales the gradient");
    }

    #[test]
    fn adam_reduces_a_quadratic() {
        // minimize ||W||² with Adam.
        let mut p = Param::new(Matrix::xavier(3, 3, 4));
        let start = p.value.norm();
        for t in 1..=200 {
            let g = p.value.clone();
            p.zero_grad();
            p.grad_mut().add_assign(&g);
            p.adam_step(0.05, t);
        }
        assert!(p.value.norm() < start * 0.2);
    }
}
