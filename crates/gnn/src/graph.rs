//! CSR graphs and the mean-neighbour aggregation of the paper's GCN.
//!
//! The CSR is built with a two-pass counting sort (count, prefix-sum,
//! scatter — the same construction as `hetgraph::to_csr`), so building a
//! 300K-node graph touches no per-node heap allocations. Both aggregation
//! kernels run over disjoint output-row panels on the `m3d-par` pool and
//! are bitwise identical to the retained naive references at any thread
//! count.

use crate::matrix::Matrix;

/// An undirected graph in CSR form with self-loops, ready for GCN
/// aggregation (paper eq. (1): mean over neighbours).
///
/// # Examples
///
/// ```
/// use m3d_gnn::GcnGraph;
///
/// let g = GcnGraph::from_edges(3, &[(0, 1), (1, 2)]);
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.degree(1), 3); // two neighbours + self-loop
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GcnGraph {
    n: usize,
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
}

impl GcnGraph {
    /// Builds the graph from undirected edges over `n` nodes; duplicate
    /// edges are merged and self-loops are added to every node.
    ///
    /// Two-pass counting-sort CSR construction: count per-node entries,
    /// prefix-sum into offsets, scatter into flat storage, then sort,
    /// dedup and compact each row in place — no per-node `Vec`s.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        // Pass 1: count (self-loop plus both endpoints of each non-self
        // edge; duplicates are counted here and merged after the sort).
        let mut counts = vec![1u32; n];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range for {n} nodes");
            if a != b {
                counts[a] += 1;
                counts[b] += 1;
            }
        }
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + counts[v];
        }
        // Pass 2: scatter.
        let mut neighbors = vec![0u32; offsets[n] as usize];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for (v, cur) in cursor.iter_mut().enumerate() {
            neighbors[*cur as usize] = v as u32;
            *cur += 1;
        }
        for &(a, b) in edges {
            if a != b {
                neighbors[cursor[a] as usize] = b as u32;
                cursor[a] += 1;
                neighbors[cursor[b] as usize] = a as u32;
                cursor[b] += 1;
            }
        }
        // Sort + dedup each row, compacting in place (the write cursor
        // never overtakes the read range).
        let mut w = 0usize;
        let mut merged = vec![0u32; n + 1];
        for v in 0..n {
            let (s, e) = (offsets[v] as usize, offsets[v + 1] as usize);
            neighbors[s..e].sort_unstable();
            let mut prev = u32::MAX;
            for idx in s..e {
                let x = neighbors[idx];
                if x != prev {
                    neighbors[w] = x;
                    w += 1;
                    prev = x;
                }
            }
            merged[v + 1] = w as u32;
        }
        neighbors.truncate(w);
        neighbors.shrink_to_fit();
        GcnGraph {
            n,
            offsets: merged,
            neighbors,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Degree of a node (self-loop included).
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Neighbours of `v` (self-loop included), ascending.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.neighbors[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Mean-neighbour aggregation: `out[v] = (1/|N(v)|) Σ_{u∈N(v)} x[u]`.
    ///
    /// Output rows are disjoint, so the rows split into panels across the
    /// `m3d-par` pool; the result is bitwise identical to
    /// [`GcnGraph::aggregate_naive`] at any thread count.
    pub fn aggregate(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.n, "feature rows must match nodes");
        let c = x.cols();
        Matrix::build_rows(self.n, c, |rows, out| {
            for v in rows.clone() {
                let ns = self.neighbors(v);
                let inv = 1.0 / ns.len() as f32;
                let base = (v - rows.start) * c;
                let row = &mut out[base..base + c];
                for &u in ns {
                    for (o, &val) in row.iter_mut().zip(x.row(u as usize)) {
                        *o += val;
                    }
                }
                for o in row.iter_mut() {
                    *o *= inv;
                }
            }
        })
    }

    /// Transposed aggregation (`Mᵀ x`), needed for backpropagation.
    ///
    /// Computed row-wise as `out[u] = Σ_{v∈N(u)} x[v] / |N(v)|` with `v`
    /// ascending. Because the graph is undirected with self-loops
    /// (`u ∈ N(v) ⇔ v ∈ N(u)`) and neighbour lists are sorted, this adds
    /// exactly the same contributions in exactly the same order as the
    /// scatter formulation [`GcnGraph::aggregate_transpose_naive`] — which
    /// is what makes row-panel parallelism bitwise safe here.
    pub fn aggregate_transpose(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.n, "feature rows must match nodes");
        let c = x.cols();
        // One division per node instead of one per edge; each `1/|N(v)|`
        // is the exact value the scatter form computes.
        let inv_deg: Vec<f32> = (0..self.n).map(|v| 1.0 / self.degree(v) as f32).collect();
        Matrix::build_rows(self.n, c, |rows, out| {
            for u in rows.clone() {
                let base = (u - rows.start) * c;
                let row = &mut out[base..base + c];
                for &v in self.neighbors(u) {
                    let inv = inv_deg[v as usize];
                    for (o, &val) in row.iter_mut().zip(x.row(v as usize)) {
                        *o += val * inv;
                    }
                }
            }
        })
    }

    /// Reference serial aggregation; [`GcnGraph::aggregate`] is
    /// proptest-proven bitwise equal to this at any thread count.
    pub fn aggregate_naive(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.n, "feature rows must match nodes");
        let mut out = Matrix::zeros(self.n, x.cols());
        for v in 0..self.n {
            let ns = self.neighbors(v);
            let inv = 1.0 / ns.len() as f32;
            let row = out.row_mut(v);
            for &u in ns {
                for (o, &val) in row.iter_mut().zip(x.row(u as usize)) {
                    *o += val;
                }
            }
            for o in row {
                *o *= inv;
            }
        }
        out
    }

    /// Reference transposed aggregation in its natural scatter form:
    /// `out[u] += x[v] / |N(v)|` for every `v` with `u ∈ N(v)`, `v`
    /// ascending. [`GcnGraph::aggregate_transpose`] is proptest-proven
    /// bitwise equal to this at any thread count.
    pub fn aggregate_transpose_naive(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.n, "feature rows must match nodes");
        let mut out = Matrix::zeros(self.n, x.cols());
        for v in 0..self.n {
            let ns = self.neighbors(v);
            let inv = 1.0 / ns.len() as f32;
            for &u in ns {
                let row = out.row_mut(u as usize);
                for (o, &val) in row.iter_mut().zip(x.row(v)) {
                    *o += val * inv;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-counting-sort builder (one `Vec` per node), kept as the
    /// reference the CSR construction must reproduce exactly.
    fn from_edges_reference(n: usize, edges: &[(usize, usize)]) -> GcnGraph {
        let mut adj: Vec<Vec<u32>> = (0..n).map(|i| vec![i as u32]).collect();
        for &(a, b) in edges {
            assert!(a < n && b < n);
            if a != b {
                adj[a].push(b as u32);
                adj[b].push(a as u32);
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len() as u32);
        }
        GcnGraph {
            n,
            offsets,
            neighbors,
        }
    }

    #[test]
    fn counting_sort_csr_is_identical_to_reference_builder() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for &(n, m) in &[(1usize, 0usize), (2, 1), (5, 3), (40, 120), (300, 900)] {
            let edges: Vec<(usize, usize)> = (0..m)
                .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
                .collect();
            // Throw in duplicates and self-loops deliberately.
            let mut edges = edges;
            if m > 2 {
                edges.push(edges[0]);
                edges.push((edges[1].1, edges[1].0));
                edges.push((0, 0));
            }
            let fast = GcnGraph::from_edges(n, &edges);
            let slow = from_edges_reference(n, &edges);
            assert_eq!(fast.offsets, slow.offsets, "n={n} m={m}");
            assert_eq!(fast.neighbors, slow.neighbors, "n={n} m={m}");
        }
    }

    #[test]
    fn aggregation_averages_neighbours() {
        // Path 0-1-2 with features = node index.
        let g = GcnGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let agg = g.aggregate(&x);
        // node0: mean(0,1)=0.5; node1: mean(0,1,2)=1; node2: mean(1,2)=1.5
        assert!((agg[(0, 0)] - 0.5).abs() < 1e-6);
        assert!((agg[(1, 0)] - 1.0).abs() < 1e-6);
        assert!((agg[(2, 0)] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn transpose_aggregation_is_adjoint() {
        // <M x, y> == <x, Mᵀ y> for random x, y.
        let g = GcnGraph::from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (1, 2)]);
        let x = Matrix::xavier(6, 3, 1);
        let y = Matrix::xavier(6, 3, 2);
        let mx = g.aggregate(&x);
        let mty = g.aggregate_transpose(&y);
        let lhs: f32 = mx.data().iter().zip(y.data()).map(|(&a, &b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(mty.data()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn rowwise_transpose_matches_scatter_reference_bitwise() {
        let g = GcnGraph::from_edges(
            9,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 4),
                (3, 5),
                (1, 2),
                (6, 7),
                (4, 8),
                (5, 8),
            ],
        );
        let x = Matrix::xavier(9, 5, 7);
        let fast = g.aggregate_transpose(&x);
        let slow = g.aggregate_transpose_naive(&x);
        for (a, b) in fast.data().iter().zip(slow.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn duplicate_edges_merge() {
        let g = GcnGraph::from_edges(2, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[0, 1]);
    }

    #[test]
    fn isolated_nodes_keep_self_loops() {
        let g = GcnGraph::from_edges(3, &[]);
        for v in 0..3 {
            assert_eq!(g.degree(v), 1);
        }
        let x = Matrix::from_rows(&[&[5.0], &[6.0], &[7.0]]);
        assert_eq!(g.aggregate(&x), x);
    }
}
