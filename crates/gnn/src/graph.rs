//! CSR graphs and the mean-neighbour aggregation of the paper's GCN.
//!
//! The CSR is built with a two-pass counting sort (count, prefix-sum,
//! scatter — the same construction as `hetgraph::to_csr`), so building a
//! 300K-node graph touches no per-node heap allocations. Aggregation
//! picks between three bitwise-identical paths by feature-matrix size:
//! a row-wise loop for narrow features, the tiled SpMM kernel for wide
//! cache-resident features, and — when the feature matrix overflows the
//! [`partition_budget`](crate::partition_budget) — the cache-resident
//! partitioned path, which gathers each partition's touched rows into a
//! dense scratch before accumulating. All paths run over disjoint
//! output-row units on the `m3d-par` pool and are bitwise identical to
//! the retained naive references at any thread count and any budget.

use std::fmt;
use std::sync::{Arc, Mutex};

use crate::matrix::{self, Matrix};
use crate::partition::{partition_budget, GraphPartition};

/// Partition plans cached per graph, keyed by `(cols, budget)`; bounded
/// so a budget sweep can't grow a graph's cache without limit.
const PLAN_CACHE_CAP: usize = 8;

/// An undirected graph in CSR form with self-loops, ready for GCN
/// aggregation (paper eq. (1): mean over neighbours).
///
/// # Examples
///
/// ```
/// use m3d_gnn::GcnGraph;
///
/// let g = GcnGraph::from_edges(3, &[(0, 1), (1, 2)]);
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.degree(1), 3); // two neighbours + self-loop
/// ```
pub struct GcnGraph {
    n: usize,
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    /// Partition plans keyed by `(cols, budget_bytes)`. Plans are pure
    /// functions of the CSR and the key, so the cache only skips
    /// recomputation — it can never change a result. Not part of the
    /// graph's identity: ignored by `Clone`/`PartialEq`/`Debug`.
    plans: Mutex<Vec<(usize, usize, Arc<GraphPartition>)>>,
}

impl Clone for GcnGraph {
    fn clone(&self) -> Self {
        GcnGraph {
            n: self.n,
            offsets: self.offsets.clone(),
            neighbors: self.neighbors.clone(),
            plans: Mutex::new(Vec::new()),
        }
    }
}

impl fmt::Debug for GcnGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GcnGraph")
            .field("n", &self.n)
            .field("offsets", &self.offsets)
            .field("neighbors", &self.neighbors)
            .finish()
    }
}

impl PartialEq for GcnGraph {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.offsets == other.offsets && self.neighbors == other.neighbors
    }
}

impl Eq for GcnGraph {}

impl GcnGraph {
    /// Builds the graph from undirected edges over `n` nodes; duplicate
    /// edges are merged and self-loops are added to every node.
    ///
    /// Two-pass counting-sort CSR construction: count per-node entries,
    /// prefix-sum into offsets, scatter into flat storage, then sort,
    /// dedup and compact each row in place — no per-node `Vec`s.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        // Pass 1: count (self-loop plus both endpoints of each non-self
        // edge; duplicates are counted here and merged after the sort).
        let mut counts = vec![1u32; n];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range for {n} nodes");
            if a != b {
                counts[a] += 1;
                counts[b] += 1;
            }
        }
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + counts[v];
        }
        // Pass 2: scatter.
        let mut neighbors = vec![0u32; offsets[n] as usize];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for (v, cur) in cursor.iter_mut().enumerate() {
            neighbors[*cur as usize] = v as u32;
            *cur += 1;
        }
        for &(a, b) in edges {
            if a != b {
                neighbors[cursor[a] as usize] = b as u32;
                cursor[a] += 1;
                neighbors[cursor[b] as usize] = a as u32;
                cursor[b] += 1;
            }
        }
        // Sort + dedup each row, compacting in place (the write cursor
        // never overtakes the read range).
        let mut w = 0usize;
        let mut merged = vec![0u32; n + 1];
        for v in 0..n {
            let (s, e) = (offsets[v] as usize, offsets[v + 1] as usize);
            neighbors[s..e].sort_unstable();
            let mut prev = u32::MAX;
            for idx in s..e {
                let x = neighbors[idx];
                if x != prev {
                    neighbors[w] = x;
                    w += 1;
                    prev = x;
                }
            }
            merged[v + 1] = w as u32;
        }
        neighbors.truncate(w);
        neighbors.shrink_to_fit();
        GcnGraph {
            n,
            offsets: merged,
            neighbors,
            plans: Mutex::new(Vec::new()),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of stored CSR entries (directed neighbour slots, self-loops
    /// included) — the nonzero count of the aggregation operator, used as
    /// the work estimate for the `m3d-par` cost gate.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.neighbors.len()
    }

    /// Degree of a node (self-loop included).
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Neighbours of `v` (self-loop included), ascending.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.neighbors[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Mean-neighbour aggregation: `out[v] = (1/|N(v)|) Σ_{u∈N(v)} x[u]`.
    ///
    /// Dispatches by feature-matrix size: narrow features take the
    /// row-wise loop, wide cache-resident features take the tiled SpMM
    /// kernel, and features overflowing the
    /// [`partition_budget`](crate::partition_budget) take the
    /// cache-resident partitioned path. Every path adds each output
    /// element's contributions in ascending neighbour order, so the
    /// result is bitwise identical to [`GcnGraph::aggregate_naive`] at
    /// any thread count and any budget.
    pub fn aggregate(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.n, "feature rows must match nodes");
        let c = x.cols();
        if c > 0 && self.n * c * 4 > partition_budget() {
            let plan = self.partition_plan(c);
            self.aggregate_with_plan(x, &plan)
        } else {
            self.aggregate_unpartitioned(x)
        }
    }

    /// The unpartitioned aggregation path: direct accumulation off the
    /// CSR (row-wise for narrow features, tiled SpMM for wide ones),
    /// streaming neighbour rows from wherever they live. This is the
    /// small-graph path and the baseline the partitioned path is
    /// benchmarked against (`wide_agg_speedup_vs_unpartitioned` in
    /// `bench_pipeline`). Bitwise identical to [`GcnGraph::aggregate`].
    pub fn aggregate_unpartitioned(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.n, "feature rows must match nodes");
        let c = x.cols();
        let work = self.neighbors.len() as u64 * c as u64;
        if c > matrix::NARROW_N {
            // Wide rows: the SpMM register tiles keep accumulators out of
            // memory; the per-row 1/deg scale afterwards matches the
            // naive path's sum-then-scale order exactly.
            return Matrix::build_rows(self.n, c, work, |rows, out| {
                matrix::spmm_panel(
                    &self.offsets,
                    &self.neighbors,
                    None,
                    x.data(),
                    c,
                    rows.clone(),
                    out,
                );
                for v in rows.clone() {
                    let inv = 1.0 / self.degree(v) as f32;
                    let base = (v - rows.start) * c;
                    for o in &mut out[base..base + c] {
                        *o *= inv;
                    }
                }
            });
        }
        Matrix::build_rows(self.n, c, work, |rows, out| {
            for v in rows.clone() {
                let ns = self.neighbors(v);
                let inv = 1.0 / ns.len() as f32;
                let base = (v - rows.start) * c;
                let row = &mut out[base..base + c];
                for &u in ns {
                    for (o, &val) in row.iter_mut().zip(x.row(u as usize)) {
                        *o += val;
                    }
                }
                for o in row.iter_mut() {
                    *o *= inv;
                }
            }
        })
    }

    /// Transposed aggregation (`Mᵀ x`), needed for backpropagation.
    ///
    /// Computed row-wise as `out[u] = Σ_{v∈N(u)} x[v] / |N(v)|` with `v`
    /// ascending. Because the graph is undirected with self-loops
    /// (`u ∈ N(v) ⇔ v ∈ N(u)`) and neighbour lists are sorted, this adds
    /// exactly the same contributions in exactly the same order as the
    /// scatter formulation [`GcnGraph::aggregate_transpose_naive`] —
    /// which is what makes both row-panel and partition parallelism
    /// bitwise safe here. Dispatches across the same three paths as
    /// [`GcnGraph::aggregate`].
    pub fn aggregate_transpose(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.n, "feature rows must match nodes");
        let c = x.cols();
        if c > 0 && self.n * c * 4 > partition_budget() {
            let plan = self.partition_plan(c);
            self.aggregate_transpose_with_plan(x, &plan)
        } else {
            self.aggregate_transpose_unpartitioned(x)
        }
    }

    /// The unpartitioned transposed-aggregation path; see
    /// [`GcnGraph::aggregate_unpartitioned`] for its role.
    pub fn aggregate_transpose_unpartitioned(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.n, "feature rows must match nodes");
        let c = x.cols();
        let work = self.neighbors.len() as u64 * c as u64;
        // One division per node instead of one per edge; each `1/|N(v)|`
        // is the exact value the scatter form computes.
        let inv_deg: Vec<f32> = (0..self.n).map(|v| 1.0 / self.degree(v) as f32).collect();
        if c > matrix::NARROW_N {
            // Scaled SpMM: one value per nonzero, `inv_deg` of the
            // neighbour, accumulated in the same ascending order as the
            // row-wise loop below.
            let vals: Vec<f32> = self
                .neighbors
                .iter()
                .map(|&v| inv_deg[v as usize])
                .collect();
            return Matrix::build_rows(self.n, c, work, |rows, out| {
                matrix::spmm_panel(
                    &self.offsets,
                    &self.neighbors,
                    Some(&vals),
                    x.data(),
                    c,
                    rows.clone(),
                    out,
                );
            });
        }
        Matrix::build_rows(self.n, c, work, |rows, out| {
            for u in rows.clone() {
                let base = (u - rows.start) * c;
                let row = &mut out[base..base + c];
                for &v in self.neighbors(u) {
                    let inv = inv_deg[v as usize];
                    for (o, &val) in row.iter_mut().zip(x.row(v as usize)) {
                        *o += val * inv;
                    }
                }
            }
        })
    }

    /// Plans cache-resident partitions of this graph's CSR for `cols`
    /// `f32` feature columns under `budget_bytes` (no caching; see
    /// [`GcnGraph::partition_plan`] for the cached entry point the
    /// aggregation paths use).
    pub fn plan_partitions(&self, cols: usize, budget_bytes: usize) -> GraphPartition {
        GraphPartition::plan(&self.offsets, &self.neighbors, self.n, cols, budget_bytes)
    }

    /// The cached partition plan for `cols` feature columns at the
    /// current [`partition_budget`](crate::partition_budget).
    pub fn partition_plan(&self, cols: usize) -> Arc<GraphPartition> {
        let budget = partition_budget();
        let mut plans = self.plans.lock().expect("plan cache poisoned");
        if let Some((_, _, p)) = plans
            .iter()
            .find(|(pc, pb, _)| *pc == cols && *pb == budget)
        {
            return Arc::clone(p);
        }
        let plan = Arc::new(self.plan_partitions(cols, budget));
        if plans.len() >= PLAN_CACHE_CAP {
            plans.remove(0);
        }
        plans.push((cols, budget, Arc::clone(&plan)));
        plan
    }

    /// Mean-neighbour aggregation over an explicit partition plan:
    /// per partition, gather the touched feature rows into a dense
    /// scratch, accumulate through the SpMM kernel against the scratch,
    /// then scale by `1/deg`. Partitions fan out across the pool (their
    /// output row ranges are disjoint and ordered); within each
    /// partition the sorted gather keeps local neighbour order equal to
    /// global order, so the result is bitwise identical to
    /// [`GcnGraph::aggregate_naive`] for **any** plan of this graph.
    pub fn aggregate_with_plan(&self, x: &Matrix, plan: &GraphPartition) -> Matrix {
        self.aggregate_partitioned(x, plan, false)
    }

    /// Transposed aggregation over an explicit partition plan; bitwise
    /// identical to [`GcnGraph::aggregate_transpose_naive`] for any plan
    /// of this graph. See [`GcnGraph::aggregate_with_plan`].
    pub fn aggregate_transpose_with_plan(&self, x: &Matrix, plan: &GraphPartition) -> Matrix {
        self.aggregate_partitioned(x, plan, true)
    }

    fn aggregate_partitioned(&self, x: &Matrix, plan: &GraphPartition, transpose: bool) -> Matrix {
        assert_eq!(x.rows(), self.n, "feature rows must match nodes");
        assert_eq!(plan.row_count(), self.n, "plan must cover this graph");
        let c = x.cols();
        assert_eq!(plan.cols(), c, "plan was sized for a different width");
        let inv_deg: Vec<f32> = (0..self.n).map(|v| 1.0 / self.degree(v) as f32).collect();
        let work = self.neighbors.len() as u64 * c as u64;
        let part_ids: Vec<usize> = (0..plan.len()).collect();
        let bufs = m3d_par::with_threads(m3d_par::par_gate(work), || {
            m3d_par::par_map(&part_ids, |&p| {
                let part = &plan.parts[p];
                let mut scratch = vec![0.0f32; part.gather.len() * c];
                for (li, &g) in part.gather.iter().enumerate() {
                    scratch[li * c..(li + 1) * c].copy_from_slice(x.row(g as usize));
                }
                let rows = (part.row_end - part.row_start) as usize;
                let mut out = vec![0.0f32; rows * c];
                if transpose {
                    let base = self.offsets[part.row_start as usize] as usize;
                    let vals: Vec<f32> = self.neighbors[base..base + part.indices.len()]
                        .iter()
                        .map(|&v| inv_deg[v as usize])
                        .collect();
                    matrix::spmm_panel(
                        &part.offsets,
                        &part.indices,
                        Some(&vals),
                        &scratch,
                        c,
                        0..rows,
                        &mut out,
                    );
                } else {
                    matrix::spmm_panel(
                        &part.offsets,
                        &part.indices,
                        None,
                        &scratch,
                        c,
                        0..rows,
                        &mut out,
                    );
                    // `c > 0` is guaranteed: plans reject zero widths.
                    for (r, chunk) in out.chunks_exact_mut(c).enumerate() {
                        let inv = inv_deg[part.row_start as usize + r];
                        for o in chunk {
                            *o *= inv;
                        }
                    }
                }
                out
            })
        });
        let mut data = Vec::with_capacity(self.n * c);
        for buf in &bufs {
            data.extend_from_slice(buf);
        }
        Matrix::from_vec(self.n, c, data)
    }

    /// Reference serial aggregation; [`GcnGraph::aggregate`] is
    /// proptest-proven bitwise equal to this at any thread count.
    pub fn aggregate_naive(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.n, "feature rows must match nodes");
        let mut out = Matrix::zeros(self.n, x.cols());
        for v in 0..self.n {
            let ns = self.neighbors(v);
            let inv = 1.0 / ns.len() as f32;
            let row = out.row_mut(v);
            for &u in ns {
                for (o, &val) in row.iter_mut().zip(x.row(u as usize)) {
                    *o += val;
                }
            }
            for o in row {
                *o *= inv;
            }
        }
        out
    }

    /// Reference transposed aggregation in its natural scatter form:
    /// `out[u] += x[v] / |N(v)|` for every `v` with `u ∈ N(v)`, `v`
    /// ascending. [`GcnGraph::aggregate_transpose`] is proptest-proven
    /// bitwise equal to this at any thread count.
    pub fn aggregate_transpose_naive(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.n, "feature rows must match nodes");
        let mut out = Matrix::zeros(self.n, x.cols());
        for v in 0..self.n {
            let ns = self.neighbors(v);
            let inv = 1.0 / ns.len() as f32;
            for &u in ns {
                let row = out.row_mut(u as usize);
                for (o, &val) in row.iter_mut().zip(x.row(v)) {
                    *o += val * inv;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-counting-sort builder (one `Vec` per node), kept as the
    /// reference the CSR construction must reproduce exactly.
    fn from_edges_reference(n: usize, edges: &[(usize, usize)]) -> GcnGraph {
        let mut adj: Vec<Vec<u32>> = (0..n).map(|i| vec![i as u32]).collect();
        for &(a, b) in edges {
            assert!(a < n && b < n);
            if a != b {
                adj[a].push(b as u32);
                adj[b].push(a as u32);
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len() as u32);
        }
        GcnGraph {
            n,
            offsets,
            neighbors,
            plans: Mutex::new(Vec::new()),
        }
    }

    #[test]
    fn counting_sort_csr_is_identical_to_reference_builder() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for &(n, m) in &[(1usize, 0usize), (2, 1), (5, 3), (40, 120), (300, 900)] {
            let edges: Vec<(usize, usize)> = (0..m)
                .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
                .collect();
            // Throw in duplicates and self-loops deliberately.
            let mut edges = edges;
            if m > 2 {
                edges.push(edges[0]);
                edges.push((edges[1].1, edges[1].0));
                edges.push((0, 0));
            }
            let fast = GcnGraph::from_edges(n, &edges);
            let slow = from_edges_reference(n, &edges);
            assert_eq!(fast.offsets, slow.offsets, "n={n} m={m}");
            assert_eq!(fast.neighbors, slow.neighbors, "n={n} m={m}");
        }
    }

    #[test]
    fn aggregation_averages_neighbours() {
        // Path 0-1-2 with features = node index.
        let g = GcnGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let agg = g.aggregate(&x);
        // node0: mean(0,1)=0.5; node1: mean(0,1,2)=1; node2: mean(1,2)=1.5
        assert!((agg[(0, 0)] - 0.5).abs() < 1e-6);
        assert!((agg[(1, 0)] - 1.0).abs() < 1e-6);
        assert!((agg[(2, 0)] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn transpose_aggregation_is_adjoint() {
        // <M x, y> == <x, Mᵀ y> for random x, y.
        let g = GcnGraph::from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (1, 2)]);
        let x = Matrix::xavier(6, 3, 1);
        let y = Matrix::xavier(6, 3, 2);
        let mx = g.aggregate(&x);
        let mty = g.aggregate_transpose(&y);
        let lhs: f32 = mx.data().iter().zip(y.data()).map(|(&a, &b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(mty.data()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn rowwise_transpose_matches_scatter_reference_bitwise() {
        let g = GcnGraph::from_edges(
            9,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 4),
                (3, 5),
                (1, 2),
                (6, 7),
                (4, 8),
                (5, 8),
            ],
        );
        let x = Matrix::xavier(9, 5, 7);
        let fast = g.aggregate_transpose(&x);
        let slow = g.aggregate_transpose_naive(&x);
        for (a, b) in fast.data().iter().zip(slow.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// A ring with chords — enough structure that small budgets split it
    /// into many partitions with cross-partition gathers.
    fn chord_ring(n: usize) -> GcnGraph {
        let mut edges: Vec<(usize, usize)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        edges.extend((0..n).step_by(3).map(|v| (v, (v + n / 2) % n)));
        GcnGraph::from_edges(n, &edges)
    }

    #[test]
    fn partitioned_paths_match_naive_bitwise_across_budgets() {
        let g = chord_ring(90);
        for &c in &[3usize, 24] {
            let x = Matrix::xavier(90, c, 11);
            let want = g.aggregate_naive(&x);
            let want_t = g.aggregate_transpose_naive(&x);
            for &budget in &[16usize, 256, 4096, 1 << 20] {
                let plan = g.plan_partitions(c, budget);
                let got = g.aggregate_with_plan(&x, &plan);
                let got_t = g.aggregate_transpose_with_plan(&x, &plan);
                for (a, b) in got.data().iter().zip(want.data()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "budget {budget} cols {c}");
                }
                for (a, b) in got_t.data().iter().zip(want_t.data()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "budget {budget} cols {c} (T)");
                }
            }
        }
    }

    #[test]
    fn wide_spmm_paths_match_naive_bitwise() {
        let g = chord_ring(70);
        // Past NARROW_N, so the unpartitioned dispatch takes the SpMM
        // kernel instead of the row-wise loop.
        let x = Matrix::xavier(70, 33, 13);
        let fast = g.aggregate_unpartitioned(&x);
        let slow = g.aggregate_naive(&x);
        for (a, b) in fast.data().iter().zip(slow.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let fast_t = g.aggregate_transpose_unpartitioned(&x);
        let slow_t = g.aggregate_transpose_naive(&x);
        for (a, b) in fast_t.data().iter().zip(slow_t.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn partition_plan_cache_reuses_and_bounds() {
        let g = chord_ring(40);
        let a = g.partition_plan(8);
        let b = g.partition_plan(8);
        assert!(Arc::ptr_eq(&a, &b), "same key must hit the cache");
        for c in 1..=2 * PLAN_CACHE_CAP {
            let _ = g.partition_plan(c);
        }
        assert!(g.plans.lock().unwrap().len() <= PLAN_CACHE_CAP);
    }

    #[test]
    fn duplicate_edges_merge() {
        let g = GcnGraph::from_edges(2, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[0, 1]);
    }

    #[test]
    fn isolated_nodes_keep_self_loops() {
        let g = GcnGraph::from_edges(3, &[]);
        for v in 0..3 {
            assert_eq!(g.degree(v), 1);
        }
        let x = Matrix::from_rows(&[&[5.0], &[6.0], &[7.0]]);
        assert_eq!(g.aggregate(&x), x);
    }
}
