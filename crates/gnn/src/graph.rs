//! CSR graphs and the mean-neighbour aggregation of the paper's GCN.

use crate::matrix::Matrix;

/// An undirected graph in CSR form with self-loops, ready for GCN
/// aggregation (paper eq. (1): mean over neighbours).
///
/// # Examples
///
/// ```
/// use m3d_gnn::GcnGraph;
///
/// let g = GcnGraph::from_edges(3, &[(0, 1), (1, 2)]);
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.degree(1), 3); // two neighbours + self-loop
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GcnGraph {
    n: usize,
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
}

impl GcnGraph {
    /// Builds the graph from undirected edges over `n` nodes; duplicate
    /// edges are merged and self-loops are added to every node.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj: Vec<Vec<u32>> = (0..n).map(|i| vec![i as u32]).collect();
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range for {n} nodes");
            if a != b {
                adj[a].push(b as u32);
                adj[b].push(a as u32);
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len() as u32);
        }
        GcnGraph {
            n,
            offsets,
            neighbors,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Degree of a node (self-loop included).
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Neighbours of `v` (self-loop included), ascending.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.neighbors[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Mean-neighbour aggregation: `out[v] = (1/|N(v)|) Σ_{u∈N(v)} x[u]`.
    pub fn aggregate(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.n, "feature rows must match nodes");
        let mut out = Matrix::zeros(self.n, x.cols());
        for v in 0..self.n {
            let ns = self.neighbors(v);
            let inv = 1.0 / ns.len() as f32;
            let row = out.row_mut(v);
            for &u in ns {
                for (o, &val) in row.iter_mut().zip(x.row(u as usize)) {
                    *o += val;
                }
            }
            for o in row {
                *o *= inv;
            }
        }
        out
    }

    /// Transposed aggregation (`Mᵀ x`), needed for backpropagation:
    /// `out[u] += x[v] / |N(v)|` for every `v` with `u ∈ N(v)`.
    pub fn aggregate_transpose(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.n, "feature rows must match nodes");
        let mut out = Matrix::zeros(self.n, x.cols());
        for v in 0..self.n {
            let ns = self.neighbors(v);
            let inv = 1.0 / ns.len() as f32;
            for &u in ns {
                let row = out.row_mut(u as usize);
                for (o, &val) in row.iter_mut().zip(x.row(v)) {
                    *o += val * inv;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_averages_neighbours() {
        // Path 0-1-2 with features = node index.
        let g = GcnGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let agg = g.aggregate(&x);
        // node0: mean(0,1)=0.5; node1: mean(0,1,2)=1; node2: mean(1,2)=1.5
        assert!((agg[(0, 0)] - 0.5).abs() < 1e-6);
        assert!((agg[(1, 0)] - 1.0).abs() < 1e-6);
        assert!((agg[(2, 0)] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn transpose_aggregation_is_adjoint() {
        // <M x, y> == <x, Mᵀ y> for random x, y.
        let g = GcnGraph::from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (1, 2)]);
        let x = Matrix::xavier(6, 3, 1);
        let y = Matrix::xavier(6, 3, 2);
        let mx = g.aggregate(&x);
        let mty = g.aggregate_transpose(&y);
        let lhs: f32 = mx.data().iter().zip(y.data()).map(|(&a, &b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(mty.data()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn duplicate_edges_merge() {
        let g = GcnGraph::from_edges(2, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[0, 1]);
    }

    #[test]
    fn isolated_nodes_keep_self_loops() {
        let g = GcnGraph::from_edges(3, &[]);
        for v in 0..3 {
            assert_eq!(g.degree(v), 1);
        }
        let x = Matrix::from_rows(&[&[5.0], &[6.0], &[7.0]]);
        assert_eq!(g.aggregate(&x), x);
    }
}
