//! Precision-recall analysis for the confidence-threshold policy.
//!
//! The paper classifies a diagnosis sample as *Predicted Positive* when the
//! Tier-predictor's winning probability exceeds a threshold `T_p`, chosen
//! as the smallest threshold whose training-set precision is ≥ 99%
//! (Section V-B). This module computes the PR curve over scored samples
//! and extracts that threshold.

/// One scored sample: the classifier's confidence and whether the
/// prediction was actually correct.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredSample {
    /// Confidence of the winning class, `max(p_top, p_bottom)`.
    pub score: f64,
    /// Whether the prediction matched the ground truth (*Actual Positive*).
    pub correct: bool,
}

/// A point on the precision-recall curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrPoint {
    /// Classification threshold producing this point.
    pub threshold: f64,
    /// `TP / (TP + FP)`.
    pub precision: f64,
    /// `TP / (TP + FN)`.
    pub recall: f64,
}

/// The precision-recall curve of a scored sample set.
///
/// # Examples
///
/// ```
/// use m3d_gnn::{PrCurve, ScoredSample};
///
/// let samples = vec![
///     ScoredSample { score: 0.9, correct: true },
///     ScoredSample { score: 0.8, correct: true },
///     ScoredSample { score: 0.7, correct: false },
/// ];
/// let curve = PrCurve::from_samples(&samples);
/// let tp = curve.threshold_for_precision(0.99);
/// // Predicted Positive is score > Tp, so Tp = 0.7 cuts the wrong sample.
/// assert!(tp >= 0.7 && tp < 0.8);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PrCurve {
    points: Vec<PrPoint>,
}

impl PrCurve {
    /// Sweeps the threshold over every distinct score.
    ///
    /// Per the paper's confusion matrix (Table IV): *Predicted Positive* =
    /// `score > threshold`; true positives are correct predicted-positive
    /// samples; false negatives are correct samples below the threshold.
    pub fn from_samples(samples: &[ScoredSample]) -> Self {
        let mut thresholds: Vec<f64> = samples.iter().map(|s| s.score).collect();
        thresholds.push(0.0);
        thresholds.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
        thresholds.dedup();
        let points = thresholds
            .iter()
            .map(|&threshold| {
                let mut tp = 0u32;
                let mut fp = 0u32;
                let mut fne = 0u32;
                for s in samples {
                    let predicted_positive = s.score > threshold;
                    match (s.correct, predicted_positive) {
                        (true, true) => tp += 1,
                        (false, true) => fp += 1,
                        (true, false) => fne += 1,
                        (false, false) => {}
                    }
                }
                PrPoint {
                    threshold,
                    precision: if tp + fp == 0 {
                        1.0
                    } else {
                        f64::from(tp) / f64::from(tp + fp)
                    },
                    recall: if tp + fne == 0 {
                        0.0
                    } else {
                        f64::from(tp) / f64::from(tp + fne)
                    },
                }
            })
            .collect();
        PrCurve { points }
    }

    /// The curve points, by ascending threshold.
    pub fn points(&self) -> &[PrPoint] {
        &self.points
    }

    /// The smallest threshold whose precision is at least `min_precision`
    /// (the paper's `T_p`). Falls back to the largest threshold when no
    /// point qualifies.
    pub fn threshold_for_precision(&self, min_precision: f64) -> f64 {
        self.points
            .iter()
            .find(|p| p.precision >= min_precision)
            .or_else(|| self.points.last())
            .map(|p| p.threshold)
            .unwrap_or(1.0)
    }
}

/// Plain classification accuracy of boolean outcomes.
pub fn accuracy(outcomes: &[bool]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes.iter().filter(|&&b| b).count() as f64 / outcomes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<ScoredSample> {
        vec![
            ScoredSample {
                score: 0.95,
                correct: true,
            },
            ScoredSample {
                score: 0.9,
                correct: true,
            },
            ScoredSample {
                score: 0.85,
                correct: false,
            },
            ScoredSample {
                score: 0.8,
                correct: true,
            },
            ScoredSample {
                score: 0.6,
                correct: false,
            },
        ]
    }

    #[test]
    fn precision_rises_and_recall_falls_with_threshold() {
        let curve = PrCurve::from_samples(&samples());
        let pts = curve.points();
        assert!(pts.first().unwrap().recall >= pts.last().unwrap().recall);
        // At threshold 0: precision = 3/5; at 0.9: precision = 1/1.
        let p0 = pts.iter().find(|p| p.threshold == 0.0).unwrap();
        assert!((p0.precision - 0.6).abs() < 1e-12);
        assert!((p0.recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tp_excludes_incorrect_high_scores() {
        let curve = PrCurve::from_samples(&samples());
        let tp = curve.threshold_for_precision(0.99);
        // Threshold must be at least 0.85 so the wrong 0.85 sample is cut.
        assert!(tp >= 0.85);
        // And the correct 0.9/0.95 samples remain above it.
        assert!(tp < 0.9);
    }

    #[test]
    fn degenerate_all_wrong_falls_back() {
        let s = vec![ScoredSample {
            score: 0.5,
            correct: false,
        }];
        let curve = PrCurve::from_samples(&s);
        let tp = curve.threshold_for_precision(0.99);
        assert!(tp >= 0.5, "fallback excludes everything");
    }

    #[test]
    fn accuracy_helper() {
        assert_eq!(accuracy(&[]), 0.0);
        assert_eq!(accuracy(&[true, false, true, true]), 0.75);
    }
}

/// A point on the receiver-operating-characteristic curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RocPoint {
    /// Classification threshold producing this point.
    pub threshold: f64,
    /// True-positive rate, `TP / (TP + FN)`.
    pub tpr: f64,
    /// False-positive rate, `FP / (FP + TN)`.
    pub fpr: f64,
}

/// The ROC curve of a scored sample set.
///
/// The paper chooses PR over ROC for selecting `T_p` because the
/// Tier-predictor's dataset is highly imbalanced (§V-B, citing Davis &
/// Goadrich); both curves are provided so that comparison is reproducible.
///
/// # Examples
///
/// ```
/// use m3d_gnn::{RocCurve, ScoredSample};
///
/// let samples = vec![
///     ScoredSample { score: 0.9, correct: true },
///     ScoredSample { score: 0.2, correct: false },
/// ];
/// let roc = RocCurve::from_samples(&samples);
/// assert!((roc.auc() - 1.0).abs() < 1e-9, "perfect separation");
/// ```
#[derive(Clone, Debug, Default)]
pub struct RocCurve {
    points: Vec<RocPoint>,
}

impl RocCurve {
    /// Sweeps the threshold over every distinct score (plus 0).
    pub fn from_samples(samples: &[ScoredSample]) -> Self {
        let mut thresholds: Vec<f64> = samples.iter().map(|s| s.score).collect();
        thresholds.push(0.0);
        thresholds.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
        thresholds.dedup();
        let pos = samples.iter().filter(|s| s.correct).count() as f64;
        let neg = samples.len() as f64 - pos;
        let points = thresholds
            .iter()
            .map(|&threshold| {
                let tp = samples
                    .iter()
                    .filter(|s| s.correct && s.score > threshold)
                    .count() as f64;
                let fp = samples
                    .iter()
                    .filter(|s| !s.correct && s.score > threshold)
                    .count() as f64;
                RocPoint {
                    threshold,
                    tpr: if pos == 0.0 { 0.0 } else { tp / pos },
                    fpr: if neg == 0.0 { 0.0 } else { fp / neg },
                }
            })
            .collect();
        RocCurve { points }
    }

    /// The curve points by ascending threshold (descending FPR).
    pub fn points(&self) -> &[RocPoint] {
        &self.points
    }

    /// Area under the curve by trapezoidal integration (0.5 = chance,
    /// 1.0 = perfect ranking).
    pub fn auc(&self) -> f64 {
        // Points are ordered by ascending threshold → descending FPR.
        let mut auc = 0.0;
        for w in self.points.windows(2) {
            let (a, b) = (w[0], w[1]);
            auc += (a.fpr - b.fpr) * (a.tpr + b.tpr) / 2.0;
        }
        // Close the curve at (0,0) and (1,1).
        if let (Some(first), Some(last)) = (self.points.first(), self.points.last()) {
            auc += (1.0 - first.fpr) * (1.0 + first.tpr) / 2.0;
            auc += last.fpr * last.tpr / 2.0;
        }
        auc
    }
}

#[cfg(test)]
mod roc_tests {
    use super::*;

    #[test]
    fn perfect_ranking_has_auc_one() {
        let samples = vec![
            ScoredSample {
                score: 0.9,
                correct: true,
            },
            ScoredSample {
                score: 0.8,
                correct: true,
            },
            ScoredSample {
                score: 0.3,
                correct: false,
            },
            ScoredSample {
                score: 0.1,
                correct: false,
            },
        ];
        assert!((RocCurve::from_samples(&samples).auc() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inverted_ranking_has_auc_zero() {
        let samples = vec![
            ScoredSample {
                score: 0.1,
                correct: true,
            },
            ScoredSample {
                score: 0.9,
                correct: false,
            },
        ];
        assert!(RocCurve::from_samples(&samples).auc() < 1e-9);
    }

    #[test]
    fn random_ranking_is_near_half() {
        // Alternating scores/labels → AUC 0.5 by symmetry.
        let samples: Vec<ScoredSample> = (0..40)
            .map(|i| ScoredSample {
                score: f64::from(i) / 40.0,
                correct: i % 2 == 0,
            })
            .collect();
        let auc = RocCurve::from_samples(&samples).auc();
        assert!((auc - 0.5).abs() < 0.05, "auc {auc}");
    }

    #[test]
    fn tpr_and_fpr_are_monotone_in_threshold() {
        let samples: Vec<ScoredSample> = (0..25)
            .map(|i| ScoredSample {
                score: f64::from(i * 7 % 25) / 25.0,
                correct: i % 3 != 0,
            })
            .collect();
        let roc = RocCurve::from_samples(&samples);
        for w in roc.points().windows(2) {
            assert!(w[0].tpr >= w[1].tpr);
            assert!(w[0].fpr >= w[1].fpr);
        }
    }
}
