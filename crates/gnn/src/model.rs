//! GCN models: graph-level classification (Tier-predictor / Classifier)
//! and node-level classification (MIV-pinpointer).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::graph::GcnGraph;
use crate::guard::{
    EpochReport, GuardAction, GuardCause, GuardConfig, GuardEvent, GuardPolicy, NumericFault,
    TrainReport,
};
use crate::layers::{
    sigmoid, sigmoid_bce, softmax, softmax_ce, DenseLayer, GcnCache, GcnLayer, Param,
};
use crate::matrix::Matrix;

/// Per-sample parameter gradients of a classifier, computed without
/// mutating the model so training workers can run concurrently. Each entry
/// is a `(dW, db)` pair; `layers` is empty when the backbone is frozen.
struct SampleGrads {
    loss: f32,
    layers: Vec<(Matrix, Matrix)>,
    head_hidden: Option<(Matrix, Matrix)>,
    head: (Matrix, Matrix),
}

/// One graph with its node feature matrix.
#[derive(Clone, Debug)]
pub struct GraphData {
    /// The (sub-)graph topology.
    pub graph: GcnGraph,
    /// Node features, `n × f`.
    pub features: Matrix,
}

impl GraphData {
    /// Bundles a graph and its features.
    ///
    /// # Panics
    ///
    /// Panics if feature rows don't match the node count.
    pub fn new(graph: GcnGraph, features: Matrix) -> Self {
        assert_eq!(graph.node_count(), features.rows());
        GraphData { graph, features }
    }
}

/// Training hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Gradient-accumulation batch size.
    pub batch_size: usize,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 40,
            learning_rate: 0.01,
            batch_size: 16,
            seed: 1,
        }
    }
}

/// The mutable position of a training run: epoch counter, Adam step count,
/// current learning rate, shuffle RNG, and the shuffle order.
///
/// The order vector is shuffled *in place* at the start of every epoch, so
/// epoch `k`'s permutation is the composition of `k` shuffles — it cannot
/// be reconstructed from the seed and epoch number alone. A resumable
/// checkpoint therefore must carry the cursor verbatim
/// ([`TrainCursor::rng_state`] + [`TrainCursor::order`]), which is exactly
/// what `m3d-resilient` snapshots. Restoring a cursor with
/// [`TrainCursor::restore`] and continuing produces weights bit-identical
/// to the uninterrupted run.
#[derive(Clone, Debug)]
pub struct TrainCursor {
    /// Completed epochs; the next `train_epoch` call runs this epoch.
    pub epoch: usize,
    /// 1-based Adam step count (batches stepped so far).
    pub t: u64,
    /// Current learning rate. Starts at [`TrainConfig::learning_rate`];
    /// only [`GuardPolicy::RollbackAndHalveLr`] changes it.
    pub lr: f32,
    rng: StdRng,
    order: Vec<usize>,
}

impl TrainCursor {
    /// A fresh cursor at epoch 0 for `n_samples` training samples.
    pub fn start(cfg: &TrainConfig, n_samples: usize) -> Self {
        TrainCursor {
            epoch: 0,
            t: 0,
            lr: cfg.learning_rate,
            rng: StdRng::seed_from_u64(cfg.seed),
            order: (0..n_samples).collect(),
        }
    }

    /// The raw shuffle-RNG state, for checkpointing.
    pub fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// The current shuffle order, for checkpointing.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Reconstructs a cursor captured mid-run by a checkpoint.
    pub fn restore(epoch: usize, t: u64, lr: f32, rng_state: u64, order: Vec<usize>) -> Self {
        TrainCursor {
            epoch,
            t,
            lr,
            rng: StdRng::from_state(rng_state),
            order,
        }
    }
}

/// A GCN graph classifier: stacked GCN layers, mean graph pooling, and a
/// dense softmax head (the paper's Tier-predictor architecture, with the
/// two-dimensional `[p_top, p_bottom]` output).
///
/// # Examples
///
/// ```
/// use m3d_gnn::{GcnClassifier, GcnGraph, GraphData, Matrix, TrainConfig};
///
/// let data = GraphData::new(
///     GcnGraph::from_edges(3, &[(0, 1), (1, 2)]),
///     Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]),
/// );
/// let model = GcnClassifier::new(2, 8, 2, 2, 1);
/// let probs = model.predict_proba(&data);
/// assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
/// ```
#[derive(Clone, Debug)]
pub struct GcnClassifier {
    layers: Vec<GcnLayer>,
    /// Optional hidden classification layer (ReLU), used by transfer
    /// models ("trainable classification layers" in the paper).
    head_hidden: Option<DenseLayer>,
    head: DenseLayer,
    /// When `true`, the GCN backbone is not updated during training
    /// (network-based transfer learning: pre-trained hidden layers +
    /// trainable classification layers).
    pub freeze_backbone: bool,
}

impl GcnClassifier {
    /// A fresh model: `num_layers` GCN layers of width `hidden`, then a
    /// dense head to `num_classes` logits.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0`.
    pub fn new(
        in_dim: usize,
        hidden: usize,
        num_layers: usize,
        num_classes: usize,
        seed: u64,
    ) -> Self {
        assert!(num_layers > 0, "need at least one GCN layer");
        let mut layers = Vec::with_capacity(num_layers);
        for l in 0..num_layers {
            let d_in = if l == 0 { in_dim } else { hidden };
            layers.push(GcnLayer::new(d_in, hidden, seed.wrapping_add(l as u64)));
        }
        GcnClassifier {
            layers,
            head_hidden: None,
            head: DenseLayer::new(hidden, num_classes, seed.wrapping_add(97)),
            freeze_backbone: false,
        }
    }

    /// Builds a transfer model: the pre-trained backbone of `base` with a
    /// fresh classification head (the paper's GNN-based Classifier).
    pub fn transfer_from(base: &GcnClassifier, num_classes: usize, seed: u64) -> Self {
        let hidden = base.layers.last().expect("non-empty").out_dim();
        GcnClassifier {
            layers: base.layers.clone(),
            head_hidden: Some(DenseLayer::new(hidden, hidden, seed.wrapping_add(7))),
            head: DenseLayer::new(hidden, num_classes, seed),
            freeze_backbone: true,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Runs the backbone; returns per-layer caches and the final node
    /// embedding matrix.
    fn backbone(&self, data: &GraphData) -> (Vec<(Matrix, GcnCache)>, Matrix) {
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut h = data.features.clone();
        for layer in &self.layers {
            let (next, cache) = layer.forward(&data.graph, &h);
            caches.push((h, cache));
            h = next;
        }
        (caches, h)
    }

    /// Mean-pooled graph embedding (pre-head). Used for the paper's
    /// PCA feature visualization (Fig. 5) and as the transfer interface.
    pub fn pooled_embedding(&self, data: &GraphData) -> Vec<f32> {
        let (_, h) = self.backbone(data);
        h.col_means()
    }

    /// Class probabilities for one graph.
    pub fn predict_proba(&self, data: &GraphData) -> Vec<f32> {
        let pooled = Matrix::from_vec(
            1,
            self.layers.last().expect("non-empty").out_dim(),
            self.pooled_embedding(data),
        );
        let pre_head = self.apply_head_hidden(&pooled).0;
        softmax(self.head.forward(&pre_head).row(0))
    }

    /// Applies the optional hidden head layer with ReLU; returns the
    /// activated output and the pre-activation (for backprop).
    fn apply_head_hidden(&self, pooled: &Matrix) -> (Matrix, Option<Matrix>) {
        match &self.head_hidden {
            None => (pooled.clone(), None),
            Some(layer) => {
                let z = layer.forward(pooled);
                let mut h = z.clone();
                for v in h.data_mut() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
                (h, Some(z))
            }
        }
    }

    /// The most probable class.
    pub fn predict(&self, data: &GraphData) -> usize {
        let p = self.predict_proba(data);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .expect("at least one class")
    }

    /// Trains with Adam on softmax cross-entropy; returns the final-epoch
    /// mean training loss.
    ///
    /// Per-sample forward/backward passes within a minibatch fan out over
    /// the [`m3d_par`] pool; gradients are merged in sample-index order
    /// before the Adam step, so the trained weights are bitwise identical
    /// at any thread count (`M3D_THREADS=1` included).
    pub fn fit(&mut self, samples: &[(&GraphData, usize)], cfg: &TrainConfig) -> f32 {
        let mut span = m3d_obs::span("gnn_fit");
        span.add("samples", samples.len() as u64);
        let guard = GuardConfig::off();
        let mut cursor = TrainCursor::start(cfg, samples.len());
        let mut last_loss = 0.0f32;
        while cursor.epoch < cfg.epochs {
            let ep = self
                .train_epoch(samples, cfg, &mut cursor, &guard)
                .expect("guards disabled: no numeric fault can surface");
            last_loss = ep.mean_loss;
        }
        last_loss
    }

    /// [`GcnClassifier::fit`] with numeric guardrails: per-sample losses
    /// and merged gradients are checked for NaN/Inf before every Adam step
    /// and the configured [`GuardPolicy`] applied. Returns a
    /// [`TrainReport`] recording every intervention, or a typed
    /// [`NumericFault`] under [`GuardPolicy::Abort`].
    ///
    /// On healthy data the result is bit-identical to [`GcnClassifier::fit`]
    /// — the checks are pure reads.
    pub fn fit_guarded(
        &mut self,
        samples: &[(&GraphData, usize)],
        cfg: &TrainConfig,
        guard: &GuardConfig,
    ) -> Result<TrainReport, NumericFault> {
        let mut cursor = TrainCursor::start(cfg, samples.len());
        self.resume_guarded(samples, cfg, guard, &mut cursor)
    }

    /// Runs guarded training from an existing cursor (fresh or restored
    /// from a checkpoint) until `cfg.epochs` epochs have completed.
    pub fn resume_guarded(
        &mut self,
        samples: &[(&GraphData, usize)],
        cfg: &TrainConfig,
        guard: &GuardConfig,
        cursor: &mut TrainCursor,
    ) -> Result<TrainReport, NumericFault> {
        let mut span = m3d_obs::span("gnn_fit");
        span.add("samples", samples.len() as u64);
        let mut report = TrainReport::default();
        while cursor.epoch < cfg.epochs {
            report.absorb(self.train_epoch(samples, cfg, cursor, guard)?);
        }
        Ok(report)
    }

    /// Runs exactly one training epoch from `cursor`, advancing it.
    ///
    /// This is the unit the crash-safe trainer in `m3d-resilient` wraps:
    /// it checkpoints the model plus cursor between epochs. With
    /// `guard.enabled` the batch loop checks per-sample losses and merged
    /// gradients before stepping; a detected fault is handled per
    /// `guard.policy` (see [`GuardConfig`]). After an `Err` the cursor is
    /// mid-epoch and must not be reused.
    ///
    /// # Panics
    ///
    /// Panics if the cursor was built for a different sample count.
    pub fn train_epoch(
        &mut self,
        samples: &[(&GraphData, usize)],
        cfg: &TrainConfig,
        cursor: &mut TrainCursor,
        guard: &GuardConfig,
    ) -> Result<EpochReport, NumericFault> {
        assert_eq!(
            cursor.order.len(),
            samples.len(),
            "cursor built for a different sample count"
        );
        // Observability here is a pure read of training state (loss,
        // merged gradients, lr) recorded on the orchestrating thread —
        // it never changes RNG draws, merge order, or trained weights.
        let obs_on = m3d_obs::enabled();
        let mut span = m3d_obs::span("train_epoch");
        let mut grad_norm_sum = 0.0f64;
        let mut steps = 0u64;
        cursor.order.shuffle(&mut cursor.rng);
        let epoch = cursor.epoch;
        let order = cursor.order.clone();
        let mut epoch_loss = 0.0f32;
        let mut events = Vec::new();
        for (batch, chunk) in order.chunks(cfg.batch_size).enumerate() {
            self.zero_grads();
            let model = &*self;
            // Adaptive granularity: tiny batches (small graphs × narrow
            // features) run serial — pool dispatch would cost more than
            // it saves — via the calibrated `m3d-par` cost gate. Serial
            // and parallel paths are bitwise identical, so the gate can
            // only change wall time, never trained weights.
            let work: u64 = chunk
                .iter()
                .map(|&idx| {
                    let (data, _) = samples[idx];
                    data.graph.edge_count() as u64 * data.features.cols().max(1) as u64 * 8
                })
                .sum();
            let grads = m3d_par::with_threads(m3d_par::par_gate(work), || {
                m3d_par::par_map(chunk, |&idx| {
                    let (data, label) = samples[idx];
                    model.sample_grads(data, label)
                })
            });
            let loss_before = epoch_loss;
            let mut fault = None;
            for (&idx, g) in chunk.iter().zip(&grads) {
                if guard.enabled && fault.is_none() && !g.loss.is_finite() {
                    fault = Some(GuardCause::NonFiniteLoss { sample: idx });
                }
                epoch_loss += g.loss;
                self.apply_grads(g);
            }
            if guard.enabled && fault.is_none() && !self.grads_finite() {
                fault = Some(GuardCause::NonFiniteGrad);
            }
            if let Some(cause) = fault {
                match guard.policy {
                    GuardPolicy::Abort => {
                        m3d_obs::counter("gnn.guard.aborted", 1);
                        return Err(NumericFault {
                            epoch,
                            batch,
                            cause,
                        });
                    }
                    GuardPolicy::SkipBatch => {
                        epoch_loss = loss_before;
                        m3d_obs::counter("gnn.guard.skipped_batch", 1);
                        events.push(GuardEvent {
                            epoch,
                            batch,
                            cause,
                            action: GuardAction::SkippedBatch,
                        });
                        continue;
                    }
                    GuardPolicy::RollbackAndHalveLr => {
                        epoch_loss = loss_before;
                        cursor.lr = (cursor.lr * 0.5).max(guard.min_lr);
                        m3d_obs::counter("gnn.guard.rolled_back", 1);
                        events.push(GuardEvent {
                            epoch,
                            batch,
                            cause,
                            action: GuardAction::RolledBack { new_lr: cursor.lr },
                        });
                        continue;
                    }
                }
            }
            if obs_on {
                grad_norm_sum += self.grad_l2();
                steps += 1;
            }
            cursor.t += 1;
            self.step(cursor.lr, cursor.t);
        }
        cursor.epoch += 1;
        let mean_loss = epoch_loss / samples.len().max(1) as f32;
        if obs_on {
            let n_batches = samples.len().div_ceil(cfg.batch_size.max(1)) as u64;
            span.add("batches", n_batches);
            span.add("guard_events", events.len() as u64);
            m3d_obs::counter("gnn.train.epochs", 1);
            m3d_obs::counter("gnn.train.batches", n_batches);
            m3d_obs::series_push("gnn.epoch_loss", f64::from(mean_loss));
            m3d_obs::series_push("gnn.lr", f64::from(cursor.lr));
            let mean_norm = if steps > 0 {
                grad_norm_sum / steps as f64
            } else {
                0.0
            };
            m3d_obs::series_push("gnn.grad_norm", mean_norm);
        }
        Ok(EpochReport { mean_loss, events })
    }

    /// L2 norm of every merged gradient accumulator (pure read; only
    /// computed when observability is recording).
    fn grad_l2(&self) -> f64 {
        let sum: f64 = self
            .params()
            .iter()
            .flat_map(|p| p.grad().data().iter())
            .map(|&g| f64::from(g) * f64::from(g))
            .sum();
        sum.sqrt()
    }

    /// Whether every merged gradient accumulator is finite (pure read).
    fn grads_finite(&self) -> bool {
        self.params()
            .iter()
            .all(|p| p.grad().data().iter().all(|g| g.is_finite()))
    }

    /// Every trainable parameter, in the same fixed order as
    /// [`GcnClassifier::flat_params`] (GCN layers, hidden head, head;
    /// weights before biases). The checkpoint format is defined over this
    /// order.
    pub fn params(&self) -> Vec<&Param> {
        let mut out = Vec::new();
        for l in &self.layers {
            out.push(&l.w);
            out.push(&l.b);
        }
        if let Some(h) = &self.head_hidden {
            out.push(&h.w);
            out.push(&h.b);
        }
        out.push(&self.head.w);
        out.push(&self.head.b);
        out
    }

    /// Mutable access to every trainable parameter, in
    /// [`GcnClassifier::params`] order (checkpoint restore).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        for l in &mut self.layers {
            out.push(&mut l.w);
            out.push(&mut l.b);
        }
        if let Some(h) = &mut self.head_hidden {
            out.push(&mut h.w);
            out.push(&mut h.b);
        }
        out.push(&mut self.head.w);
        out.push(&mut self.head.b);
        out
    }

    /// Forward + backward for one sample without mutating the model.
    fn sample_grads(&self, data: &GraphData, label: usize) -> SampleGrads {
        let (caches, h) = self.backbone(data);
        let n = h.rows().max(1);
        let hidden = h.cols();
        let pooled = Matrix::from_vec(1, hidden, h.col_means());
        let (pre_head, head_z) = self.apply_head_hidden(&pooled);
        let logits = self.head.forward(&pre_head);
        let (loss, dlogits) = softmax_ce(logits.row(0), label);
        let dlogits = Matrix::from_vec(1, logits.cols(), dlogits);
        let (head_dw, head_db, mut dpooled) = self.head.backward_wrt(&pre_head, &dlogits);
        let mut head_hidden_g = None;
        if let (Some(layer), Some(z)) = (self.head_hidden.as_ref(), head_z) {
            // ReLU backward on the hidden head, then its dense backward.
            for (d, &zv) in dpooled.data_mut().iter_mut().zip(z.data()) {
                if zv <= 0.0 {
                    *d = 0.0;
                }
            }
            let (dw, db, dp) = layer.backward_wrt(&pooled, &dpooled);
            head_hidden_g = Some((dw, db));
            dpooled = dp;
        }
        let mut layer_grads = Vec::new();
        if !self.freeze_backbone {
            // Mean-pool backward: broadcast /n to every node row.
            let mut dh = Matrix::zeros(h.rows(), hidden);
            for r in 0..h.rows() {
                for (d, &g) in dh.row_mut(r).iter_mut().zip(dpooled.row(0)) {
                    *d = g / n as f32;
                }
            }
            layer_grads.reserve(self.layers.len());
            for (layer, (_, cache)) in self.layers.iter().zip(&caches).rev() {
                let (dw, db, dx) = layer.backward_wrt(&data.graph, cache, &dh);
                layer_grads.push((dw, db));
                dh = dx;
            }
            layer_grads.reverse();
        }
        SampleGrads {
            loss,
            layers: layer_grads,
            head_hidden: head_hidden_g,
            head: (head_dw, head_db),
        }
    }

    /// Adds one sample's gradients into the stored accumulators.
    fn apply_grads(&mut self, g: &SampleGrads) {
        for (layer, (dw, db)) in self.layers.iter_mut().zip(&g.layers) {
            layer.accumulate(dw, db);
        }
        if let (Some(layer), Some((dw, db))) = (self.head_hidden.as_mut(), g.head_hidden.as_ref()) {
            layer.accumulate(dw, db);
        }
        self.head.accumulate(&g.head.0, &g.head.1);
    }

    /// Every trainable parameter flattened in a fixed order (GCN layers,
    /// hidden head, head; weights before biases). Used by the determinism
    /// tests to compare trained models bitwise.
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::new();
        for l in &self.layers {
            out.extend_from_slice(l.w.value.data());
            out.extend_from_slice(l.b.value.data());
        }
        if let Some(h) = &self.head_hidden {
            out.extend_from_slice(h.w.value.data());
            out.extend_from_slice(h.b.value.data());
        }
        out.extend_from_slice(self.head.w.value.data());
        out.extend_from_slice(self.head.b.value.data());
        out
    }

    fn zero_grads(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
        if let Some(h) = &mut self.head_hidden {
            h.zero_grad();
        }
        self.head.zero_grad();
    }

    fn step(&mut self, lr: f32, t: u64) {
        if !self.freeze_backbone {
            for l in &mut self.layers {
                l.step(lr, t);
            }
        }
        if let Some(h) = &mut self.head_hidden {
            h.step(lr, t);
        }
        self.head.step(lr, t);
    }

    /// Classification accuracy over a labelled set.
    pub fn accuracy(&self, samples: &[(&GraphData, usize)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let hits = samples
            .iter()
            .filter(|(d, l)| self.predict(d) == *l)
            .count();
        hits as f64 / samples.len() as f64
    }
}

/// A GCN node classifier: stacked GCN layers and a per-node sigmoid head
/// (the paper's MIV-pinpointer — node classification over MIV nodes, where
/// local information matters more than the global pooled representation).
#[derive(Clone, Debug)]
pub struct NodeClassifier {
    layers: Vec<GcnLayer>,
    head: DenseLayer,
}

impl NodeClassifier {
    /// A fresh model with `num_layers` GCN layers of width `hidden`.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0`.
    pub fn new(in_dim: usize, hidden: usize, num_layers: usize, seed: u64) -> Self {
        assert!(num_layers > 0, "need at least one GCN layer");
        let mut layers = Vec::with_capacity(num_layers);
        for l in 0..num_layers {
            let d_in = if l == 0 { in_dim } else { hidden };
            layers.push(GcnLayer::new(
                d_in,
                hidden,
                seed.wrapping_add(11 + l as u64),
            ));
        }
        NodeClassifier {
            layers,
            head: DenseLayer::new(hidden, 1, seed.wrapping_add(131)),
        }
    }

    fn backbone(&self, data: &GraphData) -> (Vec<(Matrix, GcnCache)>, Matrix) {
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut h = data.features.clone();
        for layer in &self.layers {
            let (next, cache) = layer.forward(&data.graph, &h);
            caches.push((h, cache));
            h = next;
        }
        (caches, h)
    }

    /// Fault probability for the listed nodes.
    pub fn predict_nodes(&self, data: &GraphData, nodes: &[usize]) -> Vec<f32> {
        let (_, h) = self.backbone(data);
        let logits = self.head.forward(&h);
        nodes.iter().map(|&n| sigmoid(logits[(n, 0)])).collect()
    }

    /// Trains on per-node binary labels; `pos_weight` scales the loss of
    /// positive (faulty) nodes to counter class imbalance. Returns the
    /// final-epoch mean loss.
    ///
    /// Like [`GcnClassifier::fit`], per-sample passes run on the
    /// [`m3d_par`] pool with gradients merged in sample-index order, so
    /// results are bitwise thread-count independent.
    pub fn fit(
        &mut self,
        samples: &[(&GraphData, &[(usize, bool)])],
        pos_weight: f32,
        cfg: &TrainConfig,
    ) -> f32 {
        let guard = GuardConfig::off();
        let mut cursor = TrainCursor::start(cfg, samples.len());
        let mut last_loss = 0.0f32;
        while cursor.epoch < cfg.epochs {
            let ep = self
                .train_epoch(samples, pos_weight, cfg, &mut cursor, &guard)
                .expect("guards disabled: no numeric fault can surface");
            last_loss = ep.mean_loss;
        }
        last_loss
    }

    /// [`NodeClassifier::fit`] with numeric guardrails — the node-level
    /// counterpart of [`GcnClassifier::fit_guarded`].
    pub fn fit_guarded(
        &mut self,
        samples: &[(&GraphData, &[(usize, bool)])],
        pos_weight: f32,
        cfg: &TrainConfig,
        guard: &GuardConfig,
    ) -> Result<TrainReport, NumericFault> {
        let mut cursor = TrainCursor::start(cfg, samples.len());
        let mut report = TrainReport::default();
        while cursor.epoch < cfg.epochs {
            report.absorb(self.train_epoch(samples, pos_weight, cfg, &mut cursor, guard)?);
        }
        Ok(report)
    }

    /// Runs exactly one training epoch from `cursor`, advancing it — the
    /// node-level counterpart of [`GcnClassifier::train_epoch`], with the
    /// same guard semantics.
    ///
    /// # Panics
    ///
    /// Panics if the cursor was built for a different sample count.
    pub fn train_epoch(
        &mut self,
        samples: &[(&GraphData, &[(usize, bool)])],
        pos_weight: f32,
        cfg: &TrainConfig,
        cursor: &mut TrainCursor,
        guard: &GuardConfig,
    ) -> Result<EpochReport, NumericFault> {
        assert_eq!(
            cursor.order.len(),
            samples.len(),
            "cursor built for a different sample count"
        );
        cursor.order.shuffle(&mut cursor.rng);
        let epoch = cursor.epoch;
        let order = cursor.order.clone();
        let mut epoch_loss = 0.0f32;
        let mut events = Vec::new();
        for (batch, chunk) in order.chunks(cfg.batch_size).enumerate() {
            for l in &mut self.layers {
                l.zero_grad();
            }
            self.head.zero_grad();
            let model = &*self;
            // Same adaptive-granularity gate as `GcnClassifier`: the
            // decision is timing-derived but the gated paths are bitwise
            // identical, so results never depend on it.
            let work: u64 = chunk
                .iter()
                .map(|&idx| {
                    let (data, _) = samples[idx];
                    data.graph.edge_count() as u64 * data.features.cols().max(1) as u64 * 8
                })
                .sum();
            let grads = m3d_par::with_threads(m3d_par::par_gate(work), || {
                m3d_par::par_map(chunk, |&idx| {
                    let (data, labels) = samples[idx];
                    model.sample_grads(data, labels, pos_weight)
                })
            });
            let loss_before = epoch_loss;
            let mut fault = None;
            for (&idx, g) in chunk.iter().zip(&grads) {
                if guard.enabled && fault.is_none() && !g.loss.is_finite() {
                    fault = Some(GuardCause::NonFiniteLoss { sample: idx });
                }
                epoch_loss += g.loss;
                for (layer, (dw, db)) in self.layers.iter_mut().zip(&g.layers) {
                    layer.accumulate(dw, db);
                }
                self.head.accumulate(&g.head.0, &g.head.1);
            }
            if guard.enabled && fault.is_none() && !self.grads_finite() {
                fault = Some(GuardCause::NonFiniteGrad);
            }
            if let Some(cause) = fault {
                match guard.policy {
                    GuardPolicy::Abort => {
                        return Err(NumericFault {
                            epoch,
                            batch,
                            cause,
                        })
                    }
                    GuardPolicy::SkipBatch => {
                        epoch_loss = loss_before;
                        events.push(GuardEvent {
                            epoch,
                            batch,
                            cause,
                            action: GuardAction::SkippedBatch,
                        });
                        continue;
                    }
                    GuardPolicy::RollbackAndHalveLr => {
                        epoch_loss = loss_before;
                        cursor.lr = (cursor.lr * 0.5).max(guard.min_lr);
                        events.push(GuardEvent {
                            epoch,
                            batch,
                            cause,
                            action: GuardAction::RolledBack { new_lr: cursor.lr },
                        });
                        continue;
                    }
                }
            }
            cursor.t += 1;
            for l in &mut self.layers {
                l.step(cursor.lr, cursor.t);
            }
            self.head.step(cursor.lr, cursor.t);
        }
        cursor.epoch += 1;
        Ok(EpochReport {
            mean_loss: epoch_loss / samples.len().max(1) as f32,
            events,
        })
    }

    /// Whether every merged gradient accumulator is finite (pure read).
    fn grads_finite(&self) -> bool {
        self.params()
            .iter()
            .all(|p| p.grad().data().iter().all(|g| g.is_finite()))
    }

    /// Every trainable parameter, in [`NodeClassifier::flat_params`]
    /// order.
    pub fn params(&self) -> Vec<&Param> {
        let mut out = Vec::new();
        for l in &self.layers {
            out.push(&l.w);
            out.push(&l.b);
        }
        out.push(&self.head.w);
        out.push(&self.head.b);
        out
    }

    /// Mutable access to every trainable parameter, in
    /// [`NodeClassifier::params`] order (checkpoint restore).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        for l in &mut self.layers {
            out.push(&mut l.w);
            out.push(&mut l.b);
        }
        out.push(&mut self.head.w);
        out.push(&mut self.head.b);
        out
    }

    /// Forward + backward for one sample without mutating the model.
    fn sample_grads(
        &self,
        data: &GraphData,
        labels: &[(usize, bool)],
        pos_weight: f32,
    ) -> SampleGrads {
        if labels.is_empty() {
            // No layer entries and an all-zero head: accumulates nothing.
            return SampleGrads {
                loss: 0.0,
                layers: Vec::new(),
                head_hidden: None,
                head: (
                    Matrix::zeros(self.head.w.value.rows(), self.head.w.value.cols()),
                    Matrix::zeros(1, self.head.w.value.cols()),
                ),
            };
        }
        let (caches, h) = self.backbone(data);
        let logits = self.head.forward(&h);
        let mut dlogits = Matrix::zeros(logits.rows(), 1);
        let mut loss = 0.0f32;
        let norm = 1.0 / labels.len() as f32;
        for &(node, target) in labels {
            let w = if target { pos_weight } else { 1.0 };
            let (l, d) = sigmoid_bce(logits[(node, 0)], target, w);
            loss += l * norm;
            dlogits[(node, 0)] = d * norm;
        }
        let (head_dw, head_db, mut dh) = self.head.backward_wrt(&h, &dlogits);
        let mut layer_grads = Vec::with_capacity(self.layers.len());
        for (layer, (_, cache)) in self.layers.iter().zip(&caches).rev() {
            let (dw, db, dx) = layer.backward_wrt(&data.graph, cache, &dh);
            layer_grads.push((dw, db));
            dh = dx;
        }
        layer_grads.reverse();
        SampleGrads {
            loss,
            layers: layer_grads,
            head_hidden: None,
            head: (head_dw, head_db),
        }
    }

    /// Every trainable parameter flattened in a fixed order (see
    /// [`GcnClassifier::flat_params`]).
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::new();
        for l in &self.layers {
            out.extend_from_slice(l.w.value.data());
            out.extend_from_slice(l.b.value.data());
        }
        out.extend_from_slice(self.head.w.value.data());
        out.extend_from_slice(self.head.b.value.data());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// A toy separable task: class = whether the mean of feature 0 is
    /// positive.
    fn toy_dataset(n: usize, seed: u64) -> Vec<(GraphData, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let nodes = rng.gen_range(4..9);
                let label = rng.gen_range(0..2usize);
                let edges: Vec<(usize, usize)> = (1..nodes).map(|v| (v - 1, v)).collect();
                let mut feats = Matrix::zeros(nodes, 3);
                for r in 0..nodes {
                    let base = if label == 0 { 1.0 } else { -1.0 };
                    feats[(r, 0)] = base + rng.gen_range(-0.3..0.3);
                    feats[(r, 1)] = rng.gen_range(-1.0..1.0);
                    feats[(r, 2)] = rng.gen_range(-1.0..1.0);
                }
                (
                    GraphData::new(GcnGraph::from_edges(nodes, &edges), feats),
                    label,
                )
            })
            .collect()
    }

    #[test]
    fn classifier_learns_a_separable_task() {
        let data = toy_dataset(60, 3);
        let refs: Vec<(&GraphData, usize)> = data.iter().map(|(d, l)| (d, *l)).collect();
        let mut model = GcnClassifier::new(3, 8, 2, 2, 5);
        let before = model.accuracy(&refs);
        model.fit(
            &refs,
            &TrainConfig {
                epochs: 30,
                ..TrainConfig::default()
            },
        );
        let after = model.accuracy(&refs);
        assert!(
            after > 0.95 && after > before,
            "training must learn: {before} -> {after}"
        );
    }

    #[test]
    fn transfer_model_freezes_backbone() {
        let data = toy_dataset(30, 7);
        let refs: Vec<(&GraphData, usize)> = data.iter().map(|(d, l)| (d, *l)).collect();
        let mut base = GcnClassifier::new(3, 8, 2, 2, 5);
        base.fit(&refs, &TrainConfig::default());
        let backbone_before: Vec<f32> = base.layers[0].w.value.data().to_vec();
        let mut transfer = GcnClassifier::transfer_from(&base, 2, 42);
        assert!(transfer.freeze_backbone);
        transfer.fit(
            &refs,
            &TrainConfig {
                epochs: 5,
                ..TrainConfig::default()
            },
        );
        assert_eq!(
            transfer.layers[0].w.value.data(),
            backbone_before.as_slice(),
            "frozen backbone must not move"
        );
    }

    #[test]
    fn probabilities_are_normalized() {
        let data = toy_dataset(1, 9);
        let model = GcnClassifier::new(3, 8, 2, 2, 1);
        let p = model.predict_proba(&data[0].0);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn node_classifier_learns_node_labels() {
        // Label = neighbourhood mean of feature 0 is positive — a target a
        // mean-aggregating GCN can express exactly.
        let mut rng = StdRng::seed_from_u64(21);
        let mut samples = Vec::new();
        for _ in 0..30 {
            let nodes = 8usize;
            let edges: Vec<(usize, usize)> = (1..nodes).map(|v| (v - 1, v)).collect();
            let mut feats = Matrix::zeros(nodes, 2);
            for r in 0..nodes {
                feats[(r, 0)] = rng.gen_range(-1.0f32..1.0);
                feats[(r, 1)] = rng.gen_range(-0.2..0.2);
            }
            let mut labels = Vec::new();
            for r in 0..nodes {
                let lo = r.saturating_sub(1);
                let hi = (r + 1).min(nodes - 1);
                let mean: f32 =
                    (lo..=hi).map(|i| feats[(i, 0)]).sum::<f32>() / (hi - lo + 1) as f32;
                labels.push((r, mean > 0.0));
            }
            samples.push((
                GraphData::new(GcnGraph::from_edges(nodes, &edges), feats),
                labels,
            ));
        }
        let refs: Vec<(&GraphData, &[(usize, bool)])> =
            samples.iter().map(|(d, l)| (d, l.as_slice())).collect();
        let mut model = NodeClassifier::new(2, 16, 1, 3);
        model.fit(
            &refs,
            1.0,
            &TrainConfig {
                epochs: 120,
                ..TrainConfig::default()
            },
        );
        let mut hits = 0usize;
        let mut total = 0usize;
        for (d, labels) in &refs {
            let nodes: Vec<usize> = labels.iter().map(|&(n, _)| n).collect();
            let probs = model.predict_nodes(d, &nodes);
            for ((_, want), p) in labels.iter().zip(probs) {
                total += 1;
                if (p > 0.5) == *want {
                    hits += 1;
                }
            }
        }
        assert!(
            hits as f64 / total as f64 > 0.9,
            "node accuracy {hits}/{total}"
        );
    }
}
