//! Principal component analysis via power iteration (for the paper's
//! Fig. 5 feature-distribution visualization).

use crate::matrix::Matrix;

/// Projects samples (rows of `data`) onto their top `k` principal
/// components. Returns an `n × k` matrix of scores.
///
/// Components are extracted by power iteration with deflation on the
/// covariance matrix; deterministic for a given input.
///
/// # Panics
///
/// Panics if `k` exceeds the feature dimension.
///
/// # Examples
///
/// ```
/// use m3d_gnn::{pca_project, Matrix};
///
/// // Points on a line y = 2x: the first PC captures ~all variance.
/// let data = Matrix::from_rows(&[
///     &[1.0, 2.0],
///     &[2.0, 4.0],
///     &[3.0, 6.0],
///     &[4.0, 8.0],
/// ]);
/// let proj = pca_project(&data, 2);
/// let var2: f32 = (0..4).map(|i| proj[(i, 1)].powi(2)).sum();
/// assert!(var2 < 1e-3, "second PC variance must vanish");
/// ```
pub fn pca_project(data: &Matrix, k: usize) -> Matrix {
    let f = data.cols();
    assert!(k <= f, "cannot extract {k} components from {f} features");
    let n = data.rows();
    if n == 0 || k == 0 {
        return Matrix::zeros(n, k);
    }

    // Center the data.
    let means = data.col_means();
    let mut centered = data.clone();
    for r in 0..n {
        for (v, m) in centered.row_mut(r).iter_mut().zip(&means) {
            *v -= m;
        }
    }

    // Covariance (f × f).
    let mut cov = centered.t_matmul(&centered);
    cov.scale(1.0 / n.max(1) as f32);

    let mut components: Vec<Vec<f32>> = Vec::with_capacity(k);
    for comp in 0..k {
        let mut v: Vec<f32> = (0..f)
            .map(|i| if i % (comp + 1) == 0 { 1.0 } else { 0.5 })
            .collect();
        normalize(&mut v);
        for _ in 0..100 {
            // w = cov · v
            let mut w = vec![0.0f32; f];
            for (i, wi) in w.iter_mut().enumerate() {
                *wi = cov.row(i).iter().zip(&v).map(|(&c, &x)| c * x).sum();
            }
            // Deflate against previous components.
            for prev in &components {
                let dot: f32 = w.iter().zip(prev).map(|(&a, &b)| a * b).sum();
                for (wi, &p) in w.iter_mut().zip(prev) {
                    *wi -= dot * p;
                }
            }
            let norm = normalize(&mut w);
            if norm < 1e-12 {
                // Remaining variance is zero: a null component projects
                // everything to 0 rather than leaking a stale direction.
                v = vec![0.0; f];
                break;
            }
            let delta: f32 = w
                .iter()
                .zip(&v)
                .map(|(&a, &b)| (a - b).abs())
                .fold(0.0, f32::max);
            v = w;
            if delta < 1e-7 {
                break;
            }
        }
        components.push(v);
    }

    // Project.
    let mut out = Matrix::zeros(n, k);
    for r in 0..n {
        for (c, comp) in components.iter().enumerate() {
            out[(r, c)] = centered.row(r).iter().zip(comp).map(|(&x, &w)| x * w).sum();
        }
    }
    out
}

fn normalize(v: &mut [f32]) -> f32 {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn first_component_captures_dominant_direction() {
        // Anisotropic Gaussian cloud: variance 100:1 along x vs y.
        let mut rng = StdRng::seed_from_u64(3);
        let rows: Vec<Vec<f32>> = (0..200)
            .map(|_| {
                vec![
                    rng.gen_range(-10.0..10.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-0.1..0.1),
                ]
            })
            .collect();
        let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
        let data = Matrix::from_rows(&refs);
        let proj = pca_project(&data, 2);
        let var = |c: usize| (0..200).map(|r| proj[(r, c)].powi(2)).sum::<f32>();
        assert!(var(0) > var(1) * 5.0, "PC1 must dominate PC2");
    }

    #[test]
    fn projection_is_centered() {
        let data = Matrix::from_rows(&[&[1.0, 5.0], &[3.0, 9.0], &[5.0, 1.0]]);
        let proj = pca_project(&data, 2);
        for c in 0..2 {
            let mean: f32 = (0..3).map(|r| proj[(r, c)]).sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-4);
        }
    }

    #[test]
    fn zero_components_gives_empty_projection() {
        let data = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let proj = pca_project(&data, 0);
        assert_eq!((proj.rows(), proj.cols()), (2, 0));
    }
}
