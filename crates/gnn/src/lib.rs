//! From-scratch graph neural networks for M3D fault localization.
//!
//! The paper builds its models with PyTorch + DGL; no mature Rust GNN
//! stack exists, so this crate implements the needed pieces directly:
//!
//! * [`Matrix`] — dense `f32` kernels,
//! * [`GcnGraph`] — CSR graphs with the paper's mean-neighbour aggregation
//!   (eq. (1), self-loops included),
//! * [`GcnClassifier`] — stacked GCN layers + mean graph pooling + softmax
//!   head (Tier-predictor / Classifier architecture), with network-based
//!   transfer learning ([`GcnClassifier::transfer_from`]),
//! * [`NodeClassifier`] — per-node sigmoid head (MIV-pinpointer),
//! * [`PrCurve`] — precision-recall analysis and the `T_p` threshold rule,
//! * [`pca_project`] — PCA for the Fig. 5 feature visualization,
//! * [`permutation_significance`] — the Table II feature-importance scores.
//!
//! Everything is deterministic in the provided seeds and trains on CPU in
//! seconds at the workspace's benchmark scale.
//!
//! # Examples
//!
//! ```
//! use m3d_gnn::{GcnClassifier, GcnGraph, GraphData, Matrix};
//!
//! let g = GraphData::new(
//!     GcnGraph::from_edges(2, &[(0, 1)]),
//!     Matrix::from_rows(&[&[1.0], &[0.0]]),
//! );
//! let model = GcnClassifier::new(1, 4, 2, 2, 7);
//! let probs = model.predict_proba(&g);
//! assert_eq!(probs.len(), 2);
//! ```

#![warn(missing_docs)]

mod graph;
mod guard;
mod layers;
mod matrix;
mod metrics;
mod model;
mod partition;
mod pca;
mod significance;

pub use graph::GcnGraph;
pub use guard::{
    EpochReport, GuardAction, GuardCause, GuardConfig, GuardEvent, GuardPolicy, NumericFault,
    TrainReport,
};
pub use layers::{sigmoid, softmax, DenseLayer, GcnLayer, Param};
pub use matrix::{spmm, spmm_naive, Matrix};
pub use metrics::{accuracy, PrCurve, PrPoint, RocCurve, RocPoint, ScoredSample};
pub use model::{GcnClassifier, GraphData, NodeClassifier, TrainConfig, TrainCursor};
pub use partition::{
    partition_budget, set_partition_budget, GraphPartition, DEFAULT_PARTITION_BUDGET,
};
pub use pca::pca_project;
pub use significance::permutation_significance;
