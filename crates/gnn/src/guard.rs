//! Numeric guardrails for training: NaN/Inf detection on per-sample losses
//! and merged gradients, with a configurable recovery policy.
//!
//! Training a GCN for hours and losing the run to one non-finite gradient
//! is the failure mode this module removes. Every batch, the epoch runner
//! ([`crate::GcnClassifier::train_epoch`] /
//! [`crate::NodeClassifier::train_epoch`]) checks the per-sample losses and
//! the merged gradient accumulators *before* the Adam step; a detected
//! fault triggers the configured [`GuardPolicy`] and is recorded as a
//! [`GuardEvent`] in the returned report.
//!
//! All checks are pure reads: on healthy data the guarded runner performs
//! bit-for-bit the same arithmetic as the unguarded one, so PR 2's
//! determinism contract (identical weights at any thread count) is
//! preserved.

use std::fmt;
use std::str::FromStr;

/// What to do when a non-finite loss or gradient is detected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GuardPolicy {
    /// Stop training and return a typed [`NumericFault`].
    Abort,
    /// Discard the offending batch (no Adam step, no `t` increment, its
    /// loss excluded from the epoch mean) and continue.
    SkipBatch,
    /// Discard the offending batch *and* halve the learning rate (floored
    /// at [`GuardConfig::min_lr`]) before continuing — the classic
    /// response to a loss blow-up.
    RollbackAndHalveLr,
}

impl fmt::Display for GuardPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GuardPolicy::Abort => "abort",
            GuardPolicy::SkipBatch => "skip",
            GuardPolicy::RollbackAndHalveLr => "rollback",
        })
    }
}

impl FromStr for GuardPolicy {
    type Err = String;

    /// Parses the CLI spelling: `abort`, `skip`, or `rollback`.
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "abort" => Ok(GuardPolicy::Abort),
            "skip" => Ok(GuardPolicy::SkipBatch),
            "rollback" => Ok(GuardPolicy::RollbackAndHalveLr),
            other => Err(format!(
                "unknown guard policy `{other}` (expected abort|skip|rollback)"
            )),
        }
    }
}

/// Guardrail configuration for an epoch runner.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GuardConfig {
    /// Whether the checks run at all. [`GuardConfig::off`] disables them;
    /// the legacy `fit` entry points train with guards off.
    pub enabled: bool,
    /// The recovery policy when a fault is detected.
    pub policy: GuardPolicy,
    /// Floor for [`GuardPolicy::RollbackAndHalveLr`]: the learning rate is
    /// never halved below this.
    pub min_lr: f32,
}

impl GuardConfig {
    /// Guards disabled: the exact legacy training loop.
    pub fn off() -> Self {
        GuardConfig {
            enabled: false,
            policy: GuardPolicy::Abort,
            min_lr: 1e-6,
        }
    }

    /// Guards enabled with the given policy and the default `min_lr`
    /// floor of `1e-6`.
    pub fn new(policy: GuardPolicy) -> Self {
        GuardConfig {
            enabled: true,
            policy,
            min_lr: 1e-6,
        }
    }
}

impl Default for GuardConfig {
    /// Enabled, [`GuardPolicy::Abort`]: surface faults, never mask them.
    fn default() -> Self {
        GuardConfig::new(GuardPolicy::Abort)
    }
}

/// What the guard detected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GuardCause {
    /// A per-sample loss came back NaN or ±Inf.
    NonFiniteLoss {
        /// Index of the offending sample in the training set.
        sample: usize,
    },
    /// The merged gradient accumulators contain a NaN or ±Inf.
    NonFiniteGrad,
}

impl fmt::Display for GuardCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardCause::NonFiniteLoss { sample } => {
                write!(f, "non-finite loss on sample {sample}")
            }
            GuardCause::NonFiniteGrad => f.write_str("non-finite merged gradient"),
        }
    }
}

/// How the guard responded.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GuardAction {
    /// The batch was discarded and training continued.
    SkippedBatch,
    /// The batch was discarded and the learning rate halved.
    RolledBack {
        /// The learning rate after halving.
        new_lr: f32,
    },
}

/// One guard intervention, as recorded in a [`TrainReport`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GuardEvent {
    /// Epoch (0-based) in which the fault was detected.
    pub epoch: usize,
    /// Batch index within the epoch.
    pub batch: usize,
    /// What was detected.
    pub cause: GuardCause,
    /// What the guard did about it.
    pub action: GuardAction,
}

/// Typed error for [`GuardPolicy::Abort`]: training stopped on a detected
/// numeric fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NumericFault {
    /// Epoch (0-based) in which the fault was detected.
    pub epoch: usize,
    /// Batch index within the epoch.
    pub batch: usize,
    /// What was detected.
    pub cause: GuardCause,
}

impl fmt::Display for NumericFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "numeric fault at epoch {} batch {}: {}",
            self.epoch, self.batch, self.cause
        )
    }
}

impl std::error::Error for NumericFault {}

/// Result of one guarded epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochReport {
    /// Mean training loss over the epoch (skipped batches excluded from
    /// the numerator, full sample count in the denominator).
    pub mean_loss: f32,
    /// Guard interventions during the epoch (empty on a clean epoch).
    pub events: Vec<GuardEvent>,
}

/// Result of a guarded training run: the final loss plus every guard
/// intervention that occurred along the way.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrainReport {
    /// Final-epoch mean training loss (0.0 when no epoch ran).
    pub final_loss: f32,
    /// Number of epochs executed by this call (excludes epochs replayed
    /// from a checkpoint).
    pub epochs_run: usize,
    /// Every guard intervention, in detection order.
    pub events: Vec<GuardEvent>,
}

impl TrainReport {
    /// Number of guard interventions recorded.
    pub fn interventions(&self) -> usize {
        self.events.len()
    }

    /// Folds one epoch's outcome into the running report.
    pub fn absorb(&mut self, epoch: EpochReport) {
        self.final_loss = epoch.mean_loss;
        self.epochs_run += 1;
        self.events.extend(epoch.events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parses_cli_spellings() {
        assert_eq!("abort".parse::<GuardPolicy>(), Ok(GuardPolicy::Abort));
        assert_eq!("skip".parse::<GuardPolicy>(), Ok(GuardPolicy::SkipBatch));
        assert_eq!(
            "rollback".parse::<GuardPolicy>(),
            Ok(GuardPolicy::RollbackAndHalveLr)
        );
        assert!("nope".parse::<GuardPolicy>().is_err());
        for p in [
            GuardPolicy::Abort,
            GuardPolicy::SkipBatch,
            GuardPolicy::RollbackAndHalveLr,
        ] {
            assert_eq!(p.to_string().parse::<GuardPolicy>(), Ok(p), "roundtrip");
        }
    }

    #[test]
    fn report_absorbs_epochs() {
        let mut report = TrainReport::default();
        report.absorb(EpochReport {
            mean_loss: 2.0,
            events: vec![GuardEvent {
                epoch: 0,
                batch: 1,
                cause: GuardCause::NonFiniteGrad,
                action: GuardAction::SkippedBatch,
            }],
        });
        report.absorb(EpochReport {
            mean_loss: 1.0,
            events: Vec::new(),
        });
        assert_eq!(report.final_loss, 1.0);
        assert_eq!(report.epochs_run, 2);
        assert_eq!(report.interventions(), 1);
    }

    #[test]
    fn fault_displays_location_and_cause() {
        let f = NumericFault {
            epoch: 3,
            batch: 7,
            cause: GuardCause::NonFiniteLoss { sample: 12 },
        };
        assert_eq!(
            f.to_string(),
            "numeric fault at epoch 3 batch 7: non-finite loss on sample 12"
        );
    }
}
