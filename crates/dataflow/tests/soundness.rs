//! Soundness of the static verdicts against actual simulation.
//!
//! The analyses may be as *incomplete* as they like (missing a constant
//! or an untestable fault only costs performance), but they must never be
//! *unsound*: a net proven constant must never toggle under any input or
//! scan state, and a fault proven untestable must never be detected by
//! the fault simulator. These properties are what makes fault-list
//! pruning bitwise-safe, so they are tested against exhaustive (small
//! designs) and randomized simulation over random builder-driven DAGs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use m3d_dataflow::{ConstProp, StaticProofs};
use m3d_netlist::{GateKind, NetId, Netlist, NetlistBuilder};
use m3d_part::{M3dDesign, PartitionAlgo};
use m3d_tdf::{eval_single_frame, full_fault_list, FaultSim, PatternSet};

/// Builds a random layered DAG biased toward reconvergence (few inputs,
/// operands drawn from all earlier nets, inverters in the mix) so that
/// constant nets actually appear.
fn build(plan: &[(u8, u16, u16, u16)], n_inputs: usize) -> Netlist {
    let mut b = NetlistBuilder::new("random");
    let mut nets: Vec<NetId> = (0..n_inputs)
        .map(|i| b.add_input(&format!("i{i}")))
        .collect();
    for &(kind, a, c, d) in plan {
        let pick = |k: u16| nets[k as usize % nets.len()];
        let net = match kind % 9 {
            0 => b.add_gate(GateKind::Inv, &[pick(a)]),
            1 => b.add_gate(GateKind::And, &[pick(a), pick(c)]),
            2 => b.add_gate(GateKind::Or, &[pick(a), pick(c)]),
            3 => b.add_gate(GateKind::Xor, &[pick(a), pick(c)]),
            4 => b.add_gate(GateKind::Xnor, &[pick(a), pick(c)]),
            5 => b.add_gate(GateKind::Mux2, &[pick(a), pick(c), pick(d)]),
            6 => b.add_gate(GateKind::Oai21, &[pick(a), pick(c), pick(d)]),
            7 => b.add_gate(GateKind::Nand, &[pick(a), pick(c), pick(d)]),
            _ => b.add_dff(pick(a)),
        };
        nets.push(net);
    }
    // Sweep danglers into one OR tree fed to a flop: everything stays
    // connected and at least one flop exists.
    let dangling = b.dangling_nets();
    let mut acc = dangling[0];
    for &n in &dangling[1..] {
        acc = b.add_gate(GateKind::Or, &[acc, n]);
    }
    let q = b.add_dff(acc);
    b.add_output("q", q);
    b.finish().expect("random DAG construction is always valid")
}

/// Every (pi, state) assignment to check constants against: exhaustive
/// when the boundary is small, randomized otherwise.
fn boundary_vectors(nl: &Netlist, seed: u64) -> Vec<(Vec<bool>, Vec<bool>)> {
    let n_pi = nl.inputs().len();
    let n_ff = nl.flops().len();
    let bits = n_pi + n_ff;
    if bits <= 8 {
        (0..1usize << bits)
            .map(|v| {
                let pi = (0..n_pi).map(|i| (v >> i) & 1 == 1).collect();
                let st = (0..n_ff).map(|i| (v >> (n_pi + i)) & 1 == 1).collect();
                (pi, st)
            })
            .collect()
    } else {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..48)
            .map(|_| {
                let pi = (0..n_pi).map(|_| rng.gen::<bool>()).collect();
                let st = (0..n_ff).map(|_| rng.gen::<bool>()).collect();
                (pi, st)
            })
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No net proven constant ever evaluates to the other value, and
    /// every proven alias tracks its root net, for every boundary
    /// assignment (exhaustive on small designs).
    #[test]
    fn proven_constants_never_toggle(
        plan in prop::collection::vec((0u8..9, any::<u16>(), any::<u16>(), any::<u16>()), 3..100),
        n_inputs in 1usize..4,
        seed in any::<u64>(),
    ) {
        let nl = build(&plan, n_inputs);
        let cp = ConstProp::compute(&nl);
        for (pi, state) in boundary_vectors(&nl, seed) {
            let values = eval_single_frame(&nl, &pi, &state);
            for (net, expect) in cp.constant_nets() {
                prop_assert_eq!(
                    values[net.index()], expect,
                    "net {} proven constant {} but evaluated otherwise", net, expect
                );
            }
            for i in 0..nl.net_count() {
                let net = NetId::new(i);
                if let Some((root, inv)) = cp.alias(net) {
                    prop_assert_eq!(values[i], values[root.index()] ^ inv);
                }
            }
        }
    }

    /// No fault proven untestable is ever detected by the fault
    /// simulator, for random pattern sets over random designs.
    #[test]
    fn proven_untestable_faults_are_never_detected(
        plan in prop::collection::vec((0u8..9, any::<u16>(), any::<u16>(), any::<u16>()), 3..80),
        n_inputs in 1usize..4,
        pat_seed in any::<u64>(),
    ) {
        let nl = build(&plan, n_inputs);
        let design = {
            let part = PartitionAlgo::MinCut.partition(&nl, 1);
            M3dDesign::new(nl, part)
        };
        let cp = ConstProp::compute(design.netlist());
        let proofs = StaticProofs::compute(&design, &cp);
        let patterns = PatternSet::random(design.netlist(), 128, pat_seed);
        let sim = FaultSim::new(&design, &patterns);
        let mut det = sim.detector();
        let skip = proofs.prunable_faults();
        for (fault, &pruned) in full_fault_list(&design).iter().zip(&skip) {
            if pruned {
                prop_assert!(
                    sim.detections(&mut det, std::slice::from_ref(fault)).is_empty(),
                    "fault {:?} proven untestable ({:?}) but detected",
                    fault,
                    proofs.class(fault.site)
                );
            }
        }
    }
}

/// The generators themselves exercise the random DAGs; this anchors the
/// same soundness claims on a real archetype with the full ATPG pattern
/// set (Aes at this size has six reconvergent constant nets).
#[test]
fn archetype_untestable_faults_survive_full_atpg_patterns() {
    use m3d_part::DesignConfig;
    let d = DesignConfig::Syn1.build_sized(m3d_netlist::generate::Benchmark::Aes, Some(300));
    let cp = ConstProp::compute(d.netlist());
    let proofs = StaticProofs::compute(&d, &cp);
    let ts = m3d_tdf::generate_patterns(&d, &m3d_tdf::AtpgConfig::new(1, 256));
    let sim = FaultSim::new(&d, &ts.patterns);
    let mut det = sim.detector();
    let skip = proofs.prunable_faults();
    let mut checked = 0;
    for (fault, &pruned) in full_fault_list(&d).iter().zip(&skip) {
        if pruned {
            assert!(
                sim.detections(&mut det, std::slice::from_ref(fault))
                    .is_empty(),
                "{fault:?} proven untestable but detected by ATPG patterns"
            );
            checked += 1;
        }
    }
    assert!(
        checked > 400,
        "the proof set is non-trivial ({checked} faults)"
    );
}
