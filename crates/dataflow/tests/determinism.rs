//! Thread-count independence of the verify verdicts.
//!
//! `verify_design` fans per-site assembly across the `m3d-par` pool; the
//! report must be bitwise identical at any thread width (CI runs this
//! test at `M3D_THREADS=1` and `4`, mirroring the core determinism
//! suite).

use m3d_dataflow::{verify_design, VerifyConfig};
use m3d_netlist::generate::Benchmark;
use m3d_part::DesignConfig;

#[test]
fn verify_report_is_thread_count_independent() {
    let d = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
    let cfg = VerifyConfig::default();
    let one = m3d_par::with_threads(1, || verify_design(&d, &cfg));
    let four = m3d_par::with_threads(4, || verify_design(&d, &cfg));

    assert_eq!(one.sites.len(), four.sites.len());
    for (a, b) in one.sites.iter().zip(&four.sites) {
        assert_eq!(a.site, b.site);
        assert_eq!(a.class, b.class);
        assert_eq!(a.scoap, b.scoap);
        assert_eq!(a.min_delta.to_bits(), b.min_delta.to_bits());
    }
    assert_eq!(one.scoap, four.scoap);
    assert_eq!(one.constprop, four.constprop);
    assert_eq!(one.proofs, four.proofs);
    assert_eq!(one.clock_period.to_bits(), four.clock_period.to_bits());
    assert_eq!(one.slack_site_count(), four.slack_site_count());
}

#[test]
fn verify_report_is_run_to_run_deterministic() {
    let d = DesignConfig::Syn1.build_sized(Benchmark::Netcard, Some(300));
    let cfg = VerifyConfig::default();
    let a = verify_design(&d, &cfg);
    let b = verify_design(&d, &cfg);
    assert_eq!(a.proofs, b.proofs);
    assert_eq!(a.sites.len(), b.sites.len());
    for (x, y) in a.sites.iter().zip(&b.sites) {
        assert_eq!(x.min_delta.to_bits(), y.min_delta.to_bits());
        assert_eq!(x.scoap, y.scoap);
    }
}
