//! Integration of the static proofs with ATPG fault-list pruning.
//!
//! The contract: pruning may only remove work, never change results. On
//! the Aes archetype the dataflow proofs go strictly beyond the
//! structural testability filter (constant reconvergent nets), so this
//! exercises the real pruning path, not just the structural subset.

use m3d_dataflow::{ConstProp, StaticProofs, UntestableClass};
use m3d_netlist::generate::Benchmark;
use m3d_netlist::{GateKind, NetlistBuilder};
use m3d_part::{DesignConfig, M3dDesign, PartitionAlgo};
use m3d_tdf::{generate_patterns, generate_patterns_pruned, testable_sites, AtpgConfig};

#[test]
fn dataflow_pruned_atpg_is_bitwise_identical_on_archetype() {
    let d = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
    let cp = ConstProp::compute(d.netlist());
    let proofs = StaticProofs::compute(&d, &cp);
    let skip = proofs.prunable_sites();

    // The mask strictly extends the structural filter ATPG already
    // applies: constant sites are structurally testable but frozen.
    let structural = testable_sites(&d);
    let beyond: usize = d
        .sites()
        .iter()
        .filter(|&(s, _)| skip[s.index()] && structural[s.index()])
        .count();
    assert!(
        beyond > 0,
        "constant proofs prune beyond the structural set"
    );

    let cfg = AtpgConfig::new(3, 256);
    let base = generate_patterns(&d, &cfg);
    let pruned = generate_patterns_pruned(&d, &cfg, &skip);
    assert_eq!(base.detected, pruned.detected);
    assert_eq!(base.testable, pruned.testable);
    assert_eq!(base.fault_coverage, pruned.fault_coverage);
    assert_eq!(base.patterns.blocks(), pruned.patterns.blocks());
}

#[test]
fn constant_sites_are_pruned_in_handcrafted_design() {
    // And(q, !q) is constant-0 but fully connected and structurally
    // launch/capture-capable: only the constant proof removes it.
    let mut b = NetlistBuilder::new("const-core");
    let a = b.add_input("a");
    let c = b.add_input("c");
    let q = b.add_dff(a);
    let r = b.add_dff(c);
    let nq = b.add_gate(GateKind::Inv, &[q]);
    let z = b.add_gate(GateKind::And, &[q, nq]);
    let x = b.add_gate(GateKind::Or, &[z, r]);
    let f = b.add_dff(x);
    b.add_output("f", f);
    let nl = b.finish().expect("valid");
    let part = PartitionAlgo::MinCut.partition(&nl, 1);
    let d = M3dDesign::new(nl, part);

    let cp = ConstProp::compute(d.netlist());
    let proofs = StaticProofs::compute(&d, &cp);
    assert_eq!(cp.constant(z), Some(false));

    // Every site whose net is z must carry the constant proof.
    let mut constant_sites = 0;
    for (site, _) in d.sites().iter() {
        if m3d_tdf::site_net(&d, site) == z {
            assert_eq!(proofs.class(site), Some(UntestableClass::ConstantSite));
            constant_sites += 1;
        }
    }
    assert!(constant_sites > 0, "z has sites");

    // And the structural filter alone would have kept them.
    let structural = testable_sites(&d);
    let and_gate = d.netlist().net(z).driver();
    let and_out_site = d.sites().output_site(d.netlist(), and_gate).expect("site");
    assert!(structural[and_out_site.index()], "structurally testable");

    let cfg = AtpgConfig::new(1, 128);
    let base = generate_patterns(&d, &cfg);
    let pruned = generate_patterns_pruned(&d, &cfg, &proofs.prunable_sites());
    assert_eq!(base.detected, pruned.detected);
    assert_eq!(base.patterns.blocks(), pruned.patterns.blocks());
}
