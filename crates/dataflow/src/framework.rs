//! Generic forward/backward fixed-point drivers over the levelized
//! netlist graph.
//!
//! Dataflow analyses in this crate are per-net value vectors computed by
//! sweeping the combinational core in topological (forward) or reverse
//! topological (backward) order until the vector stops changing. Because
//! the combinational core is acyclic (validated at netlist construction),
//! a monotone transfer function converges in one productive sweep plus one
//! confirming sweep; the drivers still iterate to a fixed point so that
//! analyses remain correct if cyclic structures ever appear behind the
//! unchecked construction path.

use m3d_netlist::{GateId, Netlist};

/// The result of running a fixed-point analysis: the per-net value vector
/// and the number of sweeps it took to stabilize.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixedPoint<V> {
    /// Final per-net analysis values, indexed by `NetId::index()`.
    pub values: Vec<V>,
    /// Sweeps executed, including the final confirming sweep.
    pub sweeps: usize,
}

/// Runs a forward dataflow analysis to a fixed point.
///
/// `seed` holds the boundary values (primary inputs, flop outputs); the
/// driver never recomputes them because only combinational gates are
/// visited. `transfer` computes the value of a combinational gate's output
/// net from the values currently assigned to its input nets.
///
/// The transfer function must be monotone on whatever lattice `V` encodes
/// for the sweep count to stay bounded; the driver additionally caps the
/// sweep count at `gate_count + 2` as a hard backstop.
pub fn forward<V, F>(nl: &Netlist, seed: Vec<V>, mut transfer: F) -> FixedPoint<V>
where
    V: Clone + PartialEq,
    F: FnMut(&Netlist, GateId, &[V]) -> V,
{
    debug_assert_eq!(seed.len(), nl.net_count());
    let mut values = seed;
    let mut scratch: Vec<V> = Vec::with_capacity(4);
    let mut sweeps = 0usize;
    loop {
        sweeps += 1;
        let mut changed = false;
        for &g in nl.topo_order() {
            let gate = nl.gate(g);
            scratch.clear();
            scratch.extend(gate.inputs().iter().map(|&n| values[n.index()].clone()));
            let out = gate.output().expect("combinational gates drive nets");
            let v = transfer(nl, g, &scratch);
            if v != values[out.index()] {
                values[out.index()] = v;
                changed = true;
            }
        }
        if !changed || sweeps > nl.gate_count() + 2 {
            break;
        }
    }
    FixedPoint { values, sweeps }
}

/// Runs a backward dataflow analysis to a fixed point.
///
/// `seed` holds the boundary values (flop D nets, primary-output nets);
/// every sweep restarts from the seed and pushes each gate's output-net
/// value back to its input nets through `transfer`, combining multiple
/// fan-out contributions (and the seed itself) with `meet`. `transfer`
/// receives the gate and the input pin index so per-pin costs (e.g. SCOAP
/// side-input controllability) can be modelled.
pub fn backward<V, F, M>(nl: &Netlist, seed: &[V], mut meet: M, mut transfer: F) -> FixedPoint<V>
where
    V: Clone + PartialEq,
    F: FnMut(&Netlist, GateId, usize, &V) -> V,
    M: FnMut(&V, &V) -> V,
{
    debug_assert_eq!(seed.len(), nl.net_count());
    let mut values = seed.to_vec();
    let mut sweeps = 0usize;
    loop {
        sweeps += 1;
        let mut next = seed.to_vec();
        for &g in nl.topo_order().iter().rev() {
            let gate = nl.gate(g);
            let out = gate.output().expect("combinational gates drive nets");
            let out_val = values[out.index()].clone();
            // The output value being pushed back must reflect this sweep's
            // downstream recomputation where available; `next` holds it for
            // gates later in topo order (already visited in this reverse
            // sweep), so prefer it.
            let out_val = meet(&next[out.index()], &out_val);
            for (pin, &inp) in gate.inputs().iter().enumerate() {
                let contrib = transfer(nl, g, pin, &out_val);
                let merged = meet(&next[inp.index()], &contrib);
                next[inp.index()] = merged;
            }
        }
        let stable = next == values;
        values = next;
        if stable || sweeps > nl.gate_count() + 2 {
            break;
        }
    }
    FixedPoint { values, sweeps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::{GateKind, NetlistBuilder};

    fn chain() -> Netlist {
        let mut b = NetlistBuilder::new("chain");
        let a = b.add_input("a");
        let q = b.add_dff(a);
        let x = b.add_gate(GateKind::Inv, &[q]);
        let y = b.add_gate(GateKind::Buf, &[x]);
        let z = b.add_dff(y);
        b.add_output("z", z);
        b.finish().expect("valid")
    }

    #[test]
    fn forward_converges_in_two_sweeps_on_acyclic_core() {
        let nl = chain();
        // Depth from a source, as a forward analysis.
        let seed = vec![0u32; nl.net_count()];
        let fp = forward(&nl, seed, |_, _, ins| {
            ins.iter().copied().max().unwrap_or(0) + 1
        });
        assert!(fp.sweeps <= 2, "acyclic core converges fast: {}", fp.sweeps);
        assert!(fp.values.iter().copied().max().unwrap() >= 2);
    }

    #[test]
    fn backward_reaches_fixed_point() {
        let nl = chain();
        // Reachability to a flop D net, as a backward analysis.
        let mut seed = vec![false; nl.net_count()];
        for &f in nl.flops() {
            seed[nl.gate(f).inputs()[0].index()] = true;
        }
        let fp = backward(&nl, &seed, |a, b| *a || *b, |_, _, _, &out| out);
        assert!(fp.sweeps <= 3);
        // Every net on the chain q -> inv -> buf -> flop D reaches capture.
        for &g in nl.topo_order() {
            let out = nl.gate(g).output().unwrap();
            assert!(fp.values[out.index()], "chain nets all reach the flop D");
        }
    }
}
