//! Flow-sensitive static analyses over the netlist graph.
//!
//! `m3d-lint` checks *structural* invariants; this crate adds the
//! *flow-sensitive* layer: a generic forward/backward fixed-point
//! framework ([`forward`]/[`backward`] over a [`FixedPoint`] transfer
//! function) on the levelized netlist, with three concrete analyses on
//! top:
//!
//! * [`Scoap`] — CC0/CC1/CO testability measures per net, the classic
//!   static proxy for how hard a fault is to excite and observe. Feeds
//!   optional GNN node features (`m3d-hetgraph`) and the diagnosis
//!   ranking prior.
//! * [`ConstProp`] — reconvergence-aware constant propagation finding
//!   statically-constant nets and redundant logic.
//! * [`StaticProofs`] — per-site untestable-TDF proofs (constant
//!   activation, no launch, no capture) that let ATPG and fault
//!   simulation prune faults *before* simulating them, with verdicts the
//!   simulator can never contradict.
//!
//! [`verify_design`] runs everything and is what `m3d-diag verify`
//! surfaces; `m3d-lint`'s `Dataflow` pass renders the same report as
//! L1xxx diagnostics.

#![warn(missing_docs)]

mod constprop;
mod framework;
mod scoap;
mod untestable;
mod verify;

pub use constprop::{ConstProp, Value};
pub use framework::{backward, forward, FixedPoint};
pub use scoap::{Scoap, SiteScoap, INF};
pub use untestable::{StaticProofs, UntestableClass};
pub use verify::{verify_design, SiteVerdict, VerifyConfig, VerifyReport};
