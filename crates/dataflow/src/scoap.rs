//! SCOAP testability measures: combinational controllability and
//! observability.
//!
//! The classic Goldstein metrics over the scan view of the design:
//!
//! * `CC0(n)` / `CC1(n)` — the number of pin assignments needed to set net
//!   `n` to 0 / 1. Scan makes every flop output a pseudo primary input, so
//!   PI nets and flop Q nets cost 1.
//! * `CO(n)` — the number of pin assignments needed to propagate a change
//!   on net `n` to a capture point (a flop D pin; primary outputs are not
//!   strobed at speed, consistent with the TDF capture model of
//!   `m3d_tdf::testable_sites`).
//!
//! Values saturate; [`INF`] marks "not achievable" (e.g. observability of
//! a net with no path to any capture point). The measures feed three
//! consumers: optional GNN node features (`m3d-hetgraph`), the `Diagnoser`
//! ranking prior in `m3d-diagnosis`, and the `m3d-diag verify` report.

use m3d_netlist::{GateId, GateKind, NetId, Netlist, SiteId, SitePos};
use m3d_part::M3dDesign;

use crate::framework::{backward, forward};

/// Sentinel for an unachievable controllability/observability value.
pub const INF: u32 = u32::MAX;

/// Saturating add that preserves [`INF`].
#[inline]
fn add(a: u32, b: u32) -> u32 {
    a.saturating_add(b)
}

/// SCOAP testability of one fault site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiteScoap {
    /// 0-controllability of the site's net.
    pub cc0: u32,
    /// 1-controllability of the site's net.
    pub cc1: u32,
    /// Observability of the site (pin-accurate for input-pin sites).
    pub co: u32,
}

/// Per-net SCOAP measures for a netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scoap {
    /// `[cc0, cc1]` per net.
    cc: Vec<[u32; 2]>,
    co: Vec<u32>,
}

/// Controllability `[cc0, cc1]` of a gate output from its input pairs.
fn ctrl(kind: GateKind, ins: &[[u32; 2]]) -> [u32; 2] {
    let sum0 = || ins.iter().fold(0u32, |a, v| add(a, v[0]));
    let sum1 = || ins.iter().fold(0u32, |a, v| add(a, v[1]));
    let min0 = || ins.iter().map(|v| v[0]).min().unwrap_or(INF);
    let min1 = || ins.iter().map(|v| v[1]).min().unwrap_or(INF);
    let [raw0, raw1] = match kind {
        GateKind::Buf => [ins[0][0], ins[0][1]],
        GateKind::Inv => [ins[0][1], ins[0][0]],
        GateKind::And => [min0(), sum1()],
        GateKind::Nand => [sum1(), min0()],
        GateKind::Or => [sum0(), min1()],
        GateKind::Nor => [min1(), sum0()],
        GateKind::Xor => {
            let (a, b) = (ins[0], ins[1]);
            [
                add(a[0], b[0]).min(add(a[1], b[1])),
                add(a[0], b[1]).min(add(a[1], b[0])),
            ]
        }
        GateKind::Xnor => {
            let (a, b) = (ins[0], ins[1]);
            [
                add(a[0], b[1]).min(add(a[1], b[0])),
                add(a[0], b[0]).min(add(a[1], b[1])),
            ]
        }
        // Pins are (select, a, b); output follows `a` when select = 0.
        GateKind::Mux2 => {
            let (s, a, b) = (ins[0], ins[1], ins[2]);
            [
                add(s[0], a[0]).min(add(s[1], b[0])),
                add(s[0], a[1]).min(add(s[1], b[1])),
            ]
        }
        // !((a & b) | c)
        GateKind::Aoi21 => {
            let (a, b, c) = (ins[0], ins[1], ins[2]);
            [add(a[1], b[1]).min(c[1]), add(a[0].min(b[0]), c[0])]
        }
        // !((a | b) & c)
        GateKind::Oai21 => {
            let (a, b, c) = (ins[0], ins[1], ins[2]);
            [add(a[1].min(b[1]), c[1]), add(a[0], b[0]).min(c[0])]
        }
        GateKind::Input | GateKind::Output | GateKind::Dff => {
            unreachable!("only combinational gates are transferred")
        }
    };
    [
        if raw0 == INF { INF } else { add(raw0, 1) },
        if raw1 == INF { INF } else { add(raw1, 1) },
    ]
}

/// Cost of sensitizing the side inputs of `gate` so that a change on input
/// `pin` propagates to the output ([`INF`] if no sensitization exists).
fn side_cost(cc: &[[u32; 2]], nl: &Netlist, gate: GateId, pin: usize) -> u32 {
    let g = nl.gate(gate);
    let at = |p: usize| cc[g.inputs()[p].index()];
    let others = || {
        g.inputs()
            .iter()
            .enumerate()
            .filter(|&(p, _)| p != pin)
            .map(|(_, &n)| cc[n.index()])
    };
    match g.kind() {
        GateKind::Buf | GateKind::Inv => 0,
        // Side inputs must be non-controlling.
        GateKind::And | GateKind::Nand => others().fold(0u32, |a, v| add(a, v[1])),
        GateKind::Or | GateKind::Nor => others().fold(0u32, |a, v| add(a, v[0])),
        GateKind::Xor | GateKind::Xnor => {
            let o = at(1 - pin);
            o[0].min(o[1])
        }
        GateKind::Mux2 => {
            let (s, a, b) = (at(0), at(1), at(2));
            match pin {
                // A select change is visible only when the data inputs
                // differ.
                0 => add(a[1], b[0]).min(add(a[0], b[1])),
                // Data pin `a` needs select = 0; `b` needs select = 1.
                1 => s[0],
                _ => s[1],
            }
        }
        GateKind::Aoi21 => {
            let (a, b, c) = (at(0), at(1), at(2));
            match pin {
                0 => add(b[1], c[0]),
                1 => add(a[1], c[0]),
                _ => a[0].min(b[0]),
            }
        }
        GateKind::Oai21 => {
            let (a, b, c) = (at(0), at(1), at(2));
            match pin {
                0 => add(b[0], c[1]),
                1 => add(a[0], c[1]),
                _ => a[1].min(b[1]),
            }
        }
        GateKind::Input | GateKind::Output | GateKind::Dff => {
            unreachable!("pseudo cells and flops have no propagation cost")
        }
    }
}

impl Scoap {
    /// Computes SCOAP measures for the scan view of `nl`.
    pub fn compute(nl: &Netlist) -> Self {
        let mut span = m3d_obs::span("dataflow.scoap");
        let n = nl.net_count();

        // Forward controllability. Boundary: PI nets and flop Q nets cost 1.
        let mut seed = vec![[INF, INF]; n];
        for &g in nl.inputs().iter().chain(nl.flops()) {
            let out = nl.gate(g).output().expect("inputs and flops drive nets");
            seed[out.index()] = [1, 1];
        }
        let fwd = forward(nl, seed, |nl, g, ins| ctrl(nl.gate(g).kind(), ins));
        let cc = fwd.values;

        // Backward observability to scan capture (flop D pins), meet = min.
        let mut seed = vec![INF; n];
        for &f in nl.flops() {
            seed[nl.gate(f).inputs()[0].index()] = 0;
        }
        let bwd = backward(
            nl,
            &seed,
            |a, b| *a.min(b),
            |nl, g, pin, &out_co| {
                if out_co == INF {
                    INF
                } else {
                    add(add(out_co, side_cost(&cc, nl, g, pin)), 1)
                }
            },
        );

        span.add("nets", n as u64);
        span.add("sweeps", (fwd.sweeps + bwd.sweeps) as u64);
        Scoap { cc, co: bwd.values }
    }

    /// 0-controllability of a net.
    #[inline]
    pub fn cc0(&self, net: NetId) -> u32 {
        self.cc[net.index()][0]
    }

    /// 1-controllability of a net.
    #[inline]
    pub fn cc1(&self, net: NetId) -> u32 {
        self.cc[net.index()][1]
    }

    /// Observability of a net (stem observability: cost of the cheapest
    /// path from the net to a capture point).
    #[inline]
    pub fn co(&self, net: NetId) -> u32 {
        self.co[net.index()]
    }

    /// Observability of one input pin of a gate: the cost of propagating a
    /// change on that pin through the gate and onward to a capture point.
    /// Flop D pins are capture points (cost 0); `Output` pins are never
    /// observed at speed ([`INF`]).
    pub fn pin_observability(&self, nl: &Netlist, gate: GateId, pin: usize) -> u32 {
        let g = nl.gate(gate);
        match g.kind() {
            GateKind::Dff => 0,
            GateKind::Output => INF,
            _ => {
                let out = g.output().expect("combinational gates drive nets");
                let out_co = self.co[out.index()];
                if out_co == INF {
                    return INF;
                }
                add(add(out_co, side_cost(&self.cc, nl, gate, pin)), 1)
            }
        }
    }

    /// SCOAP measures of a fault site. Output-pin and MIV sites use the
    /// stem observability of the site net; input-pin sites use the
    /// pin-accurate observability.
    pub fn site_measures(&self, design: &M3dDesign, site: SiteId) -> SiteScoap {
        let nl = design.netlist();
        let net = m3d_tdf::site_net(design, site);
        let co = match design.sites().pos(site) {
            SitePos::Input(g, pin) => self.pin_observability(nl, g, pin as usize),
            SitePos::Output(_) | SitePos::Miv(_) => self.co[net.index()],
        };
        SiteScoap {
            cc0: self.cc0(net),
            cc1: self.cc1(net),
            co,
        }
    }

    /// Normalizes a SCOAP value into `[0, 1)` for use as a model feature:
    /// `x / (x + 16)`, with [`INF`] mapping to exactly 1.0. Monotone, so
    /// feature ordering matches testability ordering.
    pub fn normalize(x: u32) -> f32 {
        if x == INF {
            1.0
        } else {
            x as f32 / (x as f32 + 16.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::{GateKind, NetlistBuilder};

    #[test]
    fn boundary_nets_cost_one_and_gates_accumulate() {
        let mut b = NetlistBuilder::new("scoap");
        let a = b.add_input("a");
        let c = b.add_input("c");
        let q = b.add_dff(a);
        let x = b.add_gate(GateKind::And, &[q, c]);
        let y = b.add_dff(x);
        b.add_output("y", y);
        let nl = b.finish().expect("valid");
        let s = Scoap::compute(&nl);
        assert_eq!((s.cc0(a), s.cc1(a)), (1, 1));
        assert_eq!((s.cc0(q), s.cc1(q)), (1, 1));
        // And: cc1 = 1 + 1 + 1 = 3, cc0 = min(1, 1) + 1 = 2.
        assert_eq!((s.cc0(x), s.cc1(x)), (2, 3));
        // x is a flop D net: directly captured.
        assert_eq!(s.co(x), 0);
        // Observing q requires c = 1 (cost 1) plus the gate traversal.
        assert_eq!(s.co(q), 2);
    }

    #[test]
    fn unobservable_nets_are_inf() {
        let mut b = NetlistBuilder::new("po-only");
        let a = b.add_input("a");
        let q = b.add_dff(a);
        let x = b.add_gate(GateKind::Inv, &[q]);
        b.add_output("x", x);
        let nl = b.finish().expect("valid");
        let s = Scoap::compute(&nl);
        // x only reaches a primary output, which is not strobed at speed.
        assert_eq!(s.co(x), INF);
        assert_eq!(Scoap::normalize(s.co(x)), 1.0);
        assert!(Scoap::normalize(0) == 0.0 && Scoap::normalize(16) == 0.5);
    }

    #[test]
    fn xor_controllability_pairs_min_over_parities() {
        let mut b = NetlistBuilder::new("xor");
        let a = b.add_input("a");
        let c = b.add_input("c");
        let x = b.add_gate(GateKind::Xor, &[a, c]);
        let q = b.add_dff(x);
        b.add_output("q", q);
        let nl = b.finish().expect("valid");
        let s = Scoap::compute(&nl);
        // cc1 = min(1+1, 1+1) + 1 = 3; cc0 likewise.
        assert_eq!((s.cc0(x), s.cc1(x)), (3, 3));
    }

    #[test]
    fn pin_observability_accounts_for_side_inputs() {
        let mut b = NetlistBuilder::new("pin-obs");
        let a = b.add_input("a");
        let c = b.add_input("c");
        let q = b.add_dff(a);
        let x = b.add_gate(GateKind::And, &[q, c]);
        let y = b.add_dff(x);
        b.add_output("y", y);
        let nl = b.finish().expect("valid");
        let s = Scoap::compute(&nl);
        let and_gate = nl.net(x).driver();
        // Propagating pin 0 of the AND needs pin 1 at 1: cost cc1(c) + 1.
        assert_eq!(s.pin_observability(&nl, and_gate, 0), 2);
        // The flop D pin is a capture point.
        let flop = nl.net(y).driver();
        assert_eq!(s.pin_observability(&nl, flop, 0), 0);
    }
}
