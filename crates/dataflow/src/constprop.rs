//! Constant propagation with literal tracking.
//!
//! The gate library has no tie cells, so constants can only arise through
//! *reconvergence*: `Xor(a, a) = 0`, `And(a, !a) = 0`, `Or(a, !a) = 1`,
//! and compositions thereof. To catch those, the abstract value of a net
//! is not just "constant or not" but a small symbolic domain:
//!
//! * [`Value::Const`] — the net provably holds this value for every input
//!   and scan state,
//! * [`Value::Lit`] — the net is provably equal (or complementary) to a
//!   *root* net, enabling the reconvergence rules above,
//! * opaque — nothing is known; an opaque net acts as a literal of itself
//!   when used as an operand.
//!
//! Soundness contract (checked by proptest in `tests/soundness.rs`): a net
//! reported constant never evaluates to the other value under *any*
//! primary-input vector and *any* scan state. This is what lets TDF sites
//! on constant nets be pruned from fault simulation — a transition fault
//! needs its site net to toggle between the launch and capture frames, and
//! activation is computed from fault-free values.

use m3d_netlist::{GateId, GateKind, NetId, Netlist};

use crate::framework::forward;

/// Abstract value of a net.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Value {
    /// Provably constant under every input and scan state.
    Const(bool),
    /// Provably equal to `root` (or its complement when `inv`).
    Lit {
        /// The representative net this net mirrors.
        root: NetId,
        /// Whether this net is the complement of `root`.
        inv: bool,
    },
    /// Nothing known (treated as a literal of the net itself when read).
    Opaque,
}

fn v_not(v: Value) -> Value {
    match v {
        Value::Const(b) => Value::Const(!b),
        Value::Lit { root, inv } => Value::Lit { root, inv: !inv },
        Value::Opaque => Value::Opaque,
    }
}

fn same_root(a: Value, b: Value) -> Option<(bool, bool)> {
    match (a, b) {
        (Value::Lit { root: r1, inv: i1 }, Value::Lit { root: r2, inv: i2 }) if r1 == r2 => {
            Some((i1, i2))
        }
        _ => None,
    }
}

fn v_and(a: Value, b: Value) -> Value {
    match (a, b) {
        (Value::Const(false), _) | (_, Value::Const(false)) => Value::Const(false),
        (Value::Const(true), x) | (x, Value::Const(true)) => x,
        _ => match same_root(a, b) {
            Some((i1, i2)) if i1 == i2 => a,
            Some(_) => Value::Const(false),
            None => Value::Opaque,
        },
    }
}

fn v_or(a: Value, b: Value) -> Value {
    match (a, b) {
        (Value::Const(true), _) | (_, Value::Const(true)) => Value::Const(true),
        (Value::Const(false), x) | (x, Value::Const(false)) => x,
        _ => match same_root(a, b) {
            Some((i1, i2)) if i1 == i2 => a,
            Some(_) => Value::Const(true),
            None => Value::Opaque,
        },
    }
}

fn v_xor(a: Value, b: Value) -> Value {
    match (a, b) {
        (Value::Const(x), Value::Const(y)) => Value::Const(x ^ y),
        (Value::Const(false), v) | (v, Value::Const(false)) => v,
        (Value::Const(true), v) | (v, Value::Const(true)) => v_not(v),
        _ => match same_root(a, b) {
            Some((i1, i2)) => Value::Const(i1 != i2),
            None => Value::Opaque,
        },
    }
}

fn v_mux(s: Value, a: Value, b: Value) -> Value {
    // Equal (known) data inputs short the select entirely.
    if a == b && a != Value::Opaque {
        return a;
    }
    v_or(v_and(v_not(s), a), v_and(s, b))
}

/// Complement-aware fold for variadic AND/OR: any complementary operand
/// pair forces the controlled value regardless of the other operands.
fn fold_ctrl(ops: &[Value], and: bool) -> Value {
    for (i, &x) in ops.iter().enumerate() {
        for &y in &ops[i + 1..] {
            if let Some((i1, i2)) = same_root(x, y) {
                if i1 != i2 {
                    return Value::Const(!and);
                }
            }
        }
    }
    let f = if and { v_and } else { v_or };
    let mut acc = ops[0];
    for &x in &ops[1..] {
        acc = f(acc, x);
    }
    acc
}

/// Per-net constant-propagation results.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConstProp {
    values: Vec<Value>,
    sweeps: usize,
}

impl ConstProp {
    /// Runs constant propagation over `nl`.
    pub fn compute(nl: &Netlist) -> Self {
        let mut span = m3d_obs::span("dataflow.constprop");
        // Everything starts opaque; primary inputs and flop Q nets (scan
        // loadable) stay opaque, which `operand` reads as self-literals.
        let seed = vec![Value::Opaque; nl.net_count()];
        let fp = forward(nl, seed, |nl, g, ins| {
            let gate = nl.gate(g);
            let ops: Vec<Value> = gate
                .inputs()
                .iter()
                .zip(ins)
                .map(|(&n, &v)| canonical(v, n))
                .collect();
            transfer(gate.kind(), &ops)
        });
        span.add("sweeps", fp.sweeps as u64);
        span.add(
            "constant_nets",
            fp.values
                .iter()
                .filter(|v| matches!(v, Value::Const(_)))
                .count() as u64,
        );
        ConstProp {
            values: fp.values,
            sweeps: fp.sweeps,
        }
    }

    /// The abstract value of a net as an *operand*: opaque nets read as
    /// literals of themselves.
    pub fn operand(&self, net: NetId) -> Value {
        canonical(self.values[net.index()], net)
    }

    /// The proven constant value of a net, if any.
    pub fn constant(&self, net: NetId) -> Option<bool> {
        match self.values[net.index()] {
            Value::Const(b) => Some(b),
            _ => None,
        }
    }

    /// The literal a net provably mirrors, if it aliases another net.
    pub fn alias(&self, net: NetId) -> Option<(NetId, bool)> {
        match self.values[net.index()] {
            Value::Lit { root, inv } if root != net => Some((root, inv)),
            _ => None,
        }
    }

    /// All proven-constant nets with their values, in net order.
    pub fn constant_nets(&self) -> Vec<(NetId, bool)> {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| match v {
                Value::Const(b) => Some((NetId::new(i), *b)),
                _ => None,
            })
            .collect()
    }

    /// Combinational gates whose output is provably constant or a literal
    /// of another net — redundant logic a synthesizer would sweep away.
    /// Single-input gates (`Buf`/`Inv`) are by construction literals and
    /// excluded; they are fan-out repair, not redundancy.
    pub fn redundant_gates(&self, nl: &Netlist) -> Vec<GateId> {
        nl.topo_order()
            .iter()
            .copied()
            .filter(|&g| {
                let gate = nl.gate(g);
                if matches!(gate.kind(), GateKind::Buf | GateKind::Inv) {
                    return false;
                }
                let out = gate.output().expect("combinational gates drive nets");
                !matches!(self.values[out.index()], Value::Opaque)
            })
            .collect()
    }

    /// Sweeps the fixed-point iteration took.
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }
}

/// Reads a net's stored value as an operand (opaque → self-literal).
fn canonical(v: Value, net: NetId) -> Value {
    match v {
        Value::Opaque => Value::Lit {
            root: net,
            inv: false,
        },
        other => other,
    }
}

/// The abstract function of a gate over canonicalized operands.
fn transfer(kind: GateKind, ops: &[Value]) -> Value {
    match kind {
        GateKind::Buf => ops[0],
        GateKind::Inv => v_not(ops[0]),
        GateKind::And => fold_ctrl(ops, true),
        GateKind::Nand => v_not(fold_ctrl(ops, true)),
        GateKind::Or => fold_ctrl(ops, false),
        GateKind::Nor => v_not(fold_ctrl(ops, false)),
        GateKind::Xor => v_xor(ops[0], ops[1]),
        GateKind::Xnor => v_not(v_xor(ops[0], ops[1])),
        GateKind::Mux2 => v_mux(ops[0], ops[1], ops[2]),
        GateKind::Aoi21 => v_not(v_or(v_and(ops[0], ops[1]), ops[2])),
        GateKind::Oai21 => v_not(v_and(v_or(ops[0], ops[1]), ops[2])),
        GateKind::Input | GateKind::Output | GateKind::Dff => {
            unreachable!("only combinational gates are transferred")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::NetlistBuilder;

    #[test]
    fn reconvergent_xor_is_constant_zero() {
        let mut b = NetlistBuilder::new("xor-same");
        let a = b.add_input("a");
        let q = b.add_dff(a);
        let x = b.add_gate(GateKind::Xor, &[q, q]);
        let y = b.add_gate(GateKind::Or, &[x, q]);
        let f = b.add_dff(y);
        b.add_output("f", f);
        let nl = b.finish().expect("valid");
        let cp = ConstProp::compute(&nl);
        assert_eq!(cp.constant(x), Some(false));
        // Or(0, q) collapses to the literal q.
        assert_eq!(cp.alias(y), Some((q, false)));
        assert_eq!(cp.constant_nets(), vec![(x, false)]);
        // Both the XOR and the OR are redundant logic.
        assert_eq!(cp.redundant_gates(&nl).len(), 2);
    }

    #[test]
    fn complementary_pair_controls_and_or() {
        let mut b = NetlistBuilder::new("compl");
        let a = b.add_input("a");
        let q = b.add_dff(a);
        let nq = b.add_gate(GateKind::Inv, &[q]);
        let z = b.add_gate(GateKind::And, &[q, nq]);
        let o = b.add_gate(GateKind::Or, &[q, nq]);
        let m = b.add_gate(GateKind::Xor, &[z, o]);
        let f = b.add_dff(m);
        b.add_output("f", f);
        let nl = b.finish().expect("valid");
        let cp = ConstProp::compute(&nl);
        assert_eq!(cp.constant(z), Some(false));
        assert_eq!(cp.constant(o), Some(true));
        // Xor(0, 1) folds all the way down.
        assert_eq!(cp.constant(m), Some(true));
        // Inv is a literal by construction, not redundancy.
        assert!(!cp.redundant_gates(&nl).contains(&nl.net(nq).driver()));
    }

    #[test]
    fn complement_detected_across_nonadjacent_variadic_pins() {
        let mut b = NetlistBuilder::new("varargs");
        let a = b.add_input("a");
        let c = b.add_input("c");
        let q = b.add_dff(a);
        let r = b.add_dff(c);
        let nq = b.add_gate(GateKind::Inv, &[q]);
        // Complementary pair on pins 0 and 2.
        let z = b.add_gate(GateKind::And, &[q, r, nq]);
        let f = b.add_dff(z);
        b.add_output("f", f);
        let nl = b.finish().expect("valid");
        let cp = ConstProp::compute(&nl);
        assert_eq!(cp.constant(z), Some(false));
    }

    #[test]
    fn mux_with_equal_data_ignores_select() {
        let mut b = NetlistBuilder::new("mux-eq");
        let s = b.add_input("s");
        let a = b.add_input("a");
        let qs = b.add_dff(s);
        let qa = b.add_dff(a);
        let m = b.add_gate(GateKind::Mux2, &[qs, qa, qa]);
        let x = b.add_gate(GateKind::Xor, &[m, qa]);
        let f = b.add_dff(x);
        b.add_output("f", f);
        let nl = b.finish().expect("valid");
        let cp = ConstProp::compute(&nl);
        assert_eq!(cp.alias(m), Some((qa, false)));
        assert_eq!(cp.constant(x), Some(false));
    }

    #[test]
    fn ordinary_logic_stays_opaque() {
        let mut b = NetlistBuilder::new("plain");
        let a = b.add_input("a");
        let c = b.add_input("c");
        let q = b.add_dff(a);
        let r = b.add_dff(c);
        let x = b.add_gate(GateKind::Nand, &[q, r]);
        let f = b.add_dff(x);
        b.add_output("f", f);
        let nl = b.finish().expect("valid");
        let cp = ConstProp::compute(&nl);
        assert_eq!(cp.constant(x), None);
        assert_eq!(cp.alias(x), None);
        assert!(cp.constant_nets().is_empty());
        assert!(cp.redundant_gates(&nl).is_empty());
    }
}
