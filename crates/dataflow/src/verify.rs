//! The `verify` entry point: run every dataflow analysis over a design
//! and assemble one report.

use m3d_netlist::SiteId;
use m3d_part::M3dDesign;
use m3d_tdf::{StaticTiming, TimingModel};

use crate::constprop::ConstProp;
use crate::scoap::{Scoap, SiteScoap};
use crate::untestable::{StaticProofs, UntestableClass};

/// Configuration for [`verify_design`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VerifyConfig {
    /// Clock period as a multiple of the design's critical path (at-speed
    /// test clocks run a small guard band above the critical path).
    pub clock_factor: f32,
    /// Fraction of the clock period above which a site's minimum
    /// detectable delay defect is flagged as a small-delay escape risk:
    /// defects smaller than `min_detectable_delta` slip through gross-TDF
    /// testing, and a large `min_detectable_delta` means a large escape
    /// window.
    pub slack_frac: f32,
    /// Timing model used for the slack screen.
    pub timing: TimingModel,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            clock_factor: 1.1,
            slack_frac: 0.75,
            timing: TimingModel::default(),
        }
    }
}

/// The combined static verdict for one fault site.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SiteVerdict {
    /// The site this verdict covers.
    pub site: SiteId,
    /// Untestability proof, if any.
    pub class: Option<UntestableClass>,
    /// SCOAP testability measures of the site.
    pub scoap: SiteScoap,
    /// Minimum detectable delay-defect size at the report's clock period
    /// (the site's path slack).
    pub min_delta: f32,
}

/// Everything `m3d-diag verify` reports about a design.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// Per-net SCOAP measures.
    pub scoap: Scoap,
    /// Constant-propagation results.
    pub constprop: ConstProp,
    /// Per-site untestability proofs.
    pub proofs: StaticProofs,
    /// Per-site verdicts, in site order.
    pub sites: Vec<SiteVerdict>,
    /// The clock period used for the slack screen.
    pub clock_period: f32,
    /// The design's critical launch-to-capture path.
    pub critical_path: f32,
    /// Sites are flagged when `min_delta >= slack_threshold`.
    pub slack_threshold: f32,
}

impl VerifyReport {
    /// Testable sites whose minimum detectable defect exceeds the slack
    /// threshold — the small-delay escape surface of the design.
    pub fn slack_site_count(&self) -> usize {
        self.sites
            .iter()
            .filter(|v| v.class.is_none() && v.min_delta >= self.slack_threshold)
            .count()
    }
}

/// Runs SCOAP, constant propagation, untestability proofs and the slack
/// screen over `design`.
///
/// Per-site assembly fans out through `m3d-par` with order-preserving
/// reduction, so the report is bitwise identical at any thread count.
pub fn verify_design(design: &M3dDesign, cfg: &VerifyConfig) -> VerifyReport {
    let mut span = m3d_obs::span("dataflow.verify");
    let nl = design.netlist();

    let scoap = Scoap::compute(nl);
    let constprop = ConstProp::compute(nl);
    let proofs = StaticProofs::compute(design, &constprop);
    let timing = {
        let mut s = m3d_obs::span("dataflow.timing");
        let t = StaticTiming::compute(design, &cfg.timing);
        s.add("nets", nl.net_count() as u64);
        t
    };
    let critical_path = timing.critical_path();
    let clock_period = critical_path * cfg.clock_factor;
    let slack_threshold = clock_period * cfg.slack_frac;

    let site_ids: Vec<SiteId> = design.sites().iter().map(|(s, _)| s).collect();
    let sites = m3d_par::par_map(&site_ids, |&site| SiteVerdict {
        site,
        class: proofs.class(site),
        scoap: scoap.site_measures(design, site),
        min_delta: timing.min_detectable_delta(design, site, clock_period),
    });

    span.add("sites", sites.len() as u64);
    span.add("untestable_sites", proofs.untestable_count() as u64);
    span.add("constant_nets", constprop.constant_nets().len() as u64);
    let report = VerifyReport {
        scoap,
        constprop,
        proofs,
        sites,
        clock_period,
        critical_path,
        slack_threshold,
    };
    span.add("slack_sites", report.slack_site_count() as u64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::generate::Benchmark;
    use m3d_part::DesignConfig;

    #[test]
    fn report_covers_every_site_and_respects_timing_bounds() {
        let d = DesignConfig::Syn1.build_sized(Benchmark::Tate, Some(400));
        let r = verify_design(&d, &VerifyConfig::default());
        assert_eq!(r.sites.len(), d.sites().len());
        assert!(r.clock_period > r.critical_path);
        for v in &r.sites {
            assert!(v.min_delta >= 0.0 && v.min_delta <= r.clock_period + 1e-4);
        }
        // Slack screen only flags testable sites.
        assert!(r.slack_site_count() <= r.sites.iter().filter(|v| v.class.is_none()).count());
    }
}
