//! Static untestable-fault proofs for the TDF universe.
//!
//! A transition-delay fault needs three things to be detected under the
//! held-PI launch-on-capture scheme: its site net must *toggle* between
//! the two frames (launch), the toggle must match the fault polarity, and
//! the delayed value must *reach a scan capture point* (a flop D pin).
//! Three per-site proofs rule classes of faults out statically:
//!
//! * [`UntestableClass::ConstantSite`] — the site net is proven constant
//!   by [`ConstProp`]; activation is computed from fault-free frame
//!   values, so a constant net never toggles and the fault can never
//!   activate.
//! * [`UntestableClass::NoLaunch`] — the site net is not sequentially
//!   driven (no flop output in its cone); with primary inputs held across
//!   frames, the net holds its value.
//! * [`UntestableClass::NoCapture`] — no structural path from the fault's
//!   injection point to any flop D pin.
//!
//! Soundness matters more than strength here: the proofs feed fault-list
//! pruning in ATPG and the bench pipeline, which must stay *bitwise*
//! faithful. In particular the capture proof is purely structural — a
//! statically-constant side input must **not** be used to refine it,
//! because a fault scoped to one branch of a reconvergent pair (e.g. one
//! input of `And(s, !s)`) changes that branch's *faulty* value, and the
//! "constant" net then carries the fault effect even though its
//! fault-free value never moves.

use m3d_netlist::{NetId, SiteId, SitePos};
use m3d_part::M3dDesign;
use m3d_tdf::site_net;

use crate::constprop::ConstProp;
use crate::framework::{backward, forward};

/// Why a fault site is statically untestable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UntestableClass {
    /// The site net is provably constant: the activation condition
    /// (a launch-to-capture toggle of the fault-free value) never holds.
    ConstantSite,
    /// The site net is not sequentially driven and cannot toggle with
    /// primary inputs held across the two frames.
    NoLaunch,
    /// The fault effect has no structural path to a scan capture point.
    NoCapture,
}

impl UntestableClass {
    /// Stable lowercase name for reports and baselines.
    pub fn name(self) -> &'static str {
        match self {
            UntestableClass::ConstantSite => "constant-site",
            UntestableClass::NoLaunch => "no-launch",
            UntestableClass::NoCapture => "no-capture",
        }
    }
}

/// The static untestability verdicts for every site of a design.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaticProofs {
    class: Vec<Option<UntestableClass>>,
    may_transition: Vec<bool>,
    captures: Vec<bool>,
}

impl StaticProofs {
    /// Proves untestability per site, given constant-propagation results
    /// for the same netlist.
    pub fn compute(design: &M3dDesign, cp: &ConstProp) -> Self {
        let mut span = m3d_obs::span("dataflow.untestable");
        let nl = design.netlist();

        // Forward: nets that can differ between the two frames. Flop Q
        // nets can (scan loads the launch state); a proven-constant net
        // never can, whatever drives it.
        let mut seed = vec![false; nl.net_count()];
        for &f in nl.flops() {
            seed[nl.gate(f).output().expect("flops drive nets").index()] = true;
        }
        let fwd = forward(nl, seed, |nl, g, ins| {
            let out = nl.gate(g).output().expect("combinational gates drive nets");
            cp.constant(out).is_none() && ins.iter().any(|&b| b)
        });
        let may_transition = fwd.values;

        // Backward: nets from which a value change can structurally reach
        // a flop D pin. No constant refinement — see the module docs.
        let mut seed = vec![false; nl.net_count()];
        for &f in nl.flops() {
            seed[nl.gate(f).inputs()[0].index()] = true;
        }
        let bwd = backward(nl, &seed, |&a, &b| a || b, |_, _, _, &out| out);
        let captures = bwd.values;

        let class = design
            .sites()
            .iter()
            .map(|(site, pos)| classify(design, cp, &may_transition, &captures, site, pos))
            .collect();
        let proofs = StaticProofs {
            class,
            may_transition,
            captures,
        };
        span.add("sweeps", (fwd.sweeps + bwd.sweeps) as u64);
        span.add("untestable_sites", proofs.untestable_count() as u64);
        proofs
    }

    /// The untestability verdict for a site (`None` = possibly testable).
    #[inline]
    pub fn class(&self, site: SiteId) -> Option<UntestableClass> {
        self.class[site.index()]
    }

    /// Per-site verdicts in site order.
    #[inline]
    pub fn classes(&self) -> &[Option<UntestableClass>] {
        &self.class
    }

    /// Number of sites proven untestable.
    pub fn untestable_count(&self) -> usize {
        self.class.iter().filter(|c| c.is_some()).count()
    }

    /// Whether a net can toggle between the launch and capture frames.
    #[inline]
    pub fn may_transition(&self, net: NetId) -> bool {
        self.may_transition[net.index()]
    }

    /// Whether a change on a net can structurally reach a capture point.
    #[inline]
    pub fn captures(&self, net: NetId) -> bool {
        self.captures[net.index()]
    }

    /// Per-site skip mask for ATPG/fault-sim pruning: `true` means every
    /// fault at the site is proven undetectable.
    pub fn prunable_sites(&self) -> Vec<bool> {
        self.class.iter().map(|c| c.is_some()).collect()
    }

    /// Per-fault skip mask aligned with
    /// [`full_fault_list`](m3d_tdf::full_fault_list) (both polarities of a
    /// site share its verdict).
    pub fn prunable_faults(&self) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.class.len() * 2);
        for c in &self.class {
            let skip = c.is_some();
            out.push(skip);
            out.push(skip);
        }
        out
    }
}

/// Classifies one site. Priority: constant proof (strongest — it also
/// explains why the launch analysis marked the net frozen), then launch,
/// then capture.
fn classify(
    design: &M3dDesign,
    cp: &ConstProp,
    may_transition: &[bool],
    captures: &[bool],
    site: SiteId,
    pos: SitePos,
) -> Option<UntestableClass> {
    let nl = design.netlist();
    let net = site_net(design, site);
    if cp.constant(net).is_some() {
        return Some(UntestableClass::ConstantSite);
    }
    if !may_transition[net.index()] {
        return Some(UntestableClass::NoLaunch);
    }
    // Capture depends on where the delayed value is injected, which
    // differs per site kind (stem vs branch vs far-tier branches).
    let branch_captures = |(g, _pin): (m3d_netlist::GateId, u8)| -> bool {
        let gate = nl.gate(g);
        match gate.kind() {
            m3d_netlist::GateKind::Dff => true,
            m3d_netlist::GateKind::Output => false,
            _ => captures[gate.output().expect("combinational").index()],
        }
    };
    let captured = match pos {
        SitePos::Output(_) => nl.net(net).sinks().iter().copied().any(branch_captures),
        SitePos::Input(g, pin) => branch_captures((g, pin)),
        SitePos::Miv(m) => design.far_sinks(m).into_iter().any(branch_captures),
    };
    if !captured {
        return Some(UntestableClass::NoCapture);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::generate::Benchmark;
    use m3d_part::DesignConfig;
    use m3d_tdf::testable_sites;

    #[test]
    fn refines_structural_testability() {
        // The static proofs must be at least as strong as the structural
        // testability the ATPG already uses, and may only go further via
        // constant proofs (the capture analysis is purely structural).
        let d = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
        let cp = ConstProp::compute(d.netlist());
        let proofs = StaticProofs::compute(&d, &cp);
        let structural = testable_sites(&d);
        for (site, _) in d.sites().iter() {
            let class = proofs.class(site);
            if !structural[site.index()] {
                assert!(class.is_some(), "structurally untestable {site:?} proven");
            }
            if class == Some(UntestableClass::NoCapture) {
                assert!(
                    !structural[site.index()],
                    "capture proofs never exceed the structural analysis"
                );
            }
        }
        assert!(proofs.untestable_count() > 0, "some sites are untestable");
    }

    #[test]
    fn prunable_faults_align_with_fault_list() {
        let d = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
        let cp = ConstProp::compute(d.netlist());
        let proofs = StaticProofs::compute(&d, &cp);
        let faults = m3d_tdf::full_fault_list(&d);
        let skip = proofs.prunable_faults();
        assert_eq!(skip.len(), faults.len());
        for (f, &s) in faults.iter().zip(&skip) {
            assert_eq!(s, proofs.class(f.site).is_some());
        }
    }
}
