//! Aggregate report-quality metrics (the columns of Tables V–VIII).

use m3d_tdf::Fault;

use crate::report::DiagnosisReport;

/// Aggregated diagnosis quality over a set of failing chips.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ReportQuality {
    /// Fraction of chips whose report contains every ground-truth site.
    pub accuracy: f64,
    /// Mean diagnostic resolution (report length).
    pub mean_resolution: f64,
    /// Standard deviation of resolution.
    pub std_resolution: f64,
    /// Mean first-hit index over *accurate-or-hitting* reports.
    pub mean_fhi: f64,
    /// Standard deviation of FHI.
    pub std_fhi: f64,
    /// Fraction of reports whose candidates all sit in one tier, counted
    /// over the chips considered (see [`QualityAccumulator::tier_rate`]).
    pub tier_localization: f64,
    /// Number of chips aggregated.
    pub samples: usize,
}

/// Streaming accumulator for [`ReportQuality`].
///
/// # Examples
///
/// ```
/// use m3d_diagnosis::{DiagnosisReport, QualityAccumulator};
///
/// let mut acc = QualityAccumulator::new();
/// acc.add(&DiagnosisReport::default(), &[]);
/// let q = acc.finish();
/// assert_eq!(q.samples, 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct QualityAccumulator {
    resolutions: Vec<f64>,
    fhis: Vec<f64>,
    accurate: usize,
    tier_localized: usize,
    tier_considered: usize,
    samples: usize,
}

impl QualityAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        QualityAccumulator::default()
    }

    /// Adds one diagnosed chip.
    pub fn add(&mut self, report: &DiagnosisReport, ground_truth: &[Fault]) {
        self.samples += 1;
        self.resolutions.push(report.resolution() as f64);
        if !ground_truth.is_empty() && report.is_accurate(ground_truth) {
            self.accurate += 1;
        }
        if let Some(fhi) = report.first_hit_index(ground_truth) {
            self.fhis.push(fhi as f64);
        }
    }

    /// Adds one chip's tier-localization outcome. The paper excludes
    /// reports already localized by ATPG from this rate, so callers decide
    /// which chips count.
    pub fn add_tier_outcome(&mut self, localized: bool) {
        self.tier_considered += 1;
        if localized {
            self.tier_localized += 1;
        }
    }

    /// Fraction of considered chips localized to one tier.
    pub fn tier_rate(&self) -> f64 {
        if self.tier_considered == 0 {
            0.0
        } else {
            self.tier_localized as f64 / self.tier_considered as f64
        }
    }

    /// Finalizes the aggregate metrics.
    pub fn finish(&self) -> ReportQuality {
        let (mr, sr) = mean_std(&self.resolutions);
        let (mf, sf) = mean_std(&self.fhis);
        ReportQuality {
            accuracy: if self.samples == 0 {
                0.0
            } else {
                self.accurate as f64 / self.samples as f64
            },
            mean_resolution: mr,
            std_resolution: sr,
            mean_fhi: mf,
            std_fhi: sf,
            tier_localization: self.tier_rate(),
            samples: self.samples,
        }
    }
}

/// Sample mean and (population) standard deviation.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Candidate, MatchScore};
    use m3d_netlist::SiteId;
    use m3d_part::Tier;
    use m3d_tdf::Polarity;

    fn report(sites: &[usize]) -> DiagnosisReport {
        DiagnosisReport::new(
            sites
                .iter()
                .map(|&s| Candidate {
                    fault: Fault::new(SiteId::new(s), Polarity::SlowToRise),
                    score: MatchScore {
                        tfsf: 1,
                        tfsp: 0,
                        tpsf: 0,
                    },
                    tier: Some(Tier::Top),
                })
                .collect(),
        )
    }

    #[test]
    fn accumulator_computes_paper_metrics() {
        let mut acc = QualityAccumulator::new();
        let gt = vec![Fault::new(SiteId::new(2), Polarity::SlowToRise)];
        acc.add(&report(&[2, 5]), &gt); // accurate, FHI 1, res 2
        acc.add(&report(&[5, 9, 2]), &gt); // accurate, FHI 3, res 3
        acc.add(&report(&[7]), &gt); // miss, res 1
        acc.add_tier_outcome(true);
        acc.add_tier_outcome(false);
        let q = acc.finish();
        assert_eq!(q.samples, 3);
        assert!((q.accuracy - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.mean_resolution - 2.0).abs() < 1e-12);
        assert!((q.mean_fhi - 2.0).abs() < 1e-12);
        assert!((q.tier_localization - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_std_handles_edges() {
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        let (m, s) = mean_std(&[3.0]);
        assert_eq!((m, s), (3.0, 0.0));
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 1.0);
    }
}
