//! Cause-effect ATPG diagnosis (the commercial-tool stand-in).
//!
//! Given a failure log, the engine (1) extracts suspect sites by tracing
//! the fan-in cones of failing observation points, filtered to sites that
//! transition under the failing pattern, (2) fault-simulates each suspect
//! and scores its predicted failure signature against the log, and (3)
//! ranks and retains candidates. When no single fault explains the log
//! (systematic multi-fault chips), an iterative-cover pass selects a set of
//! faults that jointly explain the failures.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};

use m3d_dft::{ObsMode, ScanChains};
use m3d_netlist::{GateId, NetId, SiteId};
use m3d_tdf::{FailEntry, FailureLog, Fault, FaultSim, Polarity};

use crate::report::{Candidate, DiagnosisReport, MatchScore};

/// Per-worker scratch for the cone DFS: epoch-stamped visited marks, so
/// the gate/net-sized arrays are allocated once per worker instead of once
/// per flop.
struct ConeScratch {
    epoch: u32,
    gate_mark: Vec<u32>,
    net_mark: Vec<u32>,
    stack: Vec<NetId>,
}

/// Retention knobs for the ranked report.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiagnosisConfig {
    /// Keep candidates explaining at least this fraction of the failures
    /// the best candidate explains (`tfsf` relative cut).
    pub retain_ratio: f64,
    /// Hard cap on report length.
    pub max_candidates: usize,
    /// Suspect-frequency cap for simulation (extraction and the
    /// multi-fault cover phase).
    pub max_cover_suspects: usize,
    /// A site becomes a suspect when it appears in at least this fraction
    /// of the per-entry suspect sets (1.0 = strict intersection; real
    /// tools over-approximate, which is where reported resolution > 1
    /// comes from).
    pub suspect_entry_frac: f64,
}

impl Default for DiagnosisConfig {
    fn default() -> Self {
        DiagnosisConfig {
            retain_ratio: 0.55,
            max_candidates: 64,
            max_cover_suspects: 160,
            suspect_entry_frac: 0.5,
        }
    }
}

/// Returned by [`Diagnoser::try_diagnose`] when the caller's cancel flag
/// was observed set before the report was complete (a per-request deadline
/// expired). The partial work is discarded — there is no partial report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("diagnosis cancelled past its deadline")
    }
}

impl std::error::Error for Cancelled {}

/// The diagnosis engine, reusable across failure logs of one test setup.
///
/// # Examples
///
/// ```no_run
/// use m3d_dft::{ObsMode, ScanChains, ScanConfig};
/// use m3d_diagnosis::{Diagnoser, DiagnosisConfig};
/// use m3d_netlist::generate::Benchmark;
/// use m3d_part::DesignConfig;
/// use m3d_tdf::{generate_patterns, AtpgConfig, FaultSim};
///
/// let design = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
/// let ts = generate_patterns(&design, &AtpgConfig::new(1, 256));
/// let scan = ScanChains::new(
///     design.netlist(),
///     ScanConfig::for_flop_count(design.netlist().flops().len()),
/// );
/// let fsim = FaultSim::new(&design, &ts.patterns);
/// let diagnoser =
///     Diagnoser::new(&fsim, &scan, ObsMode::Bypass, DiagnosisConfig::default());
/// ```
#[derive(Debug)]
pub struct Diagnoser<'a> {
    fsim: &'a FaultSim<'a>,
    scan: &'a ScanChains,
    mode: ObsMode,
    config: DiagnosisConfig,
    /// Per flop: every fault site in its structural fan-in cone.
    cone_sites: Vec<Vec<SiteId>>,
    /// Optional per-site SCOAP observability: a rank tie-breaker inside a
    /// score band (lower = easier to observe = ranked first).
    obs_prior: Option<Vec<u32>>,
    /// Optional per-site untestable mask: proven-untestable suspects are
    /// dropped before fault simulation (they can never match a log).
    untestable: Option<Vec<bool>>,
}

impl<'a> Diagnoser<'a> {
    /// Builds the engine, precomputing per-flop fan-in cones (done once per
    /// test setup, amortized over every failure log — the same argument the
    /// paper makes for its top-level graph).
    pub fn new(
        fsim: &'a FaultSim<'a>,
        scan: &'a ScanChains,
        mode: ObsMode,
        config: DiagnosisConfig,
    ) -> Self {
        let design = fsim.design();
        let nl = design.netlist();
        // Per-flop backward cone DFS, fanned over the pool. The visited
        // marks are epoch-stamped per-worker scratch (zeroing two
        // gate/net-sized arrays per flop is quadratic at paper scale);
        // each flop's cone is independent of scratch history, so the
        // result is identical at any thread count. The cost gate keeps
        // small test designs serial — worker-dispatch overhead exceeds a
        // handful of tiny cone walks — and cannot change the cones.
        let cone_work = nl.flops().len() as u64 * 4096;
        let cone_sites = m3d_par::with_threads(m3d_par::par_gate(cone_work), || {
            m3d_par::par_map_init(
                nl.flops(),
                || ConeScratch {
                    epoch: 0,
                    gate_mark: vec![0u32; nl.gate_count()],
                    net_mark: vec![0u32; nl.net_count()],
                    stack: Vec::new(),
                },
                |scr, &fg| {
                    scr.epoch += 1;
                    let epoch = scr.epoch;
                    let mut sites = Vec::new();
                    // The flop's own D pin is a suspect.
                    sites.push(design.sites().input_site(fg, 0));
                    scr.stack.clear();
                    scr.stack.push(nl.gate(fg).inputs()[0]);
                    while let Some(net) = scr.stack.pop() {
                        if scr.net_mark[net.index()] == epoch {
                            continue;
                        }
                        scr.net_mark[net.index()] = epoch;
                        if let Some(m) = design.miv_on_net(net) {
                            sites.push(design.miv_site(m as usize));
                        }
                        let driver: GateId = nl.net(net).driver();
                        if scr.gate_mark[driver.index()] == epoch {
                            continue;
                        }
                        scr.gate_mark[driver.index()] = epoch;
                        if let Some(out) = design.sites().output_site(nl, driver) {
                            sites.push(out);
                        }
                        if nl.gate(driver).kind().is_combinational() {
                            for (pin, &inp) in nl.gate(driver).inputs().iter().enumerate() {
                                sites.push(design.sites().input_site(driver, pin as u8));
                                scr.stack.push(inp);
                            }
                        }
                    }
                    sites.sort_unstable();
                    sites.dedup();
                    sites
                },
            )
        });
        Diagnoser {
            fsim,
            scan,
            mode,
            config,
            cone_sites,
            obs_prior: None,
            untestable: None,
        }
    }

    /// Attaches a per-site observability prior (SCOAP CO, one value per
    /// fault site). Candidates tied within a rank band order by ascending
    /// observability cost; an all-zero prior leaves ranking unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `co` does not have one entry per fault site.
    pub fn with_observability_prior(mut self, co: Vec<u32>) -> Self {
        assert_eq!(
            co.len(),
            self.fsim.design().sites().len(),
            "one CO value per fault site"
        );
        self.obs_prior = Some(co);
        self
    }

    /// Attaches a per-site untestable mask (e.g. from
    /// `m3d_dataflow::StaticProofs::prunable_sites`). Masked suspects are
    /// dropped before fault simulation; because a proven-untestable fault
    /// never produces failures, the reported candidates are unchanged —
    /// only the simulation work shrinks.
    ///
    /// # Panics
    ///
    /// Panics if `untestable` does not have one entry per fault site.
    pub fn with_untestable_sites(mut self, untestable: Vec<bool>) -> Self {
        assert_eq!(
            untestable.len(),
            self.fsim.design().sites().len(),
            "one flag per fault site"
        );
        self.untestable = Some(untestable);
        self
    }

    /// The observation mode the engine diagnoses under.
    pub fn mode(&self) -> ObsMode {
        self.mode
    }

    fn is_pruned(&self, site: SiteId) -> bool {
        self.untestable.as_ref().is_some_and(|u| u[site.index()])
    }

    fn prior_of(&self, site: SiteId) -> u32 {
        self.obs_prior.as_ref().map_or(0, |p| p[site.index()])
    }

    /// Whether a log entry references a pattern and observation point that
    /// exist in this test setup. Failure logs are *untrusted input* (they
    /// come from a tester datalog); entries referencing out-of-range
    /// patterns or scan cells are dropped by [`Diagnoser::diagnose`] with a
    /// degraded tag rather than indexing out of bounds.
    fn entry_in_range(&self, entry: &FailEntry) -> bool {
        self.fsim.patterns().checked_locate(entry.pattern).is_some()
            && self
                .scan
                .candidate_flops(entry.obs)
                .iter()
                .all(|f| f.index() < self.cone_sites.len())
    }

    /// Suspect sites for one failing log entry: cone sites of every scan
    /// cell the observation could map to, filtered to sites transitioning
    /// under the failing pattern. Entries must already be range-checked.
    fn entry_suspects(&self, entry: &FailEntry) -> HashSet<SiteId> {
        let (blk, bit) = self.fsim.patterns().locate(entry.pattern);
        let mut set = HashSet::new();
        for flop in self.scan.candidate_flops(entry.obs) {
            for &site in &self.cone_sites[flop.index()] {
                if self.fsim.transition_mask(site, blk) & (1u64 << bit) != 0 {
                    set.insert(site);
                }
            }
        }
        set
    }

    /// Predicted failure entries for a fault set, using the caller's
    /// propagation scratch (one [`m3d_tdf::BlockDetector`] per worker when
    /// suspects are scored in parallel).
    fn predicted_entries(
        &self,
        det: &mut m3d_tdf::BlockDetector<'_>,
        faults: &[Fault],
    ) -> HashSet<FailEntry> {
        let dets = self.fsim.detections(det, faults);
        FailureLog::from_detections(&dets, self.scan, self.mode)
            .entries()
            .iter()
            .copied()
            .collect()
    }

    fn score_against(predicted: &HashSet<FailEntry>, tester: &HashSet<FailEntry>) -> MatchScore {
        let tfsf = tester.intersection(predicted).count() as u32;
        MatchScore {
            tfsf,
            tfsp: tester.len() as u32 - tfsf,
            tpsf: predicted.len() as u32 - tfsf,
        }
    }

    /// Simulates both polarities of a site and keeps the better match.
    fn best_candidate(
        &self,
        det: &mut m3d_tdf::BlockDetector<'_>,
        site: SiteId,
        tester: &HashSet<FailEntry>,
    ) -> (Candidate, HashSet<FailEntry>) {
        let design = self.fsim.design();
        let mut best: Option<(Candidate, HashSet<FailEntry>)> = None;
        for pol in Polarity::ALL {
            let fault = Fault::new(site, pol);
            let predicted = self.predicted_entries(det, &[fault]);
            let score = Self::score_against(&predicted, tester);
            let cand = Candidate {
                fault,
                score,
                tier: design.tier_of_site(site),
            };
            let better = match &best {
                None => true,
                Some((b, _)) => score.value() > b.score.value(),
            };
            if better {
                best = Some((cand, predicted));
            }
        }
        best.expect("both polarities evaluated")
    }

    /// Diagnoses one failure log into a ranked candidate report.
    ///
    /// An empty log (the chip passed) yields an empty report. Entries
    /// referencing patterns or scan cells that do not exist in this test
    /// setup (a malformed or mismatched tester log) are dropped and the
    /// report is tagged [`DiagnosisReport::degraded`] — graceful
    /// degradation instead of an out-of-bounds panic.
    pub fn diagnose(&self, log: &FailureLog) -> DiagnosisReport {
        let never = AtomicBool::new(false);
        match self.try_diagnose(log, &never) {
            Ok(report) => report,
            Err(Cancelled) => unreachable!("flag is never set"),
        }
    }

    /// [`Diagnoser::diagnose`] with cooperative cancellation: the caller
    /// owns `cancel` (e.g. a deadline reaper sets it when a request's
    /// budget expires) and the engine polls it at phase boundaries and
    /// between suspect simulations, abandoning the remaining cone-scoring
    /// work with `Err(Cancelled)`.
    ///
    /// Cancellation is pure control flow: with the flag never set, the
    /// computation — and therefore the report — is bit-identical to
    /// [`Diagnoser::diagnose`] at any thread count.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when the flag was observed set before the report was
    /// complete. No partial report is returned.
    pub fn try_diagnose(
        &self,
        log: &FailureLog,
        cancel: &AtomicBool,
    ) -> Result<DiagnosisReport, Cancelled> {
        let mut span = m3d_obs::span("diagnosis");
        span.add("entries", log.entries().len() as u64);
        let dropped = log.entries().iter().any(|e| !self.entry_in_range(e));
        let sanitized: FailureLog;
        let log = if dropped {
            sanitized = log
                .entries()
                .iter()
                .filter(|e| self.entry_in_range(e))
                .copied()
                .collect();
            &sanitized
        } else {
            log
        };
        let mut report = self.diagnose_trusted(log, cancel)?;
        if dropped {
            report.mark_degraded();
            span.add("degraded", 1);
            m3d_obs::counter("diagnosis.degraded_reports", 1);
        }
        span.add("candidates", report.candidates().len() as u64);
        m3d_obs::counter("diagnosis.reports", 1);
        m3d_obs::counter("diagnosis.candidates", report.candidates().len() as u64);
        Ok(report)
    }

    /// A zero-score placeholder a cancelled scoring worker returns; the
    /// whole result vector is discarded once the cancel flag is seen, so
    /// placeholders never reach a report.
    fn cancelled_stub(site: SiteId) -> (Candidate, HashSet<FailEntry>) {
        (
            Candidate {
                fault: Fault::new(site, Polarity::ALL[0]),
                score: MatchScore::default(),
                tier: None,
            },
            HashSet::new(),
        )
    }

    /// [`Diagnoser::diagnose`] after entry sanitization.
    fn diagnose_trusted(
        &self,
        log: &FailureLog,
        cancel: &AtomicBool,
    ) -> Result<DiagnosisReport, Cancelled> {
        if log.is_empty() {
            return Ok(DiagnosisReport::default());
        }
        if cancel.load(Ordering::Relaxed) {
            return Err(Cancelled);
        }
        let tester: HashSet<FailEntry> = log.entries().iter().copied().collect();

        // Phase 1: frequency-based suspect extraction. A strict
        // intersection would under-approximate what commercial tools
        // report; sites appearing in most per-entry cones are suspects.
        let mut freq: HashMap<SiteId, u32> = HashMap::new();
        for entry in log.entries() {
            for s in self.entry_suspects(entry) {
                *freq.entry(s).or_insert(0) += 1;
            }
        }
        let n_entries = log.entries().len() as u32;
        let needed = ((f64::from(n_entries) * self.config.suspect_entry_frac).ceil() as u32).max(1);
        let mut suspects: Vec<(SiteId, u32)> = freq
            .iter()
            .filter(|&(_, &c)| c >= needed)
            .map(|(&s, &c)| (s, c))
            .collect();
        suspects.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        suspects.truncate(self.config.max_cover_suspects);
        // Proven-untestable suspects would simulate to an empty signature
        // and score zero; drop them here (after the truncation, so the
        // slot allocation — and with it the report — is unchanged).
        if self.untestable.is_some() {
            let before = suspects.len();
            suspects.retain(|&(s, _)| !self.is_pruned(s));
            m3d_obs::counter(
                "diagnosis.suspects_pruned",
                (before - suspects.len()) as u64,
            );
        }

        // Score every suspect in parallel: each candidate re-simulates two
        // polarities over the full pattern set, which is the dominant cost
        // of a diagnosis at paper scale. Suspects are independent and the
        // map is order-preserving with one propagation scratch per worker,
        // so the report is bitwise identical at any thread count — which
        // is also why the cost gate (suspects × design size) can keep
        // small-design diagnoses serial without changing any report.
        let score_work = self.scoring_work(suspects.len());
        let scored: Vec<(Candidate, HashSet<FailEntry>)> =
            m3d_par::with_threads(m3d_par::par_gate(score_work), || {
                m3d_par::par_map_init(
                    &suspects,
                    || self.fsim.detector(),
                    |det, &(s, _)| {
                        // Deadline early-out: skip the two simulations and
                        // return a stub; the batch result is discarded.
                        if cancel.load(Ordering::Relaxed) {
                            return Self::cancelled_stub(s);
                        }
                        self.best_candidate(det, s, &tester)
                    },
                )
            });
        if cancel.load(Ordering::Relaxed) {
            return Err(Cancelled);
        }

        let single_explains = scored.iter().any(|(c, _)| c.score.is_perfect());

        if !single_explains {
            // Phase 2: iterative cover for multi-fault chips. Every
            // selected candidate explains a *disjoint share* of the log,
            // so the single-fault retention floor does not apply — the
            // cover itself is the retention decision.
            let selected = self.cover_diagnosis(log, &tester, scored, cancel)?;
            return Ok(self.rank_cover(selected));
        }

        Ok(self.rank_and_retain(scored))
    }

    /// Work estimate for scoring `n` suspects, for the `m3d-par` cost
    /// gate: each suspect re-simulates two polarities over the design, so
    /// design size is the per-suspect element count.
    fn scoring_work(&self, n: usize) -> u64 {
        n as u64 * self.fsim.design().netlist().gate_count() as u64 * 2
    }

    /// Greedy cover: repeatedly pick the suspect explaining the most
    /// residual failures, until the log is explained or progress stops.
    fn cover_diagnosis(
        &self,
        log: &FailureLog,
        tester: &HashSet<FailEntry>,
        seed: Vec<(Candidate, HashSet<FailEntry>)>,
        cancel: &AtomicBool,
    ) -> Result<Vec<(Candidate, HashSet<FailEntry>)>, Cancelled> {
        // Frequency-ranked union of per-entry suspects.
        let mut freq: HashMap<SiteId, u32> = HashMap::new();
        for entry in log.entries() {
            for s in self.entry_suspects(entry) {
                *freq.entry(s).or_insert(0) += 1;
            }
        }
        let mut by_freq: Vec<(SiteId, u32)> = freq.into_iter().collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        by_freq.truncate(self.config.max_cover_suspects);
        by_freq.retain(|&(s, _)| !self.is_pruned(s));

        let mut pool: HashMap<SiteId, (Candidate, HashSet<FailEntry>)> = seed
            .into_iter()
            .map(|(c, p)| (c.fault.site, (c, p)))
            .collect();
        // Batch-simulate the cover suspects the seed pass did not already
        // score, fanned over the pool like the phase-1 scoring.
        let missing: Vec<SiteId> = by_freq
            .iter()
            .map(|&(s, _)| s)
            .filter(|s| !pool.contains_key(s))
            .collect();
        let missing_work = self.scoring_work(missing.len());
        let scored_missing = m3d_par::with_threads(m3d_par::par_gate(missing_work), || {
            m3d_par::par_map_init(
                &missing,
                || self.fsim.detector(),
                |det, &s| {
                    if cancel.load(Ordering::Relaxed) {
                        return Self::cancelled_stub(s);
                    }
                    self.best_candidate(det, s, tester)
                },
            )
        });
        if cancel.load(Ordering::Relaxed) {
            return Err(Cancelled);
        }
        for (site, cand) in missing.into_iter().zip(scored_missing) {
            pool.insert(site, cand);
        }

        let mut residual: HashSet<FailEntry> = tester.clone();
        let mut selected: Vec<(Candidate, HashSet<FailEntry>)> = Vec::new();
        let mut used: HashSet<SiteId> = HashSet::new();
        for _round in 0..6 {
            if residual.is_empty() {
                break;
            }
            // Pick the unused candidate explaining the most residual
            // failures with the fewest mispredictions.
            let best = pool
                .values()
                .filter(|(c, _)| !used.contains(&c.fault.site))
                .map(|(c, p)| {
                    let explained = residual.intersection(p).count() as i64;
                    let extra = p.difference(tester).count() as i64;
                    (explained * 2 - extra, c.fault.site)
                })
                .max_by_key(|&(gain, site)| (gain, std::cmp::Reverse(site)));
            let Some((gain, site)) = best else { break };
            if gain <= 0 {
                break;
            }
            used.insert(site);
            let (cand, pred) = pool[&site].clone();
            residual.retain(|e| !pred.contains(e));
            selected.push((cand, pred));
        }

        // Add signature-equivalent suspects of every selected candidate
        // (indistinguishable faults inflate resolution, as on real tools).
        let selected_sigs: Vec<HashSet<FailEntry>> =
            selected.iter().map(|(_, p)| p.clone()).collect();
        for (site, _) in &by_freq {
            if used.contains(site) {
                continue;
            }
            if let Some((cand, pred)) = pool.get(site) {
                if selected_sigs.iter().any(|sig| sig == pred) && !pred.is_empty() {
                    selected.push((*cand, pred.clone()));
                    used.insert(*site);
                }
            }
        }
        Ok(selected)
    }

    /// Ranks a multi-fault cover: candidates sorted by explained failures,
    /// all retained (each one carries a distinct share of the log).
    fn rank_cover(&self, mut selected: Vec<(Candidate, HashSet<FailEntry>)>) -> DiagnosisReport {
        selected.retain(|(c, _)| c.score.tfsf > 0);
        selected.sort_by(|(a, _), (b, _)| {
            b.score
                .tfsf
                .cmp(&a.score.tfsf)
                .then(
                    self.prior_of(a.fault.site)
                        .cmp(&self.prior_of(b.fault.site)),
                )
                .then(a.fault.site.cmp(&b.fault.site))
        });
        let candidates: Vec<Candidate> = selected
            .into_iter()
            .take(self.config.max_candidates)
            .map(|(c, _)| c)
            .collect();
        DiagnosisReport::new(candidates)
    }

    /// Ranks candidates the way commercial delay diagnosis does — by
    /// explained failures (`tfsf`). Simulated-but-unseen failures (`tpsf`)
    /// do *not* rank within a class: gross-delay simulation over-predicts
    /// for real small-delay defects, so a candidate with extra predicted
    /// failures may still be the defect. Ties order structurally.
    fn rank_and_retain(&self, mut scored: Vec<(Candidate, HashSet<FailEntry>)>) -> DiagnosisReport {
        scored.retain(|(c, _)| c.score.tfsf > 0);
        let best_tfsf = scored.iter().map(|(c, _)| c.score.tfsf).max().unwrap_or(0);
        // Candidates explaining within half of the best are statistically
        // indistinguishable under small-delay uncertainty; they share a
        // rank band and order structurally inside it.
        let band = |tfsf: u32| -> u32 { u32::from(tfsf * 2 > best_tfsf) };
        // Inside a band, an attached SCOAP prior ranks easier-to-observe
        // sites first (a zero prior degenerates to structural order).
        scored.sort_by(|(a, _), (b, _)| {
            band(b.score.tfsf)
                .cmp(&band(a.score.tfsf))
                .then(
                    self.prior_of(a.fault.site)
                        .cmp(&self.prior_of(b.fault.site)),
                )
                .then(a.fault.site.cmp(&b.fault.site))
        });
        let floor = (f64::from(best_tfsf) * self.config.retain_ratio).ceil() as u32;
        let candidates: Vec<Candidate> = scored
            .into_iter()
            .filter(|(c, _)| c.score.is_perfect() || c.score.tfsf >= floor)
            .take(self.config.max_candidates)
            .map(|(c, _)| c)
            .collect();
        DiagnosisReport::new(candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_dft::ScanConfig;
    use m3d_netlist::generate::Benchmark;
    use m3d_part::DesignConfig;
    use m3d_tdf::{generate_patterns, AtpgConfig};
    use rand::rngs::StdRng;
    use rand::{seq::SliceRandom, Rng, SeedableRng};

    struct Env {
        design: m3d_part::M3dDesign,
        ts: m3d_tdf::TestSet,
        scan: ScanChains,
    }

    fn env() -> Env {
        let design = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
        let ts = generate_patterns(&design, &AtpgConfig::new(1, 256));
        let scan = ScanChains::new(
            design.netlist(),
            ScanConfig::for_flop_count(design.netlist().flops().len()),
        );
        Env { design, ts, scan }
    }

    fn detected_faults(e: &Env) -> Vec<Fault> {
        m3d_tdf::full_fault_list(&e.design)
            .into_iter()
            .zip(&e.ts.detected)
            .filter(|&(_, &d)| d)
            .map(|(f, _)| f)
            .collect()
    }

    #[test]
    fn single_fault_diagnosis_is_accurate() {
        let e = env();
        let fsim = FaultSim::new(&e.design, &e.ts.patterns);
        let diag = Diagnoser::new(&fsim, &e.scan, ObsMode::Bypass, DiagnosisConfig::default());
        let faults = detected_faults(&e);
        let mut rng = StdRng::seed_from_u64(5);
        let mut accurate = 0;
        let trials = 12;
        for _ in 0..trials {
            let f = faults[rng.gen_range(0..faults.len())];
            let mut det = fsim.detector();
            let dets = fsim.detections(&mut det, &[f]);
            let log = FailureLog::from_detections(&dets, &e.scan, ObsMode::Bypass);
            let report = diag.diagnose(&log);
            assert!(report.resolution() >= 1);
            if report.is_accurate(&[f]) {
                accurate += 1;
            }
        }
        assert!(
            accurate >= trials - 1,
            "bypass single-fault accuracy {accurate}/{trials}"
        );
    }

    #[test]
    fn compaction_degrades_resolution() {
        let e = env();
        let fsim = FaultSim::new(&e.design, &e.ts.patterns);
        let faults = detected_faults(&e);
        let mut rng = StdRng::seed_from_u64(6);
        let mut res = [0usize; 2];
        for _ in 0..8 {
            let f = faults[rng.gen_range(0..faults.len())];
            let mut det = fsim.detector();
            let dets = fsim.detections(&mut det, &[f]);
            for (i, mode) in ObsMode::ALL.into_iter().enumerate() {
                let diag = Diagnoser::new(&fsim, &e.scan, mode, DiagnosisConfig::default());
                let log = FailureLog::from_detections(&dets, &e.scan, mode);
                res[i] += diag.diagnose(&log).resolution();
            }
        }
        assert!(
            res[1] >= res[0],
            "compacted resolution ({}) should not beat bypass ({})",
            res[1],
            res[0]
        );
    }

    #[test]
    fn multi_fault_cover_explains_logs() {
        let e = env();
        let fsim = FaultSim::new(&e.design, &e.ts.patterns);
        let diag = Diagnoser::new(&fsim, &e.scan, ObsMode::Bypass, DiagnosisConfig::default());
        let faults = detected_faults(&e);
        let mut rng = StdRng::seed_from_u64(8);
        let mut any_hit = 0;
        for _ in 0..5 {
            let picks: Vec<Fault> = faults.choose_multiple(&mut rng, 3).copied().collect();
            let mut det = fsim.detector();
            let dets = fsim.detections(&mut det, &picks);
            let log = FailureLog::from_detections(&dets, &e.scan, ObsMode::Bypass);
            let report = diag.diagnose(&log);
            if report.first_hit_index(&picks).is_some() {
                any_hit += 1;
            }
        }
        assert!(any_hit >= 4, "cover diagnosis hit {any_hit}/5");
    }

    #[test]
    fn out_of_range_entries_degrade_instead_of_panicking() {
        let e = env();
        let fsim = FaultSim::new(&e.design, &e.ts.patterns);
        let diag = Diagnoser::new(&fsim, &e.scan, ObsMode::Bypass, DiagnosisConfig::default());
        let f = detected_faults(&e)[0];
        let mut det = fsim.detector();
        let dets = fsim.detections(&mut det, &[f]);
        let clean = FailureLog::from_detections(&dets, &e.scan, ObsMode::Bypass);
        let clean_report = diag.diagnose(&clean);
        assert!(!clean_report.degraded());

        // A malformed tester log: the real entries plus one referencing a
        // nonexistent pattern and one referencing a nonexistent scan cell
        // (what `fail pattern 4294967295 flop 4294967295` parses to).
        let poisoned: FailureLog = clean
            .entries()
            .iter()
            .copied()
            .chain([
                FailEntry {
                    pattern: u32::MAX,
                    obs: m3d_dft::ObsPoint::Flop(m3d_netlist::FlopId::new(u32::MAX as usize)),
                },
                FailEntry {
                    pattern: 0,
                    obs: m3d_dft::ObsPoint::Flop(m3d_netlist::FlopId::new(
                        e.design.netlist().flops().len() + 7,
                    )),
                },
            ])
            .collect();
        let report = diag.diagnose(&poisoned);
        assert!(report.degraded(), "dropped entries must tag the report");
        assert_eq!(
            report.candidates(),
            clean_report.candidates(),
            "valid entries still diagnose normally"
        );

        // A log of *only* junk entries degrades to an empty report.
        let junk: FailureLog = std::iter::once(FailEntry {
            pattern: u32::MAX,
            obs: m3d_dft::ObsPoint::Flop(m3d_netlist::FlopId::new(u32::MAX as usize)),
        })
        .collect();
        let report = diag.diagnose(&junk);
        assert!(report.degraded());
        assert_eq!(report.resolution(), 0);
    }

    #[test]
    fn zero_prior_and_untestable_pruning_leave_reports_identical() {
        let e = env();
        let fsim = FaultSim::new(&e.design, &e.ts.patterns);
        let n = e.design.sites().len();
        let plain = Diagnoser::new(&fsim, &e.scan, ObsMode::Bypass, DiagnosisConfig::default());
        let zeroed = Diagnoser::new(&fsim, &e.scan, ObsMode::Bypass, DiagnosisConfig::default())
            .with_observability_prior(vec![0; n]);
        let cp = m3d_dataflow::ConstProp::compute(e.design.netlist());
        let proofs = m3d_dataflow::StaticProofs::compute(&e.design, &cp);
        assert!(proofs.untestable_count() > 0);
        let pruned = Diagnoser::new(&fsim, &e.scan, ObsMode::Bypass, DiagnosisConfig::default())
            .with_untestable_sites(proofs.prunable_sites());

        let faults = detected_faults(&e);
        let mut rng = StdRng::seed_from_u64(21);
        for trial in 0..6 {
            // Mix single- and multi-fault logs to cover both rank paths.
            let k = 1 + trial % 3;
            let picks: Vec<Fault> = faults.choose_multiple(&mut rng, k).copied().collect();
            let mut det = fsim.detector();
            let dets = fsim.detections(&mut det, &picks);
            let log = FailureLog::from_detections(&dets, &e.scan, ObsMode::Bypass);
            let base = plain.diagnose(&log);
            assert_eq!(base.candidates(), zeroed.diagnose(&log).candidates());
            assert_eq!(base.candidates(), pruned.diagnose(&log).candidates());
        }
    }

    #[test]
    fn observability_prior_reorders_only_within_score_ties() {
        let e = env();
        let fsim = FaultSim::new(&e.design, &e.ts.patterns);
        let scoap = m3d_dataflow::Scoap::compute(e.design.netlist());
        let co: Vec<u32> = e
            .design
            .sites()
            .iter()
            .map(|(s, _)| scoap.site_measures(&e.design, s).co)
            .collect();
        let plain = Diagnoser::new(&fsim, &e.scan, ObsMode::Bypass, DiagnosisConfig::default());
        let prior = Diagnoser::new(&fsim, &e.scan, ObsMode::Bypass, DiagnosisConfig::default())
            .with_observability_prior(co);
        let faults = detected_faults(&e);
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..6 {
            let f = faults[rng.gen_range(0..faults.len())];
            let mut det = fsim.detector();
            let dets = fsim.detections(&mut det, &[f]);
            let log = FailureLog::from_detections(&dets, &e.scan, ObsMode::Bypass);
            let a = plain.diagnose(&log);
            let b = prior.diagnose(&log);
            // Same candidate *set*; the prior only permutes rank order.
            let key = |c: &Candidate| (c.fault.site, c.fault.polarity);
            let mut sa: Vec<_> = a.candidates().iter().map(key).collect();
            let mut sb: Vec<_> = b.candidates().iter().map(key).collect();
            sa.sort_unstable();
            sb.sort_unstable();
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn empty_log_gives_empty_report() {
        let e = env();
        let fsim = FaultSim::new(&e.design, &e.ts.patterns);
        let diag = Diagnoser::new(&fsim, &e.scan, ObsMode::Bypass, DiagnosisConfig::default());
        assert_eq!(diag.diagnose(&FailureLog::default()).resolution(), 0);
    }

    #[test]
    fn cancellation_is_pure_control_flow() {
        let e = env();
        let fsim = FaultSim::new(&e.design, &e.ts.patterns);
        let diag = Diagnoser::new(&fsim, &e.scan, ObsMode::Bypass, DiagnosisConfig::default());
        let faults = detected_faults(&e);
        let mut det = fsim.detector();
        let dets = fsim.detections(&mut det, &[faults[3]]);
        let log = FailureLog::from_detections(&dets, &e.scan, ObsMode::Bypass);

        // An unset flag yields exactly the plain report.
        let clear = AtomicBool::new(false);
        let report = diag.try_diagnose(&log, &clear).expect("not cancelled");
        assert_eq!(report, diag.diagnose(&log));

        // A pre-set flag cancels before any work, even for empty logs'
        // non-empty siblings; the empty log still short-circuits to Ok.
        let set = AtomicBool::new(true);
        assert_eq!(diag.try_diagnose(&log, &set), Err(Cancelled));
        assert!(diag.try_diagnose(&FailureLog::default(), &set).is_ok());
    }
}
