//! ATPG-style cause-effect delay-fault diagnosis for M3D designs.
//!
//! This crate stands in for the commercial fault-diagnosis tool of the
//! paper's flow: it turns a tester [`m3d_tdf::FailureLog`] into a ranked
//! [`DiagnosisReport`] of suspect fault sites, with the three quality
//! measures the paper evaluates — diagnostic resolution, accuracy, and
//! first-hit index. It also implements the paper's 2D comparison baseline
//! ([`baseline_filter`], reference \[11\]/PADRE first-level classifier).
//!
//! See [`Diagnoser`] for the engine and [`QualityAccumulator`] for the
//! table metrics.

#![warn(missing_docs)]

mod baseline;
mod engine;
mod metrics;
mod report;

pub use baseline::baseline_filter;
pub use engine::{Cancelled, Diagnoser, DiagnosisConfig};
pub use metrics::{mean_std, QualityAccumulator, ReportQuality};
pub use report::{miv_equivalent, Candidate, DiagnosisReport, MatchScore};
