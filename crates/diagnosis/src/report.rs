//! Diagnosis reports: ranked candidate lists and their quality metrics.

use m3d_netlist::{SiteId, SitePos};
use m3d_part::{M3dDesign, Tier};
use m3d_tdf::Fault;

/// Failure-signature match counts for one candidate fault.
///
/// Following standard cause-effect diagnosis terminology:
/// * `tfsf` — tester-fail, simulation-fail (explained failures),
/// * `tfsp` — tester-fail, simulation-pass (unexplained failures),
/// * `tpsf` — tester-pass, simulation-fail (mispredicted failures).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchScore {
    /// Observations failing on both the tester and in simulation.
    pub tfsf: u32,
    /// Tester failures the candidate does not explain.
    pub tfsp: u32,
    /// Simulated failures the tester did not show.
    pub tpsf: u32,
}

impl MatchScore {
    /// A perfect candidate explains every failure and predicts no extras.
    #[inline]
    pub fn is_perfect(&self) -> bool {
        self.tfsf > 0 && self.tfsp == 0 && self.tpsf == 0
    }

    /// Scalar ranking score: explained failures minus penalties for
    /// unexplained and mispredicted ones.
    #[inline]
    pub fn value(&self) -> f64 {
        f64::from(self.tfsf) - 0.5 * f64::from(self.tfsp) - 0.5 * f64::from(self.tpsf)
    }

    /// Normalized match quality in `[-1, 1]` (1 = perfect).
    #[inline]
    pub fn quality(&self) -> f64 {
        let total = self.tfsf + self.tfsp + self.tpsf;
        if total == 0 {
            return -1.0;
        }
        (f64::from(self.tfsf) - f64::from(self.tfsp) - f64::from(self.tpsf)) / f64::from(total)
    }
}

/// One ranked suspect in a diagnosis report.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Candidate {
    /// The suspected fault.
    pub fault: Fault,
    /// Signature match counts against the failure log.
    pub score: MatchScore,
    /// Tier of the site (`None` for MIV sites).
    pub tier: Option<Tier>,
}

/// A ranked diagnosis report (most probable candidate first).
///
/// # Examples
///
/// ```
/// use m3d_diagnosis::DiagnosisReport;
///
/// let report = DiagnosisReport::new(Vec::new());
/// assert_eq!(report.resolution(), 0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DiagnosisReport {
    candidates: Vec<Candidate>,
    degraded: bool,
}

impl DiagnosisReport {
    /// Wraps a ranked candidate list.
    pub fn new(candidates: Vec<Candidate>) -> Self {
        DiagnosisReport {
            candidates,
            degraded: false,
        }
    }

    /// `true` when the producer fell back to a degraded path — malformed
    /// log entries were dropped, or a classifier's confidence was unusable
    /// and a structural baseline ranked the report instead.
    #[inline]
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Tags the report as produced by a degraded (fallback) path.
    pub fn mark_degraded(&mut self) {
        self.degraded = true;
    }

    /// The ranked candidates.
    #[inline]
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Diagnostic resolution: the number of reported candidates (paper
    /// Section II-B; smaller is better, ideal is 1).
    #[inline]
    pub fn resolution(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the report pinpoints every ground-truth site (the paper's
    /// accuracy criterion; for multi-fault chips *all* injected faults must
    /// appear — Section VII-A).
    pub fn is_accurate(&self, ground_truth: &[Fault]) -> bool {
        ground_truth
            .iter()
            .all(|gt| self.candidates.iter().any(|c| c.fault.site == gt.site))
    }

    /// First-hit index: 1-based rank of the first candidate matching a
    /// ground-truth site; `None` when the report misses entirely.
    pub fn first_hit_index(&self, ground_truth: &[Fault]) -> Option<usize> {
        self.candidates
            .iter()
            .position(|c| ground_truth.iter().any(|gt| gt.site == c.fault.site))
            .map(|i| i + 1)
    }

    /// The distinct tiers of the candidates (MIV candidates excluded).
    pub fn candidate_tiers(&self) -> Vec<Tier> {
        let mut tiers: Vec<Tier> = self.candidates.iter().filter_map(|c| c.tier).collect();
        tiers.sort();
        tiers.dedup();
        tiers
    }

    /// `true` when every tiered candidate lies in a single tier — the
    /// paper's per-report *tier-level localization* criterion.
    pub fn is_tier_localized(&self) -> bool {
        self.candidate_tiers().len() <= 1
    }

    /// Replaces the candidate list (used by pruning/reordering policies);
    /// the degraded tag is carried over.
    pub fn with_candidates(&self, candidates: Vec<Candidate>) -> Self {
        DiagnosisReport {
            candidates,
            degraded: self.degraded,
        }
    }
}

/// The MIV a candidate site is *equivalent* to, if any: the MIV site
/// itself, the driving output pin of the cut net, or a far-side input pin.
/// Used by the policy step that prioritizes predicted-faulty MIVs.
pub fn miv_equivalent(design: &M3dDesign, site: SiteId) -> Option<u32> {
    match design.sites().pos(site) {
        SitePos::Miv(m) => Some(m),
        SitePos::Output(g) => design
            .netlist()
            .gate(g)
            .output()
            .and_then(|n| design.miv_on_net(n)),
        SitePos::Input(g, pin) => {
            let net = design.netlist().gate(g).inputs()[pin as usize];
            let m = design.miv_on_net(net)?;
            let far = design.tier_of_gate(g) != design.mivs()[m as usize].driver_tier;
            far.then_some(m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::SiteId;
    use m3d_tdf::Polarity;

    fn cand(site: usize, tfsf: u32, tfsp: u32, tier: Option<Tier>) -> Candidate {
        Candidate {
            fault: Fault::new(SiteId::new(site), Polarity::SlowToRise),
            score: MatchScore {
                tfsf,
                tfsp,
                tpsf: 0,
            },
            tier,
        }
    }

    #[test]
    fn perfect_scores_rank_highest() {
        let perfect = MatchScore {
            tfsf: 4,
            tfsp: 0,
            tpsf: 0,
        };
        let partial = MatchScore {
            tfsf: 4,
            tfsp: 2,
            tpsf: 1,
        };
        assert!(perfect.is_perfect());
        assert!(!partial.is_perfect());
        assert!(perfect.value() > partial.value());
        assert_eq!(perfect.quality(), 1.0);
        assert!(partial.quality() < 1.0);
    }

    #[test]
    fn accuracy_and_fhi_follow_ground_truth() {
        let gt = vec![Fault::new(SiteId::new(7), Polarity::SlowToFall)];
        let report = DiagnosisReport::new(vec![
            cand(3, 5, 0, Some(Tier::Top)),
            cand(7, 5, 0, Some(Tier::Bottom)),
        ]);
        assert!(report.is_accurate(&gt));
        assert_eq!(report.first_hit_index(&gt), Some(2));
        assert_eq!(report.resolution(), 2);
        let miss = vec![Fault::new(SiteId::new(9), Polarity::SlowToFall)];
        assert!(!report.is_accurate(&miss));
        assert_eq!(report.first_hit_index(&miss), None);
    }

    #[test]
    fn multi_fault_accuracy_requires_all_sites() {
        let gt = vec![
            Fault::new(SiteId::new(3), Polarity::SlowToRise),
            Fault::new(SiteId::new(9), Polarity::SlowToRise),
        ];
        let report = DiagnosisReport::new(vec![cand(3, 2, 0, Some(Tier::Top))]);
        assert!(!report.is_accurate(&gt));
        assert_eq!(report.first_hit_index(&gt), Some(1));
    }

    #[test]
    fn tier_localization_ignores_miv_candidates() {
        let report =
            DiagnosisReport::new(vec![cand(1, 1, 0, Some(Tier::Top)), cand(2, 1, 0, None)]);
        assert!(report.is_tier_localized());
        let both = DiagnosisReport::new(vec![
            cand(1, 1, 0, Some(Tier::Top)),
            cand(2, 1, 0, Some(Tier::Bottom)),
        ]);
        assert!(!both.is_tier_localized());
    }
}

impl std::fmt::Display for DiagnosisReport {
    /// Formats the ranked candidate list the way a diagnosis engineer
    /// would read it.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "diagnosis report: {} candidate(s){}",
            self.resolution(),
            if self.degraded { " (degraded)" } else { "" }
        )?;
        for (i, c) in self.candidates.iter().enumerate() {
            writeln!(
                f,
                "  #{:<3} {:?} {:?} tier={} tfsf={} tfsp={} tpsf={}",
                i + 1,
                c.fault.site,
                c.fault.polarity,
                c.tier.map_or("MIV".into(), |t| t.to_string()),
                c.score.tfsf,
                c.score.tfsp,
                c.score.tpsf
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;
    use m3d_netlist::SiteId;
    use m3d_tdf::Polarity;

    #[test]
    fn report_display_lists_every_candidate() {
        let report = DiagnosisReport::new(vec![
            Candidate {
                fault: Fault::new(SiteId::new(4), Polarity::SlowToFall),
                score: MatchScore {
                    tfsf: 2,
                    tfsp: 0,
                    tpsf: 1,
                },
                tier: Some(Tier::Top),
            },
            Candidate {
                fault: Fault::new(SiteId::new(9), Polarity::SlowToRise),
                score: MatchScore {
                    tfsf: 2,
                    tfsp: 0,
                    tpsf: 0,
                },
                tier: None,
            },
        ]);
        let text = report.to_string();
        assert!(text.contains("2 candidate(s)"));
        assert!(!text.contains("(degraded)"));
        assert!(text.contains("#1"));
        assert!(text.contains("tier=top"));
        assert!(text.contains("tier=MIV"));
        let mut tagged = report.clone();
        tagged.mark_degraded();
        assert!(tagged.to_string().contains("2 candidate(s) (degraded)"));
        assert!(
            tagged.with_candidates(Vec::new()).degraded(),
            "degraded tag survives candidate replacement"
        );
    }
}
