//! The 2D baseline fault-localization algorithm (paper reference \[11\]).
//!
//! PADRE's first-level classifier improves diagnostic resolution by
//! filtering unlikely candidates from a diagnosis report using per-candidate
//! features, without any notion of M3D tiers. The paper compares against
//! exactly this first level (the deeper levels trade too much accuracy).
//!
//! This implementation follows the same recipe: extract a quality score per
//! candidate from its signature-match features, split the report into a
//! *likely* and an *unlikely* cluster with unsupervised 1-D 2-means, and
//! keep the likely cluster (always including the top-ranked candidate).

use crate::report::{Candidate, DiagnosisReport};

/// Applies the first-level baseline filter to a diagnosis report.
///
/// Returns a report containing only the retained candidates, in the
/// original rank order. The top candidate is always retained, so the filter
/// can only lose accuracy when the ground truth ranked below a cluster
/// boundary — matching the near-zero accuracy loss of \[11\].
///
/// # Examples
///
/// ```
/// use m3d_diagnosis::{baseline_filter, DiagnosisReport};
///
/// let empty = baseline_filter(&DiagnosisReport::default());
/// assert_eq!(empty.resolution(), 0);
/// ```
pub fn baseline_filter(report: &DiagnosisReport) -> DiagnosisReport {
    let cands = report.candidates();
    if cands.len() <= 2 {
        return report.clone();
    }
    let scores: Vec<f64> = cands.iter().map(candidate_quality).collect();
    let keep = two_means_upper(&scores);
    let kept: Vec<Candidate> = cands
        .iter()
        .zip(&keep)
        .filter(|&(_, &k)| k)
        .map(|(c, _)| *c)
        .collect();
    report.with_candidates(kept)
}

/// Per-candidate quality in `[-1, 1]`: the normalized signature match.
fn candidate_quality(c: &Candidate) -> f64 {
    c.score.quality()
}

/// 1-D 2-means: returns a keep-mask selecting the upper cluster. The
/// element with the maximum score is always kept; if the clusters collapse
/// (all scores equal) everything is kept.
fn two_means_upper(scores: &[f64]) -> Vec<bool> {
    let min = scores.iter().copied().fold(f64::INFINITY, f64::min);
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if (max - min).abs() < 1e-12 {
        return vec![true; scores.len()];
    }
    let mut lo = min;
    let mut hi = max;
    for _ in 0..32 {
        let mid = (lo + hi) / 2.0;
        let (mut sum_lo, mut n_lo, mut sum_hi, mut n_hi) = (0.0, 0u32, 0.0, 0u32);
        for &s in scores {
            if (s - lo).abs() <= (s - hi).abs() {
                sum_lo += s;
                n_lo += 1;
            } else {
                sum_hi += s;
                n_hi += 1;
            }
        }
        let _ = mid;
        let new_lo = if n_lo > 0 {
            sum_lo / f64::from(n_lo)
        } else {
            lo
        };
        let new_hi = if n_hi > 0 {
            sum_hi / f64::from(n_hi)
        } else {
            hi
        };
        if (new_lo - lo).abs() < 1e-9 && (new_hi - hi).abs() < 1e-9 {
            break;
        }
        lo = new_lo;
        hi = new_hi;
    }
    scores
        .iter()
        .map(|&s| (s - hi).abs() < (s - lo).abs() || (s - max).abs() < 1e-12)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::MatchScore;
    use m3d_netlist::SiteId;
    use m3d_part::Tier;
    use m3d_tdf::{Fault, Polarity};

    fn cand(site: usize, tfsf: u32, tfsp: u32, tpsf: u32) -> Candidate {
        Candidate {
            fault: Fault::new(SiteId::new(site), Polarity::SlowToRise),
            score: MatchScore { tfsf, tfsp, tpsf },
            tier: Some(if site.is_multiple_of(2) {
                Tier::Top
            } else {
                Tier::Bottom
            }),
        }
    }

    #[test]
    fn filter_keeps_perfect_and_drops_poor_candidates() {
        let report = DiagnosisReport::new(vec![
            cand(0, 8, 0, 0),
            cand(1, 8, 0, 0),
            cand(2, 3, 5, 4),
            cand(3, 2, 6, 7),
        ]);
        let filtered = baseline_filter(&report);
        assert_eq!(filtered.resolution(), 2);
        assert!(filtered.candidates().iter().all(|c| c.score.is_perfect()));
    }

    #[test]
    fn filter_never_drops_the_top_candidate() {
        let report = DiagnosisReport::new(vec![cand(0, 5, 1, 0), cand(1, 1, 5, 5)]);
        let filtered = baseline_filter(&report);
        assert_eq!(filtered.candidates()[0].fault.site, SiteId::new(0));
    }

    #[test]
    fn uniform_reports_pass_through() {
        let report =
            DiagnosisReport::new(vec![cand(0, 4, 0, 0), cand(1, 4, 0, 0), cand(2, 4, 0, 0)]);
        assert_eq!(baseline_filter(&report).resolution(), 3);
    }

    #[test]
    fn tiny_reports_are_untouched() {
        let report = DiagnosisReport::new(vec![cand(0, 1, 9, 9)]);
        assert_eq!(baseline_filter(&report).resolution(), 1);
    }
}
